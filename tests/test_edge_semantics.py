"""Documented edge cases of the rule semantics."""

import pytest

from repro.core.fixes import chase
from repro.core.patterns import ANY, PatternTuple, neq
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema
from repro.engine.values import NULL, UNKNOWN


def _master(rows, attrs="wxyz"):
    rm = RelationSchema("Rm", [(a, INT) for a in attrs])
    m = Relation(rm)
    for row in rows:
        m.insert(row)
    return m


def test_empty_lhs_rule_is_unconditional():
    """|X| = 0 is permitted: t[∅] = tm[∅] holds trivially, so the rule
    matches every master tuple — usable only when the source column is
    constant (otherwise it immediately conflicts)."""
    master = _master([(1, 2, 3, 4)])
    rule = EditingRule((), (), "b", "x", PatternTuple({}))
    out = chase({"a": 0}, ("a",), [rule], master)
    assert out.unique
    assert out.assignment["b"] == 2

    two_rows = _master([(1, 2, 3, 4), (1, 9, 3, 4)])
    out2 = chase({"a": 0}, ("a",), [rule], two_rows)
    assert not out2.unique


def test_null_is_an_ordinary_matchable_value():
    """NULL participates in key matching like any value — which is exactly
    why the HOSP/DBLP rules carry ≠ NULL guards."""
    master = _master([(NULL, 2, 3, 4)])
    unguarded = EditingRule(("a",), ("w",), "b", "x")
    out = chase({"a": NULL}, ("a",), [unguarded], master)
    assert out.assignment["b"] == 2  # NULL matched NULL!

    guarded = EditingRule(("a",), ("w",), "b", "x",
                          PatternTuple({"a": neq(NULL)}))
    out2 = chase({"a": NULL}, ("a",), [guarded], master)
    assert out2.assignment["b"] is UNKNOWN  # guard blocked the match


def test_unknown_key_blocks_application():
    master = _master([(1, 2, 3, 4)])
    rule = EditingRule(("a",), ("w",), "b", "x")
    out = chase({"c": 5}, ("c",), [rule], master)  # a never validated
    assert out.covered == {"c"}


def test_rule_writing_its_own_pattern_attr_rejected_by_region_semantics():
    """A rule whose pattern mentions its own target can never fire: the
    premise requires B validated, and validated targets are protected."""
    master = _master([(1, 2, 3, 4)])
    rule = EditingRule(("a",), ("w",), "b", "x", PatternTuple({"b": 7}))
    out = chase({"a": 1, "b": 7}, ("a", "b"), [rule], master)
    # b ∈ Z: protected; nothing fires.
    assert not out.fired
    out2 = chase({"a": 1}, ("a",), [rule], master)
    # b ∉ Z: premise {a, b} ⊄ Z; nothing fires either.
    assert not out2.fired


def test_self_reinforcing_cycle_terminates():
    """Rules forming a cycle (a -> b, b -> a) terminate: each attribute is
    validated once and then protected."""
    master = _master([(1, 2, 3, 4)])
    rules = [
        EditingRule(("a",), ("w",), "b", "x", name="ab"),
        EditingRule(("b",), ("x",), "a", "w", name="ba"),
    ]
    out = chase({"a": 1}, ("a",), rules, master)
    assert out.unique
    assert out.assignment == {"a": 1, "b": 2}


def test_wildcard_only_pattern_equals_empty_pattern():
    master = _master([(1, 2, 3, 4)])
    wild = EditingRule(("a",), ("w",), "b", "x",
                       PatternTuple({"c": ANY}))
    empty = EditingRule(("a",), ("w",), "b", "x", PatternTuple({}))
    # The wildcard pattern adds 'c' to the premise, so the region must
    # include it — after normalization they coincide.
    assert wild.normalized().premise_attrs == empty.premise_attrs


def test_chase_with_zero_rules():
    master = _master([(1, 2, 3, 4)])
    out = chase({"a": 1}, ("a",), [], master)
    assert out.unique
    assert out.covered == {"a"}
    assert out.batches == 0


def test_chase_with_empty_master():
    rm = RelationSchema("Rm", [(a, INT) for a in "wxyz"])
    rule = EditingRule(("a",), ("w",), "b", "x")
    out = chase({"a": 1}, ("a",), [rule], Relation(rm))
    assert out.unique
    assert out.covered == {"a"}
