"""The Suggest⁺ BDD cache (Figs. 7-8)."""

from repro.repair.bdd import SuggestionCache
from repro.repair.transfix import transfix


def _state(example, name="t1"):
    result = transfix(
        example.inputs[name], {"zip"}, example.rules, example.master
    )
    return result.row, result.validated


def test_first_tuple_misses_then_reuses(example):
    cache = SuggestionCache(example.rules, example.master, example.schema)
    row, z = _state(example)

    cursor1 = cache.start()
    suggestion1 = cursor1.next_suggestion(row, z)
    assert cache.stats.misses == 1
    assert cache.stats.hits == 0

    cursor2 = cache.start()
    suggestion2 = cursor2.next_suggestion(row, z)
    assert cache.stats.hits == 1
    assert suggestion2.attrs == suggestion1.attrs


def test_cache_falls_through_on_invalid_suggestion(example):
    cache = SuggestionCache(example.rules, example.master, example.schema)
    row, z = _state(example)
    cache.start().next_suggestion(row, z)

    # A different validated set makes the cached S invalid (overlap).
    z2 = z | {"phn", "type"}
    cursor = cache.start()
    suggestion = cursor.next_suggestion(row, z2)
    assert cache.stats.misses == 2
    assert not (set(suggestion.attrs) & z2)


def test_cached_chain_grows_per_round(example):
    cache = SuggestionCache(example.rules, example.master, example.schema)
    row, z = _state(example)
    cursor = cache.start()
    first = cursor.next_suggestion(row, z)
    # Simulate the user asserting the suggestion; next round state:
    clean = example.masters["s1"]
    updates = {}
    for attr in first.attrs:
        updates[attr] = clean[attr] if attr in clean.schema else row[attr]
    row2 = row.with_values(updates)
    z2 = frozenset(z) | set(first.attrs)
    second = cursor.next_suggestion(row2, z2)
    assert not (set(second.attrs) & z2)


def test_hit_rate_accounting(example):
    cache = SuggestionCache(example.rules, example.master, example.schema)
    row, z = _state(example)
    for _ in range(5):
        cache.start().next_suggestion(row, z)
    assert cache.stats.hits == 4
    assert cache.stats.misses == 1
    assert 0.79 < cache.stats.hit_rate < 0.81


def test_cache_stats_zero_division():
    from repro.repair.bdd import CacheStats

    assert CacheStats().hit_rate == 0.0
