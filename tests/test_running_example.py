"""The paper's running example, example by example (Fig. 1, Examples 1-13)."""

from repro.core.fixes import chase, fix_sequence, region_apply
from repro.core.regions import Region
from repro.engine.values import NULL
from repro.repair.transfix import transfix


def _rule(example, name):
    return next(r for r in example.rules if r.name == name)


def test_example1_cfd_detects_but_cannot_locate(example):
    """t1 violates 'AC = 020 → city = Ldn' — detection without location."""
    from repro.constraints.cfd import CFD
    from repro.core.patterns import PatternTuple

    cfd = CFD("AC", "city", PatternTuple({"AC": "020", "city": "Ldn"}))
    assert cfd.single_tuple_violation(example.inputs["t1"])


def test_example3_rule_structure(example):
    phi1 = _rule(example, "phi1")
    assert phi1.lhs == ("zip",) and phi1.rhs == "AC"
    assert len(phi1.pattern) == 0  # tp1 = ()
    phi4 = _rule(example, "phi4")
    assert phi4.lhs == ("phn",) and phi4.lhs_m == ("Mphn",)
    phi6 = _rule(example, "phi6")
    assert phi6.pattern["type"].matches(1)
    assert not phi6.pattern["AC"].matches("0800")  # the 0800̄ negation
    phi9 = _rule(example, "phi9")
    assert phi9.pattern["AC"].matches("0800")


def test_example4_applying_phi1_and_phi2_to_t1(example):
    """(φ1, s1): AC 020→131; (φ2-as-str rule, s1): str fixed; (φ4, s1): FN."""
    t1, s1 = example.inputs["t1"], example.masters["s1"]
    phi1 = _rule(example, "phi1")
    assert phi1.applies_to(t1, s1)
    fixed = phi1.apply(t1, s1)
    assert fixed["AC"] == "131"

    phi4 = _rule(example, "phi4")
    assert phi4.applies_to(t1, s1)
    assert phi4.apply(t1, s1)["FN"] == "Robert"


def test_example4_phi6_applies_to_t2(example):
    """eR3 with s1 corrects t2[city] and enriches t2[str, zip]."""
    t2, s1 = example.inputs["t2"], example.masters["s1"]
    assert t2["str"] is NULL and t2["zip"] is NULL
    region = Region.from_patterns(
        ("AC", "phn", "type"),
        [{"AC": t2["AC"], "phn": t2["phn"], "type": 1}],
    )
    result = transfix(t2, region.attrs, example.rules, example.master)
    assert result.row["city"] == "Edi"
    assert result.row["str"] == "51 Elm Row"
    assert result.row["zip"] == "EH7 4AH"


def test_example5_conflicting_rules_on_t3(example):
    """(φ1-family, s1) and (φ3-family, s2) suggest Edi vs Lnd for city."""
    t3 = example.inputs["t3"]
    s1, s2 = example.masters["s1"], example.masters["s2"]
    zip_city = _rule(example, "phi3")   # zip → city
    home_city = _rule(example, "phi7")  # (AC, phn) → city
    assert zip_city.applies_to(t3, s1)
    assert home_city.applies_to(t3, s2)
    assert zip_city.apply(t3, s1)["city"] == "Edi"
    assert home_city.apply(t3, s2)["city"] == "Lnd"


def test_example5_t4_matches_nothing(example):
    t4 = example.inputs["t4"]
    for rule in example.rules:
        for tm in example.master:
            assert not rule.applies_to(t4, tm)


def test_example6_region_constrained_application(example):
    """t3 →((Z_AH,T_AH),φ7,s2) t'3 with str/city/zip from s2."""
    t3, s2 = example.inputs["t3"], example.masters["s2"]
    region = example.regions["ZAH"]
    phi6 = _rule(example, "phi6")
    fixed, extended = region_apply(t3, region, phi6, s2)
    assert fixed["str"] == "20 Baker St"
    assert extended.attrs == ("AC", "phn", "type", "str")


def test_example7_region_extension_pads_wildcards(example):
    region = example.regions["ZAH"]
    extended = region.extend(_rule(example, "phi6"))
    pattern = extended.tableau.patterns[0]
    assert pattern["str"].is_wildcard
    assert pattern["type"].is_constant  # original conditions kept


def test_example8_t3_unique_fix_wrt_zah(example):
    out = chase(
        example.inputs["t3"], example.regions["ZAH"].attrs,
        example.rules, example.master,
    )
    assert out.unique
    assert out.assignment["city"] == "Lnd"
    assert out.assignment["zip"] == "NW1 6XE"
    assert not out.is_certain(example.schema)  # FN/LN/item uncovered


def test_example8_t3_loses_uniqueness_with_zip(example):
    out = chase(
        example.inputs["t3"], example.regions["ZAHZ"].attrs,
        example.rules, example.master,
    )
    assert not out.unique


def test_example8_t1_unique_fix_wrt_zzm_but_not_certain(example):
    out = chase(
        example.inputs["t1"], example.regions["Zzm"].attrs,
        example.rules, example.master,
    )
    assert out.unique
    assert out.assignment["FN"] == "Robert"
    assert out.assignment["AC"] == "131"
    assert "item" not in out.covered
    assert not out.is_certain(example.schema)


def test_example12_transfix_iteration_trace(example):
    """Example 12's table: from Z = {zip}, AC then str then city validate."""
    result = transfix(
        example.inputs["t1"], {"zip"}, example.rules, example.master
    )
    assert result.validated == {"zip", "AC", "str", "city"}
    fixed_order = [rule.rhs for rule, _ in result.applied]
    assert set(fixed_order) == {"AC", "str", "city"}


def test_example13_certain_fix_via_explicit_sequence(example):
    """Drive t1 to a certain fix by hand through (φ1..φ5, s1) under Zzmi."""
    t1 = example.inputs["t1"]
    s1 = example.masters["s1"]
    region = example.regions["Zzmi"]
    steps = [
        (_rule(example, "phi1"), s1),
        (_rule(example, "phi2"), s1),
        (_rule(example, "phi3"), s1),
        (_rule(example, "phi4"), s1),
        (_rule(example, "phi5"), s1),
    ]
    fixed, final_region = fix_sequence(t1, region, steps)
    assert fixed["FN"] == "Robert"
    assert fixed["AC"] == "131"
    assert set(final_region.attrs) == set(example.schema.attributes)
