"""repro.obs: registry semantics, exposition formats, progress, global gate."""

import io
import json
import pickle

import pytest

from repro import obs
from repro.obs import (
    NULL_REGISTRY,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    ProgressReporter,
    parse_prometheus_text,
    render_prometheus,
    snapshot_from_dict,
    snapshot_from_json,
    snapshot_to_dict,
    snapshot_to_json,
)


@pytest.fixture(autouse=True)
def _reset_global_registry():
    """Tests must not leak an enabled registry into the rest of the suite."""
    yield
    obs.disable()


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("repro_rounds_total", 3)
    reg.inc("repro_chase_memo_total", result="hit")
    reg.inc("repro_chase_memo_total", 2, result="miss")
    reg.set_gauge("repro_server_store_rows", 42)
    for value in (0.01, 0.02, 0.03, 0.5):
        reg.observe("repro_fix_seconds", value)
    reg.observe("repro_store_probe_seconds", 0.004, backend="sqlite",
                op="probe")
    return reg


# -- registry ------------------------------------------------------------------


def test_counters_gauges_histograms():
    snap = _sample_registry().snapshot()
    assert snap.counter_value("repro_rounds_total") == 3
    assert snap.counter_value("repro_chase_memo_total", result="miss") == 2
    assert snap.counter_value("repro_chase_memo_total", result="hit") == 1
    assert snap.gauge_value("repro_server_store_rows") == 42
    hist = snap.histogram_value("repro_fix_seconds")
    assert hist.count == 4
    assert hist.min == pytest.approx(0.01)
    assert hist.max == pytest.approx(0.5)
    assert hist.mean == pytest.approx(0.14)
    assert hist.quantile(0.5) == pytest.approx(0.03)
    assert hist.quantile(1.0) == pytest.approx(0.5)


def test_time_block_records_a_sample():
    reg = MetricsRegistry()
    with reg.time_block("repro_bdd_build_seconds"):
        pass
    hist = reg.snapshot().histogram_value("repro_bdd_build_seconds")
    assert hist.count == 1
    assert hist.total >= 0.0


def test_histogram_reservoir_is_bounded_but_count_exact():
    reg = MetricsRegistry(reservoir=8)
    for i in range(100):
        reg.observe("repro_fix_seconds", float(i))
    hist = reg.snapshot().histogram_value("repro_fix_seconds")
    assert hist.count == 100
    assert hist.total == pytest.approx(sum(range(100)))
    assert len(hist.samples) == 8
    assert hist.max == 99.0


def test_label_order_is_irrelevant():
    reg = MetricsRegistry()
    reg.inc("repro_remote_requests_total", endpoint="/probe", status="ok")
    reg.inc("repro_remote_requests_total", status="ok", endpoint="/probe")
    snap = reg.snapshot()
    assert snap.counter_value("repro_remote_requests_total",
                              status="ok", endpoint="/probe") == 2


def test_clear_resets_series():
    reg = _sample_registry()
    reg.clear()
    assert reg.snapshot().empty


# -- global gate ---------------------------------------------------------------


def test_disabled_by_default_and_noop():
    assert not obs.enabled()
    assert obs.get_registry() is NULL_REGISTRY
    obs.inc("repro_rounds_total", 5)
    obs.observe("repro_fix_seconds", 1.0)
    obs.set_gauge("repro_server_store_rows", 7)
    with obs.time_block("repro_fix_seconds"):
        pass
    assert obs.snapshot().empty


def test_enable_disable_roundtrip():
    obs.enable()
    assert obs.enabled()
    obs.inc("repro_rounds_total", 2)
    first = obs.get_registry()
    obs.enable()  # idempotent: keeps the installed registry and its data
    assert obs.get_registry() is first
    assert obs.snapshot().counter_value("repro_rounds_total") == 2
    obs.disable()
    assert not obs.enabled()
    assert obs.snapshot().empty


# -- Prometheus exposition -----------------------------------------------------


def test_render_parses_cleanly_no_duplicate_series():
    text = render_prometheus(_sample_registry().snapshot())
    parsed = parse_prometheus_text(text)  # raises on dup TYPE / dup series
    assert parsed[("repro_rounds_total", ())] == 3
    assert parsed[("repro_chase_memo_total", (("result", "miss"),))] == 2
    assert parsed[("repro_server_store_rows", ())] == 42
    # Histograms render as summaries: quantiles plus _sum/_count.
    assert parsed[("repro_fix_seconds_count", ())] == 4
    assert parsed[("repro_fix_seconds_sum", ())] == pytest.approx(0.56)
    assert ("repro_fix_seconds", (("quantile", "0.95"),)) in parsed


def test_label_escaping_roundtrip():
    reg = MetricsRegistry()
    tricky = 'quo"te back\\slash new\nline'
    reg.inc("repro_server_requests_total", endpoint=tricky, status="400")
    parsed = parse_prometheus_text(render_prometheus(reg.snapshot()))
    [(name, labels)] = [key for key in parsed if key[0].endswith("_total")]
    assert dict(labels)["endpoint"] == tricky


@pytest.mark.parametrize("bad", [
    "# TYPE a counter\n# TYPE a counter\na 1",
    'x{l="v"} 1\nx{l="v"} 2',
    "just some words",
    "# TYPE a wibble\na 1",
])
def test_parser_rejects_malformed_text(bad):
    with pytest.raises(ValueError):
        parse_prometheus_text(bad)


# -- JSON snapshot -------------------------------------------------------------


def test_json_snapshot_roundtrip_lossless():
    snap = _sample_registry().snapshot()
    assert snapshot_from_dict(snapshot_to_dict(snap)) == snap
    text = snapshot_to_json(snap)
    json.loads(text)  # valid JSON document
    assert snapshot_from_json(text) == snap


def test_json_snapshot_of_empty_registry():
    snap = MetricsRegistry().snapshot()
    assert snapshot_from_json(snapshot_to_json(snap)) == snap
    assert snap.empty


# -- merge discipline ----------------------------------------------------------


def _worker_snapshot(seed: int) -> MetricsSnapshot:
    reg = MetricsRegistry()
    reg.inc("repro_rounds_total", seed)
    reg.inc("repro_chase_memo_total", seed + 1, result="hit")
    reg.set_gauge("repro_server_store_version", seed)
    for i in range(seed + 2):
        reg.observe("repro_fix_seconds", 0.1 * seed + 0.01 * i)
    return reg.snapshot()


def test_merge_associative_across_pickled_snapshots():
    # The process-pool discipline: workers pickle their snapshots back to
    # the parent, which may fold them in any grouping.
    a, b, c = (
        pickle.loads(pickle.dumps(_worker_snapshot(seed)))
        for seed in (1, 2, 3)
    )
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    # Associative up to float summation order in histogram totals.
    assert left.counters == right.counters
    assert left.gauges == right.gauges
    assert left.histograms.keys() == right.histograms.keys()
    for key, mine in left.histograms.items():
        theirs = right.histograms[key]
        assert (mine.count, mine.min, mine.max, mine.samples) == \
            (theirs.count, theirs.min, theirs.max, theirs.samples)
        assert mine.total == pytest.approx(theirs.total)
    assert left.counter_value("repro_rounds_total") == 6
    assert left.counter_value("repro_chase_memo_total", result="hit") == 9
    # Gauges are last-write-wins in merge order.
    assert left.gauge_value("repro_server_store_version") == 3
    hist = left.histogram_value("repro_fix_seconds")
    assert hist.count == 3 + 4 + 5
    assert hist.samples == (
        a.histogram_value("repro_fix_seconds").samples
        + b.histogram_value("repro_fix_seconds").samples
        + c.histogram_value("repro_fix_seconds").samples
    )


def test_histogram_merge_handles_empty_sides():
    full = HistogramSnapshot(count=2, total=3.0, min=1.0, max=2.0,
                             samples=(1.0, 2.0))
    empty = HistogramSnapshot()
    assert empty.merge(full) == full
    assert full.merge(empty) == full


# -- progress reporter ---------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_progress_heartbeats_throttled_and_final():
    clock = _FakeClock()
    sink = io.StringIO()
    reporter = ProgressReporter(label="batch-repair", total=100,
                                interval=1.0, stream=sink, clock=clock)
    reporter.start()
    clock.now += 0.5
    reporter.advance(10)  # first advance always emits
    reporter.advance(10)  # throttled (no time passed)
    clock.now += 1.0
    reporter.advance(30, rates={"chase": 0.9})
    clock.now += 0.1
    reporter.finish(rates={"chase": 0.92},
                    workers={"thread-1": 30, "thread-2": 20})
    lines = sink.getvalue().splitlines()
    assert len(lines) == 3  # two heartbeats + final; one advance throttled
    assert lines[0].startswith("[batch-repair] 10/100 tuples")
    assert "ETA" in lines[1] and "chase 90%" in lines[1]
    assert "done in" in lines[2]
    assert "thread-1" in lines[2] and "tuples/s" in lines[2]


def test_progress_unknown_total_streams_counts():
    clock = _FakeClock()
    sink = io.StringIO()
    reporter = ProgressReporter(total=None, interval=0, stream=sink,
                                clock=clock)
    clock.now += 1.0
    reporter.advance(7)
    line = sink.getvalue()
    assert "7 tuples" in line
    assert "ETA" not in line


def test_progress_rejects_negative_interval():
    with pytest.raises(ValueError):
        ProgressReporter(interval=-1)
