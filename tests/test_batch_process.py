"""Process-pool batch repair: bit-identical output, start methods, resync.

These tests exercise the ``executor="process"`` fan-out end to end:
workers rehydrate the engine from a pickled :class:`EngineSpec`, chunks
are merged in submission order, and mid-batch master mutations reach the
workers through the version-stamp resync protocol (row snapshots for
in-memory masters, the shared database file for sqlite).
"""

import multiprocessing

import pytest

from repro.engine.store import SqliteStore
from repro.engine.tuples import Row
from repro.repair.batch import BatchRepairEngine, EngineSpec
from repro.repair.certainfix import CertainFix
from repro.repair.oracle import CpuBoundOracle, SimulatedUser


def _pairs(data):
    return [(dt.dirty, SimulatedUser(dt.clean)) for dt in data]


def _example_clean(example, key="s1", item="CD"):
    """A clean R-tuple derived from a master tuple (R and Rm differ)."""
    s = example.masters[key]
    return Row(example.schema, {
        "FN": s["FN"], "LN": s["LN"], "AC": s["AC"], "phn": s["Mphn"],
        "type": 2, "str": s["str"], "city": s["city"], "zip": s["zip"],
        "item": item,
    })


def _assert_sessions_identical(proc_sessions, ref_sessions):
    assert len(proc_sessions) == len(ref_sessions)
    for p, r in zip(proc_sessions, ref_sessions):
        assert p.final == r.final
        assert p.validated == r.validated
        assert p.round_count == r.round_count
        assert p.completed == r.completed
        assert [x.asserted for x in p.rounds] == [x.asserted for x in r.rounds]


# -- bit-identical output -----------------------------------------------------


def test_process_matches_sequential_hosp(hosp, hosp_dirty):
    sequential = CertainFix(hosp.rules, hosp.master, hosp.schema,
                            use_bdd=False)
    ref = sequential.fix_stream(_pairs(hosp_dirty))
    with BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                           use_bdd=False, executor="process",
                           concurrency=2, chunk_size=5) as batch:
        result = batch.run(_pairs(hosp_dirty))
    _assert_sessions_identical(result.sessions, ref)
    report = result.report
    assert report.executor == "process"
    assert report.workers == 2
    assert report.tuples == len(hosp_dirty)
    assert sum(s["tuples"] for s in report.worker_stats.values()) \
        == len(hosp_dirty)
    payload = report.to_dict()
    assert payload["executor"] == "process"
    for stats in payload["worker_stats"].values():
        assert 0.0 <= stats["chase_hit_rate"] <= 1.0


def test_process_matches_sequential_running_example(example):
    workload = []
    for key, item in (("s1", "CD"), ("s2", "BOOK")):
        s = example.masters[key]
        clean = Row(example.schema, {
            "FN": s["FN"], "LN": s["LN"], "AC": s["AC"], "phn": s["Mphn"],
            "type": 2, "str": s["str"], "city": s["city"], "zip": s["zip"],
            "item": item,
        })
        workload.append((clean.with_values({"FN": "Bobby", "city": "???"}),
                         clean))
        workload.append((clean, clean))
    sequential = CertainFix(example.rules, example.master, example.schema)
    ref = sequential.fix_stream(
        (dirty, SimulatedUser(clean)) for dirty, clean in workload
    )
    with BatchRepairEngine(example.rules, example.master, example.schema,
                           use_bdd=False, executor="process",
                           concurrency=2, chunk_size=1) as batch:
        result = batch.run(
            (dirty, SimulatedUser(clean)) for dirty, clean in workload
        )
    _assert_sessions_identical(result.sessions, ref)
    for session, (_, clean) in zip(result.sessions, workload):
        assert session.final == clean


def test_process_with_bdd_fixes_to_ground_truth(hosp, hosp_dirty):
    """Per-worker BDD caches may reorder suggestions, but every fix is
    still the certain fix: final rows equal the ground truth."""
    with BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                           use_bdd=True, executor="process",
                           concurrency=2, chunk_size=8) as batch:
        result = batch.run_dirty(hosp_dirty)
    assert result.report.completed == len(hosp_dirty)
    for session, dt in zip(result.sessions, hosp_dirty):
        assert session.final == dt.clean


# -- start methods ------------------------------------------------------------


@pytest.mark.parametrize("method", ["fork", "spawn"])
def test_start_methods(example, method):
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable on this platform")
    clean = _example_clean(example)
    dirty = clean.with_values({"FN": "Bobby", "city": "???"})
    sequential = CertainFix(example.rules, example.master, example.schema)
    ref = sequential.fix_stream(
        [(dirty, SimulatedUser(clean)) for _ in range(4)]
    )
    with BatchRepairEngine(example.rules, example.master, example.schema,
                           use_bdd=False, executor="process", concurrency=2,
                           chunk_size=2, mp_start_method=method) as batch:
        result = batch.run([(dirty, SimulatedUser(clean)) for _ in range(4)])
    _assert_sessions_identical(result.sessions, ref)
    for session in result.sessions:
        assert session.final == clean


# -- mid-batch master mutation (version stamp re-check) -----------------------


def test_memory_master_update_reaches_live_workers(hosp, hosp_dirty):
    """An update between runs of one live pool ships a row snapshot with
    the next chunks; workers adopt the parent's version stamp and drop
    their caches (reported as cache_invalidations)."""
    from repro.engine.relation import Relation

    data = list(hosp_dirty)
    master = Relation(hosp.schema, hosp.master.iter_rows())  # private copy
    with BatchRepairEngine(hosp.rules, master, hosp.schema,
                           use_bdd=False, executor="process",
                           concurrency=2, chunk_size=5) as batch:
        first = batch.run(_pairs(data))
        assert first.report.cache_invalidations == 0
        version0 = batch.store.version
        # Touch the master through the store seam: delete+insert of one row
        # moves it to iteration end and bumps the version.
        victim = master.row_at(0)
        assert batch.store.delete(victim)
        batch.store.insert(victim)
        assert batch.store.version > version0
        second = batch.run(_pairs(data))
        # Both live workers had stale stamps and must rebuild exactly once.
        assert second.report.cache_invalidations >= 1
        assert second.report.master_version == batch.store.version
    reference = CertainFix(hosp.rules, master, hosp.schema, use_bdd=False)
    ref = reference.fix_stream(_pairs(data))
    _assert_sessions_identical(second.sessions, ref)


def test_sqlite_master_update_reaches_live_workers(tmp_path, hosp,
                                                   hosp_dirty):
    data = list(hosp_dirty)
    store = SqliteStore.from_relation(hosp.master,
                                      path=tmp_path / "master.db")
    with BatchRepairEngine(hosp.rules, store, hosp.schema,
                           use_bdd=False, executor="process",
                           concurrency=2, chunk_size=5) as batch:
        batch.run(_pairs(data))
        victim = next(iter(store))
        assert store.update(victim, victim.with_values({}))
        second = batch.run(_pairs(data))
        assert second.report.cache_invalidations >= 1
    reference = CertainFix(hosp.rules, store, hosp.schema, use_bdd=False)
    ref = reference.fix_stream(_pairs(data))
    _assert_sessions_identical(second.sessions, ref)
    store.close()


def test_snapshot_shipping_stops_after_all_workers_ack(hosp, hosp_dirty):
    """After a mutation, in-memory row snapshots ride along with chunk
    tasks only until every worker has acked the new version stamp; then
    the parent's _pool_version catches up and tasks go back to slim."""
    from repro.engine.relation import Relation

    data = list(hosp_dirty)
    master = Relation(hosp.schema, hosp.master.iter_rows())
    with BatchRepairEngine(hosp.rules, master, hosp.schema,
                           use_bdd=False, executor="process",
                           concurrency=2, chunk_size=3) as batch:
        batch.run(_pairs(data))
        victim = master.row_at(0)
        assert batch.store.delete(victim)
        batch.store.insert(victim)
        # Freshly mutated: the next task must carry the snapshot.
        assert batch._task_for(0, [])[3] is not None
        batch.run(_pairs(data))  # every worker processes chunks and acks
        assert batch._task_for(0, [])[3] is None
        assert batch._pool_version == batch.store.version


# -- spec / lifecycle ---------------------------------------------------------


def test_engine_spec_roundtrip(hosp):
    import pickle

    engine = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                               use_bdd=False)
    spec = engine._make_spec()
    assert isinstance(spec, EngineSpec)
    clone = pickle.loads(pickle.dumps(spec)).build()
    assert clone.store.version == engine.engine.store.version
    assert len(clone.regions) == len(engine.engine.regions)
    assert [r.name for r in clone.rules] \
        == [r.name for r in engine.engine.rules]


def test_memory_sqlite_store_refuses_process_executor(hosp, hosp_dirty):
    store = SqliteStore.from_relation(hosp.master)  # private :memory: db
    batch = BatchRepairEngine(hosp.rules, store, hosp.schema,
                              use_bdd=False, executor="process",
                              concurrency=2)
    with pytest.raises(ValueError, match="cannot cross a fork/spawn"):
        batch.run_dirty(hosp_dirty)
    store.close()


def test_invalid_executor_rejected(hosp):
    with pytest.raises(ValueError, match="executor"):
        BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                          executor="greenlet")


def test_close_is_idempotent_and_pool_rebuilds(example):
    clean = _example_clean(example)
    dirty = clean.with_values({"city": "???"})
    batch = BatchRepairEngine(example.rules, example.master, example.schema,
                              use_bdd=False, executor="process",
                              concurrency=2, chunk_size=1)
    first = batch.run([(dirty, SimulatedUser(clean))])
    batch.close()
    batch.close()  # no-op
    second = batch.run([(dirty, SimulatedUser(clean))])  # fresh pool
    batch.close()
    assert first.final_rows == second.final_rows == [clean]


# -- CPU-bound oracle ---------------------------------------------------------


def test_cpu_bound_oracle_is_transparent(example):
    clean = _example_clean(example)
    dirty = clean.with_values({"FN": "Bobby", "city": "???"})
    engine = CertainFix(example.rules, example.master, example.schema)
    plain = engine.fix(dirty, SimulatedUser(clean))
    burned = engine.fix(dirty, CpuBoundOracle(SimulatedUser(clean), cost=10))
    assert burned.final == plain.final == clean
    assert burned.validated == plain.validated
    with pytest.raises(ValueError, match="cost"):
        CpuBoundOracle(SimulatedUser(clean), cost=-1)
