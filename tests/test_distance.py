"""Edit distance and the cost model."""

from repro.constraints.distance import levenshtein, normalized_distance
from repro.engine.values import NULL, UNKNOWN


def test_levenshtein_basics():
    assert levenshtein("", "") == 0
    assert levenshtein("abc", "abc") == 0
    assert levenshtein("abc", "") == 3
    assert levenshtein("", "abc") == 3
    assert levenshtein("kitten", "sitting") == 3
    assert levenshtein("flaw", "lawn") == 2


def test_levenshtein_symmetry():
    assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")


def test_levenshtein_single_ops():
    assert levenshtein("abc", "abd") == 1   # substitute
    assert levenshtein("abc", "abcd") == 1  # insert
    assert levenshtein("abc", "ac") == 1    # delete


def test_normalized_distance_bounds():
    assert normalized_distance("same", "same") == 0.0
    assert normalized_distance("a", "z") == 1.0
    assert 0.0 < normalized_distance("abcd", "abce") < 1.0


def test_null_overwrites_are_free():
    assert normalized_distance(NULL, "value") == 0.0
    assert normalized_distance(UNKNOWN, "value") == 0.0


def test_non_string_values_coerced():
    assert normalized_distance(123, 124) > 0.0
    assert normalized_distance(123, 123) == 0.0
