"""Direct fixes (Theorem 5): PTIME consistency and coverage, plus SQL text."""

import pytest

from repro.analysis.direct_fixes import (
    NotDirectError,
    direct_conflicts,
    direct_consistency_queries,
    eval_q_phi,
    is_direct_certain_region,
    is_direct_consistent,
    sigma_z,
)
from repro.core.patterns import ANY, PatternTuple, neq
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema
from repro.engine.sql import render_q_pair, render_q_phi


def _setup(master_rows, rules_spec):
    r = RelationSchema("R", [(a, INT) for a in "abcd"])
    rm = RelationSchema("Rm", [(a, INT) for a in "wxyz"])
    master = Relation(rm)
    for row in master_rows:
        master.insert(row)
    rules = [
        EditingRule(lhs, lhs_m, rhs, rhs_m, PatternTuple(pattern or {}),
                    name=f"r{i}")
        for i, (lhs, lhs_m, rhs, rhs_m, pattern) in enumerate(rules_spec)
    ]
    return r, master, rules


def test_non_direct_rules_rejected():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", {"c": 1})],  # pattern attr outside lhs
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    with pytest.raises(NotDirectError):
        is_direct_consistent(rules, master, region, r)


def test_sigma_z_filters_by_lhs_and_rhs():
    _, _, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("c",), ("y",), "d", "z", None),
            (("a",), ("w",), "c", "y", None),
        ],
    )
    active = sigma_z(rules, frozenset({"a", "c"}))
    assert [r.name for r in active] == ["r0", "r1"]  # r2 targets c ∈ Z


def test_self_pair_conflict_detected():
    """One rule, two master tuples with the same key, different targets."""
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    conflicts = direct_conflicts(rules, master, region, r)
    assert conflicts
    assert conflicts[0].attr == "b"
    assert not is_direct_consistent(rules, master, region, r)


def test_cross_rule_conflict_detected():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),   # b := 2
            (("c",), ("y",), "b", "z", None),   # b := 4
        ],
    )
    region = Region.from_patterns(("a", "c"), [{"a": 1, "c": 3}])
    conflicts = direct_conflicts(rules, master, region, r)
    assert any(c.values == (2, 4) or c.values == (4, 2) for c in conflicts)


def test_wildcard_region_pattern_handled_without_instantiation():
    """Direct fixes stay PTIME for arbitrary Tc — no instantiation needed."""
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4), (5, 7, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    bad = Region.from_patterns(("a",), [{"a": ANY}])
    assert not is_direct_consistent(rules, master, bad, r)
    good = Region.from_patterns(("a",), [{"a": neq(1)}])
    assert is_direct_consistent(rules, master, good, r)


def test_direct_coverage_needs_constants_and_master_match():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("a",), ("w",), "c", "y", None),
            (("a",), ("w",), "d", "z", None),
        ],
    )
    concrete = Region.from_patterns(("a",), [{"a": 1}])
    assert is_direct_certain_region(rules, master, concrete, r)
    wildcard_region = Region.from_patterns(("a",), [{"a": ANY}])
    assert not is_direct_certain_region(rules, master, wildcard_region, r)
    no_match = Region.from_patterns(("a",), [{"a": 7}])
    assert not is_direct_certain_region(rules, master, no_match, r)


def test_direct_coverage_no_region_extension():
    """Chained rules do NOT help direct fixes (b -> c needs b ∈ Z)."""
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
            (("c",), ("y",), "d", "z", None),
        ],
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    assert not is_direct_certain_region(rules, master, region, r)
    full = Region.from_patterns(
        ("a", "b", "c"), [{"a": 1, "b": 2, "c": 3}]
    )
    assert is_direct_certain_region(rules, master, full, r)


def test_eval_q_phi_applies_both_pattern_filters():
    r, master, rules = _setup(
        [(1, 2, 3, 4), (5, 6, 3, 4)],
        [(("a",), ("w",), "b", "x", {"a": 1})],
    )
    pattern = PatternTuple({"a": ANY})
    results = eval_q_phi(rules[0], pattern, master)
    assert len(results) == 1
    key, value = results[0]
    assert key == {"a": 1} and value == 2


def test_eval_q_phi_deduplicates():
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 2, 9, 9)],
        [(("a",), ("w",), "b", "x", None)],
    )
    results = eval_q_phi(rules[0], PatternTuple({"a": ANY}), master)
    assert len(results) == 1


def test_rendered_sql_structure():
    _, _, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", {"a": neq(9)})],
    )
    sql = render_q_phi(rules[0], PatternTuple({"a": 1}), "Dm")
    assert "SELECT DISTINCT" in sql
    assert "Dm.w AS a" in sql
    assert "Dm.x AS b" in sql
    assert "Dm.w <> 9" in sql  # the rule's negated pattern
    assert "Dm.w = 1" in sql   # the region constant


def test_rendered_pair_query_uses_inequality():
    _, _, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("a", "c"), ("w", "y"), "b", "z", None),
        ],
    )
    sql = render_q_pair(rules[0], rules[1], PatternTuple({"a": 1, "c": ANY}))
    assert "R1.b <> R2.b" in sql
    assert "R1.a = R2.a" in sql


def test_query_list_covers_rule_pairs():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("c",), ("y",), "b", "z", None),
            (("a",), ("w",), "d", "z", None),
        ],
    )
    region = Region.from_patterns(("a", "c"), [{"a": 1, "c": 3}])
    queries = direct_consistency_queries(rules, "Dm", region)
    # pairs with same rhs: (r0,r0), (r0,r1), (r1,r1), (r2,r2) -> 4
    assert len(queries) == 4


def test_direct_vs_general_checker_agreement():
    """On direct-fix rule sets with single-step coverage, the two checkers
    agree on consistency."""
    from repro.analysis.consistency import is_consistent

    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4), (5, 7, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    for value in (1, 5, 7):
        region = Region.from_patterns(("a",), [{"a": value}])
        assert is_direct_consistent(rules, master, region, r) == is_consistent(
            rules, master, region, r
        )
