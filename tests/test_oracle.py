"""User oracles."""

import pytest

from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row
from repro.repair.oracle import LyingUser, ScriptedUser, SimulatedUser


@pytest.fixture()
def rows():
    schema = RelationSchema("R", ["a", "b", "c"])
    clean = Row(schema, [1, 2, 3])
    dirty = Row(schema, [1, 9, 9])
    return clean, dirty


def test_simulated_user_returns_clean_values(rows):
    clean, dirty = rows
    user = SimulatedUser(clean)
    values = user.assert_correct(dirty, ("b", "c"))
    assert values == {"b": 2, "c": 3}
    assert user.corrected == {"b", "c"}
    assert user.asserted == {"b", "c"}


def test_simulated_user_tracks_only_real_corrections(rows):
    clean, dirty = rows
    user = SimulatedUser(clean)
    user.assert_correct(dirty, ("a",))
    assert user.asserted == {"a"}
    assert user.corrected == set()  # a was already right


def test_simulated_user_revise_is_truthful(rows):
    clean, dirty = rows
    user = SimulatedUser(clean)
    assert user.revise(dirty, ("b",), "conflict") == {"b": 2}


def test_scripted_user_replays(rows):
    clean, dirty = rows
    user = ScriptedUser([{"b": 5}, {"c": 6}])
    assert user.assert_correct(dirty, ("b",)) == {"b": 5}
    assert user.assert_correct(dirty, ("c",)) == {"c": 6}
    with pytest.raises(RuntimeError, match="ran out"):
        user.assert_correct(dirty, ("a",))


def test_scripted_user_skips_unknown_attrs(rows):
    clean, dirty = rows
    user = ScriptedUser([{"b": 5}])
    assert user.assert_correct(dirty, ("b", "c")) == {"b": 5}


def test_lying_user_lies_then_confesses(rows):
    clean, dirty = rows
    user = LyingUser(clean, lie_rounds=1)
    lie = user.assert_correct(dirty, ("b",))
    assert lie == {"b": 9}  # repeats the dirty value
    truth = user.assert_correct(dirty, ("b",))
    assert truth == {"b": 2}
    assert user.lies_told == 1


def test_lying_user_revision_is_truthful(rows):
    clean, dirty = rows
    user = LyingUser(clean, lie_rounds=5)
    user.assert_correct(dirty, ("b",))
    assert user.revise(dirty, ("b",), "conflict") == {"b": 2}
    assert user.revisions == 1
