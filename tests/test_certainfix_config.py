"""CertainFix configuration paths: region ranks, validation toggles,
round budgets, streams."""

import pytest

from repro.datasets import make_dirty_dataset
from repro.repair.certainfix import CertainFix
from repro.repair.oracle import SimulatedUser


def test_crmq_rank_uses_larger_region(hosp):
    crhq = CertainFix(hosp.rules, hosp.master, hosp.schema,
                      initial_region_rank=0)
    regions = crhq.regions
    if len(regions) < 2:
        pytest.skip("need several regions for rank comparison")
    crmq = CertainFix(hosp.rules, hosp.master, hosp.schema,
                      regions=regions,
                      initial_region_rank=len(regions) // 2)
    assert len(crmq.initial_region.region.attrs) >= len(
        crhq.initial_region.region.attrs
    )


def test_rank_clamped_to_available_regions(hosp):
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema,
                        initial_region_rank=999)
    assert engine.initial_region is engine.regions[-1]


def test_crmq_asks_more_asserts_fewer_rule_fixes(hosp):
    data = make_dirty_dataset(hosp, size=25, duplicate_rate=1.0,
                              noise_rate=0.25, seed=31)
    regions = CertainFix(hosp.rules, hosp.master, hosp.schema).regions
    if len(regions) < 2:
        pytest.skip("need several regions")

    def user_burden(rank):
        engine = CertainFix(hosp.rules, hosp.master, hosp.schema,
                            regions=regions, initial_region_rank=rank)
        total = 0
        for dt in data:
            session = engine.fix(dt.dirty, SimulatedUser(dt.clean))
            assert session.final == dt.clean
            total += len(session.attrs_asserted_by_user)
        return total

    assert user_burden(len(regions) // 2) >= user_burden(0)


def test_validation_can_be_disabled(hosp):
    data = make_dirty_dataset(hosp, size=10, duplicate_rate=0.5,
                              noise_rate=0.2, seed=32)
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema,
                        validate_uniqueness=False)
    for dt in data:
        session = engine.fix(dt.dirty, SimulatedUser(dt.clean))
        assert session.final == dt.clean  # truthful oracle: still exact


def test_max_rounds_budget_reports_incomplete(hosp):
    class SilentUser:
        """Answers nothing, ever."""

        def assert_correct(self, current, suggestion):
            return {}

        def revise(self, current, suggestion, reason):
            return {}

    data = make_dirty_dataset(hosp, size=1, duplicate_rate=0.0,
                              noise_rate=0.2, seed=33)
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema, max_rounds=2,
                        validate_uniqueness=False)
    session = engine.fix(data.tuples[0].dirty, SilentUser())
    assert not session.completed
    assert session.round_count == 2


def test_fix_stream_helper(hosp):
    data = make_dirty_dataset(hosp, size=5, duplicate_rate=1.0,
                              noise_rate=0.2, seed=34)
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema)
    sessions = engine.fix_stream(
        (dt.dirty, SimulatedUser(dt.clean)) for dt in data
    )
    assert len(sessions) == 5
    assert all(s.completed for s in sessions)


def test_regions_are_shared_between_engines(hosp):
    """Precomputed regions can seed many engines (the paper: computed once,
    reused while Σ and Dm are unchanged)."""
    base = CertainFix(hosp.rules, hosp.master, hosp.schema)
    regions = base.regions
    reuser = CertainFix(hosp.rules, hosp.master, hosp.schema,
                        regions=regions)
    assert reuser.regions is regions


def test_round_logs_carry_sources(hosp):
    data = make_dirty_dataset(hosp, size=6, duplicate_rate=0.0,
                              noise_rate=0.2, seed=35)
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema)
    for dt in data:
        session = engine.fix(dt.dirty, SimulatedUser(dt.clean))
        assert session.rounds[0].suggestion_source == "initial-region"
        for r in session.rounds[1:]:
            assert r.suggestion_source in (
                "certain-region", "structural", "remainder",
            )
