"""SQL rendering helpers."""

from repro.core.patterns import ANY, PatternTuple, neq
from repro.engine.sql import condition_sql, pattern_where, sql_literal


def test_sql_literal_types():
    assert sql_literal(5) == "5"
    assert sql_literal(2.5) == "2.5"
    assert sql_literal(True) == "TRUE"
    assert sql_literal("text") == "'text'"


def test_sql_literal_escapes_quotes():
    assert sql_literal("O'Brien") == "'O''Brien'"


def test_condition_sql_variants():
    assert condition_sql("t.a", PatternTuple({"a": 5})["a"]) == "t.a = 5"
    assert condition_sql("t.a", neq(5)) == "t.a <> 5"
    assert condition_sql("t.a", ANY) == "TRUE"


def test_pattern_where_skips_wildcards_and_missing():
    tp = PatternTuple({"a": 1, "b": ANY})
    predicates = pattern_where(["ca", "cb", "cc"], tp, ["a", "b", "c"], "T")
    assert predicates == ["T.ca = 1"]
