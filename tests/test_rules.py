"""Editing rules: structure, normal form, and the application semantics."""

import pytest

from repro.core.patterns import ANY, PatternTuple, neq
from repro.core.rules import (
    EditingRule,
    expand_rule_family,
    rules_attrs,
    rules_lhs,
    rules_rhs,
)
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row


@pytest.fixture()
def schemas():
    r = RelationSchema("R", ["a", "b", "c"])
    rm = RelationSchema("Rm", ["x", "y", "z"])
    return r, rm


def test_rule_structure_validation():
    with pytest.raises(ValueError, match="same length"):
        EditingRule(("a", "b"), ("x",), "c", "z")
    with pytest.raises(ValueError, match="duplicate"):
        EditingRule(("a", "a"), ("x", "y"), "c", "z")
    with pytest.raises(ValueError, match="must not occur"):
        EditingRule(("a",), ("x",), "a", "z")


def test_repeated_master_attrs_allowed():
    # The Theorem 12 construction matches many R attributes against B1.
    rule = EditingRule(("a", "b"), ("x", "x"), "c", "z")
    assert rule.lhs_m == ("x", "x")


def test_notation_accessors():
    rule = EditingRule(("a", "b"), ("x", "y"), "c", "z",
                       PatternTuple({"a": 1}))
    assert rule.lhs == ("a", "b")
    assert rule.lhs_m == ("x", "y")
    assert rule.rhs == "c"
    assert rule.rhs_m == "z"
    assert rule.lhs_p == ("a",)
    assert rule.premise_attrs == {"a", "b"}
    assert rule.master_attr_of("b") == "y"
    assert rule.master_attrs_of(("b", "a")) == ("y", "x")


def test_master_attr_of_unknown_raises():
    rule = EditingRule(("a",), ("x",), "c", "z")
    with pytest.raises(KeyError):
        rule.master_attr_of("b")


def test_normal_form(schemas):
    rule = EditingRule(("a",), ("x",), "c", "z",
                       PatternTuple({"a": 1, "b": ANY}))
    assert not rule.is_normal_form
    normalized = rule.normalized()
    assert normalized.is_normal_form
    assert normalized.pattern.attrs == ("a",)


def test_normalization_preserves_semantics(schemas):
    """The Sect. 2 remark: φ and its normal form are equivalent."""
    r, rm = schemas
    rule = EditingRule(("a",), ("x",), "c", "z",
                       PatternTuple({"a": 1, "b": ANY}))
    normalized = rule.normalized()
    tm = Row(rm, [1, 2, 3])
    for values in ([1, 5, 9], [1, 7, 0], [2, 5, 9]):
        t = Row(r, values)
        assert rule.applies_to(t, tm) == normalized.applies_to(t, tm)
        if rule.applies_to(t, tm):
            assert rule.apply(t, tm) == normalized.apply(t, tm)


def test_application_semantics(schemas):
    r, rm = schemas
    rule = EditingRule(("a",), ("x",), "c", "z", PatternTuple({"b": neq(0)}))
    tm = Row(rm, [1, 2, 30])
    t = Row(r, [1, 5, 9])
    assert rule.applies_to(t, tm)
    fixed = rule.apply(t, tm)
    assert fixed["c"] == 30
    assert fixed["a"] == 1 and fixed["b"] == 5  # only B changes


def test_application_requires_pattern_and_key(schemas):
    r, rm = schemas
    rule = EditingRule(("a",), ("x",), "c", "z", PatternTuple({"b": neq(0)}))
    tm = Row(rm, [1, 2, 30])
    assert not rule.applies_to(Row(r, [1, 0, 9]), tm)  # pattern fails
    assert not rule.applies_to(Row(r, [2, 5, 9]), tm)  # key mismatch
    with pytest.raises(ValueError):
        rule.apply(Row(r, [2, 5, 9]), tm)


def test_matching_master_rows_uses_index(schemas):
    r, rm = schemas
    master = Relation(rm)
    master.insert([1, 2, 30])
    master.insert([1, 9, 40])
    master.insert([2, 2, 50])
    rule = EditingRule(("a",), ("x",), "c", "z")
    t = Row(r, [1, 5, 9])
    assert len(rule.matching_master_rows(t, master)) == 2


def test_is_direct():
    assert EditingRule(("a",), ("x",), "c", "z", PatternTuple({"a": 1})).is_direct
    assert not EditingRule(
        ("a",), ("x",), "c", "z", PatternTuple({"b": 1})
    ).is_direct


def test_expand_rule_family():
    family = expand_rule_family(
        ("k",), ("km",), ["p", "q"], PatternTuple({"k": neq(None)}),
        name_prefix="f",
    )
    assert [r.rhs for r in family] == ["p", "q"]
    assert [r.rhs_m for r in family] == ["p", "q"]
    assert family[0].name == "f[p]"


def test_rule_set_notation_helpers():
    rules = [
        EditingRule(("a",), ("x",), "c", "z", PatternTuple({"b": 1})),
        EditingRule(("b",), ("y",), "a", "x"),
    ]
    assert rules_lhs(rules) == {"a", "b"}
    assert rules_rhs(rules) == {"c", "a"}
    assert rules_attrs(rules) == {"a", "b", "c"}


def test_rule_equality_ignores_name():
    r1 = EditingRule(("a",), ("x",), "c", "z", name="one")
    r2 = EditingRule(("a",), ("x",), "c", "z", name="two")
    assert r1 == r2 and hash(r1) == hash(r2)


def test_with_pattern_keeps_everything_else():
    rule = EditingRule(("a",), ("x",), "c", "z", PatternTuple({"b": 1}))
    refined = rule.with_pattern(PatternTuple({"b": 1, "a": 2}))
    assert refined.lhs == rule.lhs and refined.rhs == rule.rhs
    assert refined.lhs_p == ("b", "a")
