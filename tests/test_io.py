"""Serialization round-trips."""

import json

import pytest

from repro.core.patterns import ANY, Const, NotConst, PatternTuple
from repro.core.regions import Region
from repro.engine.values import NULL
from repro.io import (
    dumps,
    loads,
    pattern_tuple_from_dict,
    pattern_tuple_to_dict,
    pattern_value_from_dict,
    pattern_value_to_dict,
    region_from_dict,
    region_to_dict,
    rule_from_dict,
    rule_to_dict,
)


@pytest.mark.parametrize("condition", [
    ANY, Const(5), Const("text"), NotConst("0800"), Const(NULL), NotConst(NULL),
])
def test_pattern_value_roundtrip(condition):
    assert pattern_value_from_dict(pattern_value_to_dict(condition)) == condition


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown pattern value kind"):
        pattern_value_from_dict({"kind": "fuzzy"})


def test_pattern_tuple_roundtrip_preserves_order():
    tp = PatternTuple({"b": 1, "a": NotConst(2), "c": ANY})
    back = pattern_tuple_from_dict(pattern_tuple_to_dict(tp))
    assert back == tp
    assert back.attrs == tp.attrs


def test_rule_roundtrip(example):
    for rule in example.rules:
        back = rule_from_dict(rule_to_dict(rule))
        assert back == rule
        assert back.name == rule.name


def test_rule_roundtrip_with_master_guard():
    from repro.core.rules import EditingRule
    from repro.engine.multi import guard_for

    rule = EditingRule("a", "am", "b", "bm",
                       PatternTuple({"a": NotConst(NULL)}),
                       master_guard=guard_for("persons"))
    back = rule_from_dict(rule_to_dict(rule))
    assert back == rule
    assert back.master_guard == rule.master_guard


def test_region_roundtrip(example):
    region = example.regions["Zzmi"]
    back = region_from_dict(region_to_dict(region))
    assert back == region


def test_json_document_roundtrip(example):
    text = dumps(example.rules)
    json.loads(text)  # valid JSON
    back = loads(text)
    assert back == example.rules


def test_hosp_rules_roundtrip_through_json(hosp):
    assert loads(dumps(hosp.rules)) == hosp.rules


def test_null_values_survive_json(hosp):
    """The ≠ NULL guards must survive a JSON round trip as the sentinel."""
    back = loads(dumps(hosp.rules))
    for rule in back:
        for attr in rule.lhs:
            assert rule.pattern[attr].value is NULL
