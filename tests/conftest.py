"""Shared fixtures: the paper's running example and small dataset bundles."""

import pytest

from repro.datasets import make_dblp, make_dirty_dataset, make_hosp
from repro.datasets.running_example import make_running_example


@pytest.fixture(scope="session")
def example():
    """The Fig. 1 running example (schemas, master, rules, tuples, regions)."""
    return make_running_example()


@pytest.fixture(scope="session")
def hosp():
    """A small HOSP bundle (|Dm| = 150)."""
    return make_hosp(num_hospitals=30, num_measures=5, seed=7)


@pytest.fixture(scope="session")
def dblp():
    """A small DBLP bundle (|Dm| = 150)."""
    return make_dblp(num_papers=150, num_authors=60, num_venues=12, seed=11)


@pytest.fixture(scope="session")
def hosp_dirty(hosp):
    """A small dirty HOSP workload at the paper's default rates."""
    return make_dirty_dataset(
        hosp, size=40, duplicate_rate=0.3, noise_rate=0.2, seed=3
    )


@pytest.fixture(scope="session")
def dblp_dirty(dblp):
    return make_dirty_dataset(
        dblp, size=40, duplicate_rate=0.3, noise_rate=0.2, seed=3
    )
