"""Relational operators, including the HOSP-style natural join."""

import pytest

from repro.engine.query import equi_join, natural_join, project, rename, select
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema


@pytest.fixture()
def left():
    r = Relation(RelationSchema("L", ["id", "name"]))
    r.insert([1, "a"])
    r.insert([2, "b"])
    return r


@pytest.fixture()
def right():
    r = Relation(RelationSchema("Rt", ["id", "score"]))
    r.insert([1, 10])
    r.insert([1, 20])
    r.insert([3, 30])
    return r


def test_natural_join_on_shared_attr(left, right):
    joined = natural_join(left, right)
    assert joined.schema.attributes == ("id", "name", "score")
    assert sorted(row.values for row in joined) == [(1, "a", 10), (1, "a", 20)]


def test_natural_join_without_shared_attrs_raises(left):
    other = Relation(RelationSchema("O", ["x"]))
    with pytest.raises(ValueError, match="cross product"):
        natural_join(left, other)


def test_equi_join_with_explicit_pairs(left):
    other = Relation(RelationSchema("O", ["key", "extra"]))
    other.insert([2, "yes"])
    joined = equi_join(left, other, [("id", "key")])
    assert [row.values for row in joined] == [(2, "b", "yes")]


def test_equi_join_duplicate_column_conflict(left):
    other = Relation(RelationSchema("O", ["key", "name"]))
    other.insert([1, "clash"])
    with pytest.raises(ValueError, match="rename"):
        equi_join(left, other, [("id", "key")])


def test_rename_then_join(left):
    other = Relation(RelationSchema("O", ["key", "name"]))
    other.insert([1, "clash"])
    renamed = rename(other, {"name": "other_name"})
    joined = equi_join(left, renamed, [("id", "key")])
    assert joined.first()["other_name"] == "clash"


def test_select_and_project_operators(left):
    assert len(select(left, lambda r: r["id"] > 1)) == 1
    assert project(left, ["name"]).schema.attributes == ("name",)


def test_hosp_join_pipeline(hosp):
    """The three HOSP base tables natural-join to exactly the master data."""
    joined = natural_join(
        natural_join(hosp.base_tables["HOSP"], hosp.base_tables["HOSP_MSR_XWLK"]),
        hosp.base_tables["STATE_MSR_AVG"],
    )
    assert len(joined) == len(hosp.master)
    assert set(hosp.schema.attributes) <= set(joined.schema.attributes)
