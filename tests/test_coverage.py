"""The coverage problem: certain regions (Theorem 2)."""

from repro.analysis.coverage import coverage_report, is_certain_region
from repro.core.patterns import ANY, PatternTuple
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema


def _setup(master_rows, rules_spec):
    r = RelationSchema("R", [(a, INT) for a in "abcd"])
    rm = RelationSchema("Rm", [(a, INT) for a in "wxyz"])
    master = Relation(rm)
    for row in master_rows:
        master.insert(row)
    rules = [
        EditingRule(lhs, lhs_m, rhs, rhs_m, PatternTuple(pattern or {}),
                    name=f"r{i}")
        for i, (lhs, lhs_m, rhs, rhs_m, pattern) in enumerate(rules_spec)
    ]
    return r, master, rules


def test_full_chain_region_is_certain():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
            (("c",), ("y",), "d", "z", None),
        ],
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    assert is_certain_region(rules, master, region, r)


def test_missing_rule_breaks_coverage():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
        ],
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    assert not is_certain_region(rules, master, region, r)


def test_region_can_cover_by_including_unfixable_attrs():
    """Attributes not fixable by rules must sit in Z (Example 8's item)."""
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
        ],
    )
    region = Region.from_patterns(("a", "d"), [{"a": 1, "d": ANY}])
    assert is_certain_region(rules, master, region, r)


def test_no_master_match_breaks_coverage():
    r, master, rules = _setup(
        [(9, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
            (("c",), ("y",), "d", "z", None),
        ],
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    assert not is_certain_region(rules, master, region, r)


def test_inconsistent_region_is_not_certain():
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
            (("c",), ("y",), "d", "z", None),
        ],
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    report = coverage_report(rules, master, region, r)
    assert not report.certain
    assert not report.consistent


def test_paper_certain_regions(example):
    """Example 9: (Zzmi, Tzmi) and (ZL, TL) are certain; (Zzm, Tzm) is not."""
    assert is_certain_region(
        example.rules, example.master, example.regions["Zzmi"], example.schema
    )
    assert is_certain_region(
        example.rules, example.master, example.regions["ZL"], example.schema
    )
    assert not is_certain_region(
        example.rules, example.master, example.regions["Zzm"], example.schema
    )


def test_paper_zah_consistent_but_not_certain(example):
    report = coverage_report(
        example.rules, example.master, example.regions["ZAH"], example.schema
    )
    assert report.consistent
    assert not report.certain  # FN/LN/item never covered


def test_paper_zahz_is_inconsistent(example):
    report = coverage_report(
        example.rules, example.master, example.regions["ZAHZ"], example.schema
    )
    assert not report.consistent
