"""The `repro lint` subcommand and the lint preflights of its siblings."""

import json

import pytest

from repro import io as rule_io
from repro.cli import main
from repro.core.patterns import PatternTuple
from repro.core.rules import EditingRule
from repro.engine.csvio import relation_to_csv


@pytest.fixture()
def hosp_files(tmp_path, hosp):
    master_csv = tmp_path / "master.csv"
    relation_to_csv(hosp.master, master_csv)
    rules_json = tmp_path / "rules.json"
    rules_json.write_text(rule_io.dumps(hosp.rules) + "\n")
    return str(rules_json), str(master_csv)


def _bad_rules_file(tmp_path):
    path = tmp_path / "bad_rules.json"
    rule = EditingRule("id", "id", "hNaem", "hName", PatternTuple({}),
                       name="typo")
    path.write_text(rule_io.dumps([rule]) + "\n")
    return str(path)


def test_lint_text_default_exit_zero(capsys, hosp_files):
    # The exact certification clears the seed-era sampled W202 warnings.
    rules_json, master_csv = hosp_files
    assert main(["lint", "--rules", rules_json, "--master", master_csv]) == 0
    out = capsys.readouterr().out
    assert "W202" not in out and "I107" in out
    assert "0 error(s), 0 warning(s), 1 info(s)" in out


def test_lint_fail_on_info_exits_one(capsys, hosp_files):
    # hosp lints down to one I107 info now; the gate still trips on it.
    rules_json, master_csv = hosp_files
    assert main([
        "lint", "--rules", rules_json, "--master", master_csv,
        "--fail-on", "warning",
    ]) == 0
    assert main([
        "lint", "--rules", rules_json, "--master", master_csv,
        "--fail-on", "info",
    ]) == 1


def test_lint_json_is_machine_readable(capsys, hosp_files):
    rules_json, master_csv = hosp_files
    assert main([
        "lint", "--rules", rules_json, "--master", master_csv,
        "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["warnings"] == 0
    assert [d["code"] for d in doc["diagnostics"]] == ["I107"]
    assert "E205" in doc["summary"]["passes_run"]


def test_lint_sarif_output_file(tmp_path, capsys, hosp_files):
    rules_json, master_csv = hosp_files
    out_path = tmp_path / "lint.sarif"
    assert main([
        "lint", "--rules", rules_json, "--master", master_csv,
        "--format", "sarif", "--output", str(out_path),
    ]) == 0
    printed = capsys.readouterr().out
    assert "wrote sarif report" in printed
    sarif = json.loads(out_path.read_text())
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= \
        {"E101", "W202", "I107", "E205", "W206", "I208"}
    for result in run["results"]:
        uri = result["locations"][0]["physicalLocation"]
        assert uri["artifactLocation"]["uri"] == rules_json


def test_lint_sarif_carries_rule_source_lines(tmp_path, capsys, hosp_files):
    # Rule-indexed findings point at the physical line of the offending
    # rule object inside the rules JSON file.
    _, master_csv = hosp_files
    rules_json = _bad_rules_file(tmp_path)
    assert main([
        "lint", "--rules", rules_json, "--master", master_csv,
        "--format", "sarif",
    ]) == 1
    sarif = json.loads(capsys.readouterr().out)
    (run,) = sarif["runs"]
    e101 = next(r for r in run["results"] if r["ruleId"] == "E101")
    physical = e101["locations"][0]["physicalLocation"]
    start_line = physical["region"]["startLine"]
    lines = open(rules_json, encoding="utf-8").read().splitlines()
    assert lines[start_line - 1].lstrip().startswith("{")


def test_lint_sqlite_backend_agrees_with_memory(tmp_path, capsys,
                                                hosp_files):
    rules_json, master_csv = hosp_files
    assert main([
        "lint", "--rules", rules_json, "--master", master_csv,
        "--master-backend", "sqlite",
        "--sqlite-path", str(tmp_path / "m.db"),
        "--format", "json",
    ]) == 0
    sqlite_doc = json.loads(capsys.readouterr().out)
    assert main([
        "lint", "--rules", rules_json, "--master", master_csv,
        "--format", "json",
    ]) == 0
    memory_doc = json.loads(capsys.readouterr().out)
    # Same findings either way; only the version stamp may differ.
    assert sqlite_doc["diagnostics"] == memory_doc["diagnostics"]


def test_lint_unparsable_rules_is_e100_exit_two(tmp_path, capsys,
                                                hosp_files):
    _, master_csv = hosp_files
    bad = tmp_path / "nonsense.json"
    bad.write_text("not json at all")
    assert main(["lint", "--rules", str(bad), "--master", master_csv]) == 2
    err = capsys.readouterr().err
    assert "E100" in err and "unparsable-rules" in err


def test_lint_error_findings_fail_default_gate(tmp_path, capsys, hosp_files):
    _, master_csv = hosp_files
    assert main([
        "lint", "--rules", _bad_rules_file(tmp_path),
        "--master", master_csv, "--format", "json",
    ]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["errors"] >= 1
    assert "E101" in [d["code"] for d in doc["diagnostics"]]


def test_lint_missing_master_is_clean_error(capsys, hosp_files):
    rules_json, _ = hosp_files
    assert main(["lint", "--rules", rules_json]) == 2
    assert capsys.readouterr().err.startswith("error:")


def test_analyze_unknown_attribute_exits_two_with_diagnostics(
        tmp_path, capsys, hosp_files):
    _, master_csv = hosp_files
    code = main([
        "analyze", "--rules", _bad_rules_file(tmp_path),
        "--master", master_csv,
    ])
    captured = capsys.readouterr()
    assert code == 2
    assert "E101" in captured.err
    assert "did you mean 'hName'" in captured.err
    assert "Traceback" not in captured.err


def test_analyze_unparsable_rules_exits_two(tmp_path, capsys, hosp_files):
    _, master_csv = hosp_files
    bad = tmp_path / "nonsense.json"
    bad.write_text("[broken")
    assert main(["analyze", "--rules", str(bad),
                 "--master", master_csv]) == 2
    assert "E100" in capsys.readouterr().err


def test_analyze_prints_cycle_witness(tmp_path, capsys):
    from repro.engine.relation import Relation
    from repro.engine.schema import RelationSchema

    schema = RelationSchema("r", ["a", "b", "c"])
    master = Relation(schema)
    master.insert(["1", "2", "3"])
    master_csv = tmp_path / "m.csv"
    relation_to_csv(master, master_csv)
    rules_json = tmp_path / "r.json"
    rules_json.write_text(rule_io.dumps([
        EditingRule("a", "a", "b", "b", name="ab"),
        EditingRule("b", "b", "a", "a", name="ba"),
        EditingRule("a", "a", "c", "c", name="ac"),
    ]))
    main(["analyze", "--rules", str(rules_json), "--master",
          str(master_csv)])
    out = capsys.readouterr().out
    assert "cyclic: " in out
    assert "ab -> ba -> ab" in out or "ba -> ab -> ba" in out


def test_mine_lints_by_default(tmp_path, capsys, hosp):
    master_csv = tmp_path / "master.csv"
    relation_to_csv(hosp.master, master_csv)
    out_json = tmp_path / "mined.json"
    assert main([
        "mine", "--master", str(master_csv), "--output", str(out_json),
        "--max-key", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "lint:" in out
    assert out_json.exists()


def test_mine_no_lint_skips_the_gate(tmp_path, capsys, hosp):
    master_csv = tmp_path / "master.csv"
    relation_to_csv(hosp.master, master_csv)
    out_json = tmp_path / "mined.json"
    assert main([
        "mine", "--master", str(master_csv), "--output", str(out_json),
        "--max-key", "1", "--no-lint",
    ]) == 0
    assert "lint:" not in capsys.readouterr().out
    assert out_json.exists()


def test_mine_error_findings_block_the_write(tmp_path, capsys, hosp,
                                             monkeypatch):
    import repro.cli as cli

    # Force discovery to produce a rule with an error-level finding; the
    # file must NOT be written.
    broken = EditingRule("id", "id", "bogus", "hName", name="broken")
    monkeypatch.setattr(cli, "discover_editing_rules", lambda *a, **k: [])
    monkeypatch.setattr(cli, "rules_only", lambda discovered: [broken])
    master_csv = tmp_path / "master.csv"
    relation_to_csv(hosp.master, master_csv)
    out_json = tmp_path / "mined.json"
    assert main([
        "mine", "--master", str(master_csv), "--output", str(out_json),
    ]) == 2
    err = capsys.readouterr().err
    assert "E101" in err and "refusing to write" in err
    assert not out_json.exists()


def test_lint_fix_applies_and_is_idempotent(tmp_path, capsys, hosp_files):
    _, master_csv = hosp_files
    dup = [
        EditingRule("id", "id", "hName", "hName", PatternTuple({}),
                    name="a"),
        EditingRule("id", "id", "hName", "hName", PatternTuple({}),
                    name="b"),
    ]
    rules_json = tmp_path / "dup.json"
    rules_json.write_text(rule_io.dumps(dup) + "\n")
    assert main([
        "lint", "--rules", str(rules_json), "--master", master_csv, "--fix",
    ]) == 0
    out = capsys.readouterr().out
    assert "fix: applied" in out
    rules, _, _ = rule_io.load_document(rules_json.read_text())
    assert len(rules) == 1  # the W103 duplicate was removed
    # Second run: fixed point already reached, the file must not change.
    before = rules_json.read_text()
    assert main([
        "lint", "--rules", str(rules_json), "--master", master_csv, "--fix",
    ]) == 0
    assert "fix: no applyable fix-its" in capsys.readouterr().out
    assert rules_json.read_text() == before


def test_batch_repair_certify_preflight_passes_clean_rules(
        tmp_path, capsys, hosp, hosp_files):
    from repro.engine.relation import Relation

    rules_json, master_csv = hosp_files
    dirty_csv = tmp_path / "dirty.csv"
    relation_to_csv(Relation(hosp.schema, [hosp.master.first()]), dirty_csv)
    assert main([
        "batch-repair", "--rules", rules_json, "--master", master_csv,
        "--input", str(dirty_csv), "--clean", str(dirty_csv),
        "--preflight", "certify",
    ]) == 0


def test_batch_repair_preflight_gate(tmp_path, capsys, hosp, hosp_files):
    from repro.engine.relation import Relation

    _, master_csv = hosp_files
    dirty_csv = tmp_path / "dirty.csv"
    relation_to_csv(Relation(hosp.schema, [hosp.master.first()]), dirty_csv)
    argv = [
        "batch-repair", "--rules", _bad_rules_file(tmp_path),
        "--master", master_csv,
        "--input", str(dirty_csv), "--clean", str(dirty_csv),
    ]
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "E101" in err
    assert "Traceback" not in err
