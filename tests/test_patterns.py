"""Pattern values, pattern tuples and tableaux (Sect. 2 semantics)."""

import pytest

from repro.core.patterns import (
    ANY,
    Const,
    NotConst,
    PatternTableau,
    PatternTuple,
    const,
    neq,
    wildcard,
)
from repro.engine.schema import RelationSchema, finite_domain, STRING
from repro.engine.tuples import Row
from repro.engine.values import UNKNOWN


def test_constant_matches_only_its_value():
    c = const(5)
    assert c.matches(5)
    assert not c.matches(6)
    assert c.is_constant and not c.is_negation and not c.is_wildcard


def test_negation_matches_everything_else():
    n = neq(5)
    assert not n.matches(5)
    assert n.matches(6)
    assert n.is_negation


def test_wildcard_matches_all_and_is_singleton():
    assert wildcard().matches(object())
    assert wildcard() is ANY


def test_pattern_tuple_matching_semantics():
    schema = RelationSchema("R", ["a", "b", "c"])
    tp = PatternTuple({"a": 1, "b": neq(2), "c": ANY})
    assert tp.matches(Row(schema, [1, 3, 9]))
    assert not tp.matches(Row(schema, [1, 2, 9]))   # b = 2 violates ā
    assert not tp.matches(Row(schema, [0, 3, 9]))   # a != 1


def test_unknown_fails_non_wildcard_conditions():
    tp = PatternTuple({"a": 1, "b": ANY})
    assert not tp.matches_values({"a": UNKNOWN, "b": 5})
    assert tp.matches_values({"a": 1, "b": UNKNOWN})  # wildcard ignores UNKNOWN


def test_empty_pattern_matches_everything():
    schema = RelationSchema("R", ["a"])
    assert PatternTuple({}).matches(Row(schema, [1]))


def test_raw_values_coerced_to_constants():
    tp = PatternTuple({"a": 7})
    assert isinstance(tp["a"], Const)


def test_duplicate_attrs_rejected():
    with pytest.raises(ValueError):
        PatternTuple(attrs=["a", "a"], values=[1, 2])


def test_attrs_values_must_align():
    with pytest.raises(ValueError):
        PatternTuple(attrs=["a"], values=[1, 2])


def test_normalized_drops_wildcards():
    tp = PatternTuple({"a": 1, "b": ANY, "c": neq(3)})
    n = tp.normalized()
    assert n.attrs == ("a", "c")
    assert "b" not in n


def test_concrete_and_positive_classification():
    assert PatternTuple({"a": 1}).is_concrete
    assert not PatternTuple({"a": neq(1)}).is_concrete
    assert not PatternTuple({"a": ANY}).is_concrete
    assert PatternTuple({"a": 1, "b": ANY}).is_positive
    assert not PatternTuple({"a": neq(1)}).is_positive


def test_restrict_and_extend():
    tp = PatternTuple({"a": 1, "b": 2})
    assert tp.restrict(["b"]).attrs == ("b",)
    extended = tp.extend({"c": ANY})
    assert extended.attrs == ("a", "b", "c")
    assert extended["c"].is_wildcard


def test_satisfiability_over_finite_domains():
    small = finite_domain("one", {1})
    schema = RelationSchema("R", [("a", small), ("b", STRING)])
    assert PatternTuple({"a": 1}).satisfiable(schema)
    assert not PatternTuple({"a": 2}).satisfiable(schema)
    assert not PatternTuple({"a": neq(1)}).satisfiable(schema)  # domain exhausted
    assert PatternTuple({"b": neq("x")}).satisfiable(schema)


def test_pattern_equality_and_hash():
    t1 = PatternTuple({"a": 1, "b": neq(2)})
    t2 = PatternTuple({"a": 1, "b": neq(2)})
    assert t1 == t2 and hash(t1) == hash(t2)
    assert t1 != PatternTuple({"a": 1, "b": 2})


def test_tableau_marking():
    schema = RelationSchema("R", ["a", "b"])
    tableau = PatternTableau(
        ("a", "b"),
        [PatternTuple({"a": 1, "b": ANY}), PatternTuple({"a": 2, "b": 5})],
    )
    assert tableau.marks(Row(schema, [1, 99]))
    assert tableau.marks(Row(schema, [2, 5]))
    assert not tableau.marks(Row(schema, [2, 6]))
    assert len(tableau.marking_patterns(Row(schema, [1, 0]))) == 1


def test_tableau_rejects_mismatched_pattern():
    tableau = PatternTableau(("a", "b"))
    with pytest.raises(ValueError):
        tableau.add(PatternTuple({"a": 1}))


def test_tableau_deduplicates():
    tableau = PatternTableau(("a",))
    tableau.add(PatternTuple({"a": 1}))
    tableau.add(PatternTuple({"a": 1}))
    assert len(tableau) == 1


def test_tableau_extend_all():
    tableau = PatternTableau(("a",), [PatternTuple({"a": 1})])
    extended = tableau.extend_all({"b": ANY})
    assert extended.attrs == ("a", "b")
    assert extended.patterns[0]["b"].is_wildcard
