"""The IncRep baseline: repairs, cost ordering, and its failure modes."""

import pytest

from repro.constraints.increp import IncRep
from repro.datasets import make_dirty_dataset
from repro.engine.values import NULL
from repro.metrics import aggregate, evaluate_repair


@pytest.fixture(scope="module")
def increp(hosp):
    return IncRep(hosp.rules, hosp.master, hosp.schema)


def test_clean_master_tuple_untouched(hosp, increp):
    clean = hosp.master.first()
    result = increp.repair(clean)
    assert result.row == clean
    assert not result.changed


def test_single_dirty_target_repaired(hosp, increp):
    clean = hosp.master.first()
    dirty = clean.with_values({"hName": "Wrong Name"})
    result = increp.repair(dirty)
    assert result.row["hName"] == clean["hName"]
    assert result.changed_attrs == {"hName"}


def test_null_enrichment_is_free_and_applied(hosp, increp):
    clean = hosp.master.first()
    dirty = clean.with_values({"zip": NULL, "city": NULL})
    result = increp.repair(dirty)
    assert result.row["zip"] == clean["zip"]
    assert result.row["city"] == clean["city"]


def test_near_match_fixes_dirty_key_side(hosp, increp):
    """(mCode, ST) -> sAvg with a dirty sAvg AND (zip, ST) near matches."""
    clean = hosp.master.first()
    dirty = clean.with_values({"ST": "??"})
    result = increp.repair(dirty)
    assert result.row["ST"] == clean["ST"]


def test_entity_mixup_produces_wrong_repairs(hosp, increp):
    """A swapped phone drags the repair toward the wrong hospital for some
    attributes - the no-certainty failure mode the paper criticizes."""
    rows = hosp.master.rows
    clean = rows[0]
    other = next(
        r for r in rows[1:] if r["id"] != clean["id"]
    )
    dirty = clean.with_values({"phn": other["phn"]})
    result = increp.repair(dirty)
    # IncRep resolves the id/phn disagreement *somehow*; whichever side it
    # picks, it modified an attribute it cannot certify.
    assert result.changed


def test_repair_terminates_within_schema_bound(hosp, increp):
    data = make_dirty_dataset(hosp, size=15, duplicate_rate=0.5,
                              noise_rate=0.5, seed=9)
    for dt in data:
        result = increp.repair(dt.dirty)
        assert result.iterations <= len(hosp.schema) + 1


def test_precision_below_one_under_noise(hosp, increp):
    data = make_dirty_dataset(hosp, size=60, duplicate_rate=0.3,
                              noise_rate=0.3, seed=10)
    evals = [
        evaluate_repair(dt.dirty, dt.clean, increp.repair(dt.dirty).row, ())
        for dt in data
    ]
    m = aggregate(evals)
    assert m.wrong_attrs > 0
    assert m.precision_a < 1.0
    assert m.recall_a > 0.1


def test_f_measure_degrades_with_noise(hosp, increp):
    """Fig. 11(c)'s shape: IncRep F at heavy noise is below light noise."""
    def f_at(noise):
        data = make_dirty_dataset(hosp, size=80, duplicate_rate=0.3,
                                  noise_rate=noise, seed=11)
        evals = [
            evaluate_repair(dt.dirty, dt.clean,
                            increp.repair(dt.dirty).row, ())
            for dt in data
        ]
        return aggregate(evals).f_measure

    assert f_at(0.5) < f_at(0.1)


def test_weights_steer_resolution(hosp):
    """An expensive attribute is repaired only if no cheaper candidate."""
    heavy = IncRep(hosp.rules, hosp.master, hosp.schema,
                   weights={"hName": 100.0})
    clean = hosp.master.first()
    dirty = clean.with_values({"hName": "Wrong"})
    result = heavy.repair(dirty)
    # Still repaired (it is the only violation), just at higher cost.
    assert result.row["hName"] == clean["hName"]
