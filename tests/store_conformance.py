"""Reusable MasterStore conformance suite.

Every :class:`~repro.engine.store.MasterStore` backend must satisfy the
same contract — the repair layer's correctness (bit-identical fixes per
backend, versioned cache invalidation, process fan-out) depends on it.
This module captures that contract once, as a suite any backend inherits:

* probe semantics — exact-typed keys, insertion-order results, duplicate
  attributes, mismatched-key ``ValueError``, immutability of results,
  ``probe_ref`` aliasing rules, ``probe_many`` ≡ a probe loop;
* version semantics — monotone, moves iff the data changed, a failed
  delete/update does not bump;
* mutation semantics — ``delete`` removes exactly one occurrence,
  ``update`` is delete-then-insert (the replacement lands at iteration
  end), both visible to subsequent probes (cache invalidation);
* iteration — insertion order, surviving mixed mutations;
* delta journal — ``deltas_since`` returns the exact contiguous
  :class:`~repro.engine.store.StoreDelta` list for every witnessed
  mutation (update = delete+insert pair), ``()`` at the current stamp,
  and ``None`` whenever completeness cannot be proven (future stamps,
  stamps fallen out of the journal window) — the contract the
  delta-aware cache invalidation of the repair layer rests on;
* process protocol — ``detach()``/``reattach()`` round-trips rows and the
  version stamp, and a parent mutation reaches the clone through the
  backend's resync hook (snapshot or incremental via ``adopt_deltas``).

Usage: subclass :class:`StoreConformance` in a ``test_*.py`` module and
provide the ``store`` fixture (a fresh backend loaded with
``conformance_rows(self.schema())``).  Backends with extra setup override
the hooks (``resync``, ``supports_detach``).  A fourth backend gets ~20
contract tests for free::

    class TestMyStoreConformance(StoreConformance):
        @pytest.fixture
        def store(self):
            yield MyStore(self.schema(), conformance_rows(self.schema()))
"""

import pytest

from repro.engine.schema import INT, RelationSchema
from repro.engine.store import (
    DEFAULT_DELTA_WINDOW,
    MasterStore,
    StoreProtocolError,
)
from repro.engine.tuples import Row
from repro.engine.values import NULL


def conformance_schema() -> RelationSchema:
    """The contract schema: string key, nullable value, int column."""
    return RelationSchema("m", ["k", "v", ("n", INT)])


def conformance_rows(schema: RelationSchema) -> list:
    """The contract's seed rows: a duplicate key, a NULL, an int column."""
    return [
        Row(schema, ("a", "x", 1)),
        Row(schema, ("b", "y", 2)),
        Row(schema, ("a", "x", 3)),
        Row(schema, ("c", NULL, 4)),
    ]


class StoreConformance:
    """Inherit and provide a ``store`` fixture; optionally override hooks."""

    #: Set False for backends that refuse detach() (private :memory:
    #: databases); the detach tests then assert the refusal instead.
    supports_detach = True

    #: How many mutations the backend's delta journal retains; the
    #: window-overflow test mutates one past this to force the ``None``
    #: (full-drop) fallback.  Override when a backend uses another bound.
    delta_window = DEFAULT_DELTA_WINDOW

    def schema(self) -> RelationSchema:
        return conformance_schema()

    def rows(self) -> list:
        return conformance_rows(self.schema())

    @pytest.fixture
    def store(self):
        raise NotImplementedError(
            "conformance subclasses must provide a `store` fixture"
        )

    # -- backend hooks -------------------------------------------------------

    def resync(self, parent: MasterStore, clone: MasterStore) -> None:
        """Propagate *parent*'s mutations to a reattached *clone*.

        Backends sharing storage across processes adopt the stamp
        (``sync_version``); snapshot backends ship the rows.  Override to
        match; the default covers the shared-storage shape.
        """
        clone.sync_version(parent.version)

    def cleanup_clone(self, clone: MasterStore) -> None:
        """Release a reattached clone (override when clones hold handles)."""
        close = getattr(clone, "close", None)
        if close is not None:
            close()

    def lie_probe_many(self, store: MasterStore, skew: int):
        """A context manager making the backend's lower layer answer
        ``skew`` more (+1) or fewer (-1) ``probe_many`` results than
        probe keys asked.  Return ``None`` (the default) when the backend
        has no lower layer that could lie — single-process stores answer
        from their own truth and the test skips.
        """
        return None

    # -- reads ---------------------------------------------------------------

    def test_is_master_store(self, store):
        assert isinstance(store, MasterStore)
        assert store.schema.attributes == self.schema().attributes

    def test_size_and_insertion_order_iteration(self, store):
        rows = self.rows()
        assert len(store) == len(rows)
        assert list(store) == rows
        assert store.rows == rows  # Relation-compatible materialized copy

    def test_iter_from_pages_in_insertion_order(self, store):
        """The remote ``/rows`` paging primitive: iter_from(k) must equal
        skipping k rows of full iteration, for every offset."""
        rows = self.rows()
        for start in range(len(rows) + 2):
            assert list(store.iter_from(start)) == rows[start:]
        store.insert(Row(self.schema(), ("d", "z", 9)))
        assert [tm["k"] for tm in store.iter_from(len(rows))] == ["d"]

    def test_active_values(self, store):
        assert store.active_values("k") == {"a", "b", "c"}
        assert store.active_values("v") == {"x", "y", NULL}

    def test_active_values_result_is_caller_owned(self, store):
        values = store.active_values("k")
        values.add("corrupted")
        assert "corrupted" not in store.active_values("k")

    def test_probe_and_relation_aliases(self, store):
        rows = self.rows()
        assert store.probe(("k",), ("a",)) == (rows[0], rows[2])
        assert store.probe(("k", "v"), ("b", "y")) == (rows[1],)
        assert store.probe(("k",), ("zzz",)) == ()
        # duplicate attributes in the probe list (Theorem 12-style reuse)
        assert store.probe(("k", "k"), ("a", "a")) == (rows[0], rows[2])
        assert store.probe(("k", "k"), ("a", "b")) == ()
        # Relation-compatible spellings and the index-free ablation agree
        assert store.lookup(("k",), ("a",)) == store.probe(("k",), ("a",))
        assert store.scan_probe(("k",), ("a",)) == store.probe(("k",), ("a",))
        assert store.scan_lookup(("n",), (2,)) == (rows[1],)
        assert store.contains_key(("k",), ("c",))
        assert not store.contains_key(("k",), ("nope",))

    def test_probe_is_exact_typed(self, store):
        """String spellings of numbers must not match int cells (the csv
        loaders rely on 87 != "87") while 2 == 2.0 == True must match."""
        assert store.probe(("n",), (2,)) != ()
        assert store.probe(("n",), ("2",)) == ()
        assert store.probe(("n",), (2.0,)) == store.probe(("n",), (2,))
        assert store.probe(("n",), (True,)) == store.probe(("n",), (1,))

    def test_probe_rejects_mismatched_key(self, store):
        with pytest.raises(ValueError, match="does not match attribute list"):
            store.probe(("k", "v"), ("a",))
        with pytest.raises(ValueError, match="does not match attribute list"):
            store.probe_many(("k", "v"), [("a",)])

    def test_probe_results_are_immutable(self, store):
        """Probe results are tuples; mangling a list() copy must not
        corrupt later probes (cache lines used to be aliased lists)."""
        rows = self.rows()
        result = store.probe(("k",), ("a",))
        assert isinstance(result, tuple)
        mangled = list(result)
        mangled.clear()
        assert store.probe(("k",), ("a",)) == (rows[0], rows[2])
        assert isinstance(store.lookup(("k",), ("a",)), tuple)

    def test_probe_ref_aliasing_rules(self, store):
        """``probe_ref`` may alias internals but must agree with ``probe``
        and accept the same keys (it is the repair loops' hot path)."""
        assert tuple(store.probe_ref(("k",), ("a",))) == \
            store.probe(("k",), ("a",))
        assert tuple(store.probe_ref(("k",), ("zzz",))) == ()
        with pytest.raises(ValueError, match="does not match attribute list"):
            store.probe_ref(("k",), ("a", "b"))

    def test_ensure_index_then_probe(self, store):
        store.ensure_index(("v", "n"))
        assert store.probe(("v", "n"), ("x", 3)) == (self.rows()[2],)

    def test_probe_many_matches_probe_loop(self, store):
        rows = self.rows()
        keys = [("a",), ("b",), ("zzz",), ("a",)]  # duplicate collapses
        out = store.probe_many(("k",), keys)
        assert set(out) == {("a",), ("b",), ("zzz",)}
        for key, matches in out.items():
            assert matches == store.probe(("k",), key)
        assert out[("a",)] == (rows[0], rows[2])
        assert out[("zzz",)] == ()
        # multi-column and duplicate-attribute keys
        multi = store.probe_many(
            ("k", "v"), [("a", "x"), ("c", NULL), ("a", "y")]
        )
        assert multi == {
            ("a", "x"): (rows[0], rows[2]),
            ("c", NULL): (rows[3],),
            ("a", "y"): (),
        }
        dup = store.probe_many(("k", "k"), [("a", "a"), ("a", "b")])
        assert dup == {("a", "a"): (rows[0], rows[2]), ("a", "b"): ()}

    def test_probe_many_unstorable_keys_match_probe_loop(self, store):
        """Unstorable probe keys (values the wire codec refuses) resolve
        as "matches nothing" identically on the singular and batched
        paths, and never out of a cache — both answers must keep coming
        from the same helper so the semantics cannot drift."""
        rows = self.rows()
        attrs = ("k",)
        keys = [("a",), (object(),), ("b",)]
        via_many = store.probe_many(attrs, keys)
        via_loop = {key: store.probe(attrs, key) for key in keys}
        assert via_many == via_loop
        assert via_many[keys[1]] == ()
        assert via_many[("a",)] == (rows[0], rows[2])
        # a second round answers identically (nothing poisoned a cache)
        assert store.probe_many(attrs, keys) == via_loop

    @pytest.mark.parametrize("skew", [-1, 1], ids=["fewer", "more"])
    def test_lying_probe_many_raises_typed_error_caches_nothing(
        self, store, skew
    ):
        """A lower layer answering more/fewer ``probe_many`` results than
        keys asked must raise the typed protocol error — never silently
        pair up what it got — and nothing from the lying exchange may
        land in any cache (the zip-truncation bug class)."""
        lie = self.lie_probe_many(store, skew)
        if lie is None:
            pytest.skip("backend has no lower layer that could lie")
        rows = self.rows()
        attrs = ("k",)
        keys = [("a",), ("b",), ("zz",)]
        truth = {
            ("a",): (rows[0], rows[2]),
            ("b",): (rows[1],),
            ("zz",): (),
        }
        with lie:
            with pytest.raises(StoreProtocolError):
                store.probe_many(attrs, keys)
        # with the liar gone, every key answers from truth — had the
        # lying exchange cached anything, ("b",) or ("zz",) would now
        # resolve to a stale () / wrong pairing
        assert store.probe_many(attrs, keys) == truth
        for key in keys:
            assert store.probe(attrs, key) == truth[key]

    # -- versioning and mutation ---------------------------------------------

    def test_version_monotone_and_bumps_iff_mutated(self, store):
        schema = self.schema()
        v0 = store.version
        extra = Row(schema, ("d", "z", 9))
        store.insert(extra)
        v1 = store.version
        assert v1 > v0
        assert store.delete(extra)
        v2 = store.version
        assert v2 > v1
        # misses mutate nothing: no version movement
        assert not store.delete(extra)
        assert store.version == v2
        assert not store.update(extra, Row(schema, ("d", "z2", 9)))
        assert store.version == v2
        # reads never move the version
        store.probe(("k",), ("a",))
        list(store)
        store.active_values("k")
        assert store.version == v2

    def test_insert_lands_at_iteration_end_and_is_probeable(self, store):
        schema = self.schema()
        extra = Row(schema, ("d", "z", 9))
        store.insert(extra)
        assert len(store) == len(self.rows()) + 1
        assert list(store)[-1] == extra
        assert store.probe(("k",), ("d",)) == (extra,)
        assert "z" in store.active_values("v")

    def test_delete_removes_one_occurrence(self, store):
        schema = self.schema()
        rows = self.rows()
        assert store.delete(Row(schema, ("a", "x", 1)))
        assert store.probe(("k",), ("a",)) == (rows[2],)
        assert len(store) == len(rows) - 1
        assert list(store) == [rows[1], rows[2], rows[3]]

    def test_update_is_delete_then_insert(self, store):
        """The replacement lands at iteration end in every backend — the
        property that keeps fix output bit-identical across backends."""
        schema = self.schema()
        rows = self.rows()
        old = rows[1]
        new = Row(schema, ("b", "y2", 2))
        v0 = store.version
        assert store.update(old, new)
        assert store.version > v0
        assert list(store) == [rows[0], rows[2], rows[3], new]
        assert store.probe(("k",), ("b",)) == (new,)
        assert not store.update(old, new)  # old is gone now

    def test_mutations_invalidate_probe_caches(self, store):
        """A warm probe must reflect a subsequent mutation — no stale
        cache line may survive an insert/delete/update."""
        schema = self.schema()
        rows = self.rows()
        assert store.probe(("k",), ("a",)) == (rows[0], rows[2])  # warm it
        extra = Row(schema, ("a", "x2", 7))
        store.insert(extra)
        assert store.probe(("k",), ("a",)) == (rows[0], rows[2], extra)
        assert "x2" in store.active_values("v")
        assert store.delete(rows[0])
        assert store.probe(("k",), ("a",)) == (rows[2], extra)
        assert store.update(extra, Row(schema, ("a", "x3", 7)))
        assert [tm["v"] for tm in store.probe(("k",), ("a",))] == ["x", "x3"]

    def test_iteration_order_survives_mixed_mutations(self, store):
        schema = self.schema()
        rows = self.rows()
        first = Row(schema, ("e", "w", 5))
        second = Row(schema, ("f", "u", 6))
        store.insert(first)
        store.delete(rows[0])
        store.insert(second)
        assert list(store) == [rows[1], rows[2], rows[3], first, second]

    # -- delta journal protocol ----------------------------------------------

    def test_deltas_since_current_stamp_is_empty(self, store):
        assert store.deltas_since(store.version) == ()

    def test_deltas_since_future_stamp_is_none(self, store):
        """A stamp the store has never reached is unknowable, not empty."""
        assert store.deltas_since(store.version + 1) is None

    def test_mutations_journal_as_contiguous_deltas(self, store):
        """Every witnessed mutation must appear as one StoreDelta, in
        order, covering exactly ``(v0, version]`` — including a NULL
        cell surviving the backend's wire encoding."""
        schema = self.schema()
        rows = self.rows()
        v0 = store.version
        extra = Row(schema, ("d", "z", 9))
        store.insert(extra)
        assert store.delete(rows[3])  # ("c", NULL, 4)
        deltas = store.deltas_since(v0)
        assert deltas is not None
        assert [d.version for d in deltas] == [v0 + 1, v0 + 2]
        assert [d.op for d in deltas] == ["insert", "delete"]
        assert deltas[0].values == extra.values
        assert deltas[1].values == rows[3].values

    def test_update_journals_as_delete_insert_pair(self, store):
        schema = self.schema()
        old = self.rows()[1]
        new = Row(schema, ("b", "y2", 2))
        v0 = store.version
        assert store.update(old, new)
        deltas = store.deltas_since(v0)
        assert deltas is not None
        assert [(d.version, d.op, d.values) for d in deltas] == [
            (v0 + 1, "delete", old.values),
            (v0 + 2, "insert", new.values),
        ]

    def test_failed_mutations_do_not_journal(self, store):
        schema = self.schema()
        missing = Row(schema, ("ghost", "g", 0))
        v0 = store.version
        assert not store.delete(missing)
        assert not store.update(missing, Row(schema, ("ghost", "g2", 0)))
        assert store.deltas_since(v0) == ()

    def test_deltas_window_overflow_falls_back_to_none(self, store):
        """A consumer lagging past the journal window must get ``None``
        (the full-drop instruction), never a truncated list; the recent
        tail inside the window stays servable."""
        schema = self.schema()
        v0 = store.version
        for i in range(self.delta_window + 1):
            store.insert(Row(schema, (f"w{i}", "w", i)))
        assert store.deltas_since(v0) is None
        tail = store.deltas_since(store.version - 1)
        assert tail is not None and len(tail) == 1
        assert tail[0].op == "insert"
        assert tail[0].values == (f"w{self.delta_window}", "w",
                                  self.delta_window)

    def test_reattached_clone_adopts_parent_deltas(self, store):
        """The incremental resync path: a clone lagging by journaled
        mutations lands on the parent's stamp and contents through
        ``adopt_deltas`` alone (or refuses with False, never corrupts)."""
        if not self.supports_detach:
            pytest.skip("backend refuses detach()")
        schema = self.schema()
        handle = store.detach()
        clone = handle.reattach()
        try:
            late = Row(schema, ("late", "z", 99))
            store.insert(late)
            assert store.delete(self.rows()[0])
            deltas = store.deltas_since(clone.version)
            assert deltas is not None and len(deltas) == 2
            assert clone.adopt_deltas(deltas, store.version)
            assert clone.version == store.version
            assert list(clone) == list(store)
            assert clone.probe(("k",), ("late",)) == (late,)
        finally:
            self.cleanup_clone(clone)

    # -- process protocol ----------------------------------------------------

    def test_detach_reattach_roundtrip(self, store):
        if not self.supports_detach:
            with pytest.raises(ValueError, match="detach|fork/spawn"):
                store.detach()
            return
        schema = self.schema()
        store.insert(Row(schema, ("d", "z", 9)))
        handle = store.detach()
        assert handle.version == store.version
        clone = handle.reattach()
        try:
            assert list(clone) == list(store)
            assert clone.version == store.version
            assert clone.probe(("k",), ("d",)) == \
                store.probe(("k",), ("d",))
        finally:
            self.cleanup_clone(clone)

    def test_reattached_clone_follows_parent_mutation(self, store):
        if not self.supports_detach:
            pytest.skip("backend refuses detach()")
        schema = self.schema()
        handle = store.detach()
        clone = handle.reattach()
        try:
            late = Row(schema, ("late", "z", 99))
            store.insert(late)
            self.resync(store, clone)
            assert clone.version == store.version
            assert list(clone) == list(store)
            assert clone.probe(("k",), ("late",)) == (late,)
        finally:
            self.cleanup_clone(clone)
