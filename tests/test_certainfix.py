"""Algorithm CertainFix / CertainFix⁺ end-to-end (Fig. 3)."""

import pytest

from repro.datasets import make_dirty_dataset
from repro.engine.values import NULL
from repro.repair.certainfix import CertainFix, ValidationFailed
from repro.repair.oracle import LyingUser, SimulatedUser


@pytest.fixture(scope="module")
def hosp_engine(hosp):
    return CertainFix(hosp.rules, hosp.master, hosp.schema)


def test_master_tuple_fixed_in_one_round(hosp, hosp_engine):
    data = make_dirty_dataset(hosp, size=30, duplicate_rate=1.0,
                              noise_rate=0.25, seed=1)
    for dirty_tuple in data:
        oracle = SimulatedUser(dirty_tuple.clean)
        session = hosp_engine.fix(dirty_tuple.dirty, oracle)
        assert session.completed
        assert session.round_count == 1
        assert session.final == dirty_tuple.clean


def test_every_fix_is_the_ground_truth(hosp, hosp_engine):
    """The core guarantee: 100% precision with a truthful oracle."""
    data = make_dirty_dataset(hosp, size=40, duplicate_rate=0.3,
                              noise_rate=0.3, seed=2)
    for dirty_tuple in data:
        oracle = SimulatedUser(dirty_tuple.clean)
        session = hosp_engine.fix(dirty_tuple.dirty, oracle)
        assert session.completed
        assert session.final == dirty_tuple.clean


def test_round_counts_stay_small(hosp, hosp_engine):
    data = make_dirty_dataset(hosp, size=40, duplicate_rate=0.3,
                              noise_rate=0.2, seed=3)
    for dirty_tuple in data:
        session = hosp_engine.fix(
            dirty_tuple.dirty, SimulatedUser(dirty_tuple.clean)
        )
        assert session.round_count <= 5


def test_initial_suggestion_is_best_region(hosp, hosp_engine):
    data = make_dirty_dataset(hosp, size=1, duplicate_rate=1.0,
                              noise_rate=0.2, seed=4)
    session = hosp_engine.fix(data.tuples[0].dirty,
                              SimulatedUser(data.tuples[0].clean))
    assert set(session.rounds[0].suggested) == {"id", "mCode"}
    assert session.rounds[0].suggestion_source == "initial-region"


def test_user_corrections_not_credited_to_rules(hosp, hosp_engine):
    data = make_dirty_dataset(hosp, size=20, duplicate_rate=0.0,
                              noise_rate=0.4, seed=5)
    for dirty_tuple in data:
        oracle = SimulatedUser(dirty_tuple.clean)
        session = hosp_engine.fix(dirty_tuple.dirty, oracle)
        fixed = set(session.attrs_fixed_by_rules)
        asserted = set(session.attrs_asserted_by_user)
        assert not (fixed & asserted)


def test_state_after_round_monotone(hosp, hosp_engine):
    data = make_dirty_dataset(hosp, size=10, duplicate_rate=0.2,
                              noise_rate=0.3, seed=6)
    for dirty_tuple in data:
        session = hosp_engine.fix(
            dirty_tuple.dirty, SimulatedUser(dirty_tuple.clean)
        )
        sizes = []
        for k in range(1, session.round_count + 1):
            _, asserted = session.state_after_round(k)
            sizes.append(len(asserted))
        assert sizes == sorted(sizes)
        final_row, _ = session.state_after_round(session.round_count + 5)
        assert final_row == session.final


def test_bdd_engine_produces_identical_fixes(hosp):
    plain = CertainFix(hosp.rules, hosp.master, hosp.schema, use_bdd=False)
    cached = CertainFix(hosp.rules, hosp.master, hosp.schema, use_bdd=True)
    data = make_dirty_dataset(hosp, size=25, duplicate_rate=0.3,
                              noise_rate=0.25, seed=7)
    for dirty_tuple in data:
        s1 = plain.fix(dirty_tuple.dirty, SimulatedUser(dirty_tuple.clean))
        s2 = cached.fix(dirty_tuple.dirty, SimulatedUser(dirty_tuple.clean))
        assert s1.final == s2.final == dirty_tuple.clean
    stats = cached.cache_stats
    assert stats is not None and stats.hits > 0


def test_lying_user_triggers_revision(hosp):
    """Assertions conflicting with master data are caught by the unique-fix
    validation and sent back for revision."""
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema)
    source = hosp.master.first()
    clean = source.rebind(hosp.schema) if source.schema is not hosp.schema else source
    # Dirty tuple: the id of one hospital with the phone of another -
    # asserting both as "correct" cannot lead to a unique fix.
    other = hosp.master.rows[-1]
    dirty = clean.with_values({"phn": other["phn"]})
    # Extend round-1 assertions to include phn so the lie is visible.
    regions = engine.regions
    oracle = LyingUser(clean, lie_rounds=1)
    session = engine.fix(dirty, oracle)
    assert session.final == clean
    # The lie may or may not conflict depending on the suggested attrs;
    # the engine must still converge to the truth either way.
    assert session.completed


def test_corrections_during_revision_are_counted():
    """Regression: values changed inside the revision loop (oracle.revise)
    must land in RoundLog.corrected_by_user — they used to be computed from
    the first assert_correct call only, so a lie that was later revised
    looked like the rules had done the correcting."""
    from repro.core.regions import Region
    from repro.core.rules import EditingRule
    from repro.engine.relation import Relation
    from repro.engine.schema import INT, RelationSchema
    from repro.engine.tuples import Row
    from repro.repair.region_search import CertainRegionCandidate

    schema = RelationSchema("R", [(a, INT) for a in "abc"])
    master = Relation(RelationSchema("Rm", [(a, INT) for a in "wxy"]),
                      [(1, 5, 7), (2, 5, 8)])
    rules = [
        EditingRule(("a",), ("w",), "c", "y", name="r1"),
        EditingRule(("b",), ("x",), "c", "y", name="r2"),
    ]
    region = CertainRegionCandidate(
        region=Region(("a", "b")), quality=1.0,
        patterns_checked=1, patterns_valid=1,
    )
    engine = CertainFix(rules, master, schema, regions=[region])

    clean = Row(schema, [1, 6, 7])
    dirty = Row(schema, [1, 5, 0])
    # Round 1 asserts the dirty (a, b) as-is; b = 5 reaches master tuples
    # that disagree on y (7 vs 8), the unique-fix check rejects it, and the
    # truthful revision changes b to 6.
    oracle = LyingUser(clean, lie_rounds=1)
    session = engine.fix(dirty, oracle)

    assert session.completed
    assert session.final == clean
    assert session.rounds[0].revisions == 1
    assert session.rounds[0].corrected_by_user == ("b",)
    assert session.attrs_corrected_by_user == {"b"}
    # The rules only fixed c; they must not be credited with b.
    assert session.attrs_fixed_by_rules == {"c"}


def test_corrected_by_user_without_revisions(hosp, hosp_engine):
    """The non-revision path still reports exactly the changed assertions."""
    data = make_dirty_dataset(hosp, size=15, duplicate_rate=0.5,
                              noise_rate=0.4, seed=9)
    for dirty_tuple in data:
        oracle = SimulatedUser(dirty_tuple.clean)
        session = hosp_engine.fix(dirty_tuple.dirty, oracle)
        assert session.attrs_corrected_by_user == oracle.corrected


def test_validation_failed_after_persistent_lies(example):
    """Example 5's conflict, insisted on: asserting t3's AC, phn, type AND
    zip as all-correct contradicts master data (Edi vs Lnd for city), the
    unique-fix validation rejects it, and a stubborn user exhausts the
    revision budget."""
    from repro.repair.region_search import CertainRegionCandidate

    class StubbornLiar:
        def __init__(self, row):
            self.row = row

        def assert_correct(self, current, suggestion):
            return {a: self.row[a] for a in suggestion}

        def revise(self, current, suggestion, reason):
            return {a: self.row[a] for a in suggestion}

    bad_region = CertainRegionCandidate(
        region=example.regions["ZAHZ"],  # (AC, phn, type, zip)
        quality=1.0,
        patterns_checked=1,
        patterns_valid=1,
    )
    engine = CertainFix(
        example.rules, example.master, example.schema,
        regions=[bad_region], max_revisions=2,
    )
    t3 = example.inputs["t3"]
    with pytest.raises(ValidationFailed):
        engine.fix(t3, StubbornLiar(t3))


def test_engine_requires_certain_region():
    from repro.core.rules import EditingRule
    from repro.engine.relation import Relation
    from repro.engine.schema import RelationSchema

    schema = RelationSchema("R", ["a", "b"])
    master = Relation(RelationSchema("Rm", ["x", "y"]))
    engine = CertainFix(
        [EditingRule(("a",), ("x",), "b", "y")], master, schema
    )
    with pytest.raises(ValueError, match="no certain region"):
        engine.regions
