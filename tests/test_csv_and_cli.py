"""CSV round-trips and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.engine.csvio import (
    relation_from_csv,
    relation_to_csv,
    stream_rows_from_csv,
)
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.values import NULL
from repro import io as rule_io


@pytest.fixture()
def small_relation():
    schema = RelationSchema("people", ["code", "city", "zip"])
    r = Relation(schema)
    r.insert(["A1", "Edinburgh", "EH7"])
    r.insert(["B2", "London", NULL])
    return r


def test_csv_roundtrip(tmp_path, small_relation):
    path = tmp_path / "people.csv"
    relation_to_csv(small_relation, path)
    back = relation_from_csv(path)
    assert back.schema.attributes == small_relation.schema.attributes
    assert [row.values for row in back] == [
        row.values for row in small_relation
    ]
    assert back.rows[1]["zip"] is NULL  # empty cell -> NULL


def test_csv_schema_validation(tmp_path, small_relation):
    path = tmp_path / "people.csv"
    relation_to_csv(small_relation, path)
    other = RelationSchema("other", ["a", "b"])
    with pytest.raises(ValueError, match="does not match"):
        relation_from_csv(path, schema=other)


def test_csv_ragged_row_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1\n", encoding="utf-8")
    with pytest.raises(ValueError, match="expected 2 cells"):
        relation_from_csv(path)


def test_csv_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("", encoding="utf-8")
    with pytest.raises(ValueError, match="no header"):
        relation_from_csv(path)


def test_csv_typed_schema_roundtrips_ints(tmp_path, hosp):
    """With a typed schema, int-domain cells load back as ints, so a CSV
    round trip composes with in-memory masters (87, not \"87\")."""
    path = tmp_path / "master.csv"
    relation_to_csv(hosp.master, path)
    back = relation_from_csv(path, schema=hosp.schema)
    assert [row.values for row in back] == [row.values for row in hosp.master]
    assert isinstance(back.first()["Score"], int)
    streamed = list(stream_rows_from_csv(path, schema=hosp.schema))
    assert [row.values for row in streamed] == [
        row.values for row in hosp.master
    ]


def test_csv_unparseable_int_cell_stays_string(tmp_path):
    from repro.engine.schema import INT, STRING

    schema = RelationSchema("t", [("a", STRING), ("n", INT)])
    path = tmp_path / "t.csv"
    path.write_text("a,n\nx,12\ny,oops\nz,\n", encoding="utf-8")
    rows = relation_from_csv(path, schema=schema).rows
    assert rows[0]["n"] == 12
    assert rows[1]["n"] == "oops"
    assert rows[2]["n"] is NULL


def test_csv_row_stream(tmp_path, small_relation):
    path = tmp_path / "people.csv"
    relation_to_csv(small_relation, path)
    stream = stream_rows_from_csv(path)
    assert stream.schema.attributes == small_relation.schema.attributes
    assert [row.values for row in stream] == [
        row.values for row in small_relation
    ]
    # Re-iterable: a second pass reopens the file.
    assert len(list(stream)) == len(small_relation)
    assert list(stream)[1]["zip"] is NULL


def test_csv_row_stream_validates_eagerly(tmp_path, small_relation):
    path = tmp_path / "people.csv"
    relation_to_csv(small_relation, path)
    other = RelationSchema("other", ["a", "b"])
    with pytest.raises(ValueError, match="does not match"):
        stream_rows_from_csv(path, schema=other)
    empty = tmp_path / "empty.csv"
    empty.write_text("", encoding="utf-8")
    with pytest.raises(ValueError, match="no header"):
        stream_rows_from_csv(empty)
    ragged = tmp_path / "ragged.csv"
    ragged.write_text("a,b\n1\n", encoding="utf-8")
    with pytest.raises(ValueError, match="expected 2 cells"):
        list(stream_rows_from_csv(ragged))


def test_cli_batch_repair(tmp_path, capsys, hosp):
    from repro.datasets import make_dirty_dataset

    master_csv = tmp_path / "master.csv"
    relation_to_csv(hosp.master, master_csv)
    rules_json = tmp_path / "rules.json"
    rules_json.write_text(rule_io.dumps(hosp.rules) + "\n")

    data = make_dirty_dataset(hosp, size=12, duplicate_rate=0.4,
                              noise_rate=0.2, seed=5)
    dirty_csv = tmp_path / "dirty.csv"
    clean_csv = tmp_path / "clean.csv"
    relation_to_csv(Relation(hosp.schema, (dt.dirty for dt in data)),
                    dirty_csv)
    relation_to_csv(Relation(hosp.schema, (dt.clean for dt in data)),
                    clean_csv)

    fixed_csv = tmp_path / "fixed.csv"
    report_json = tmp_path / "report.json"
    assert main([
        "batch-repair",
        "--rules", str(rules_json), "--master", str(master_csv),
        "--input", str(dirty_csv), "--clean", str(clean_csv),
        "--output", str(fixed_csv), "--report", str(report_json),
        "--chunk-size", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "tuples/s" in out

    report = json.loads(report_json.read_text())
    assert report["tuples"] == 12
    assert report["incomplete"] == 0
    assert report["throughput_tps"] > 0

    fixed = relation_from_csv(fixed_csv)
    clean = relation_from_csv(clean_csv)
    assert [row.values for row in fixed] == [row.values for row in clean]


def test_cli_batch_repair_incomplete_raise_is_clean(tmp_path, capsys, hosp):
    """--on-incomplete raise reports a readable error + exit 2, never a
    traceback."""
    from repro.datasets import make_dirty_dataset

    master_csv = tmp_path / "master.csv"
    relation_to_csv(hosp.master, master_csv)
    rules_json = tmp_path / "rules.json"
    rules_json.write_text(rule_io.dumps(hosp.rules) + "\n")
    data = make_dirty_dataset(hosp, size=6, duplicate_rate=0.0,
                              noise_rate=0.3, seed=5)
    dirty_csv = tmp_path / "dirty.csv"
    clean_csv = tmp_path / "clean.csv"
    relation_to_csv(Relation(hosp.schema, (dt.dirty for dt in data)),
                    dirty_csv)
    relation_to_csv(Relation(hosp.schema, (dt.clean for dt in data)),
                    clean_csv)

    code = main([
        "batch-repair",
        "--rules", str(rules_json), "--master", str(master_csv),
        "--input", str(dirty_csv), "--clean", str(clean_csv),
        "--max-rounds", "1", "--on-incomplete", "raise",
    ])
    captured = capsys.readouterr()
    assert code == 2
    assert "monitoring stopped after 1 rounds" in captured.err
    assert "hint:" in captured.err


def test_csv_row_stream_detects_rewritten_file(tmp_path, small_relation):
    """The stream reopens the file per iteration; a rewrite with a
    different header must fail loudly, not bind rows to a stale schema."""
    path = tmp_path / "people.csv"
    relation_to_csv(small_relation, path)
    stream = stream_rows_from_csv(path)
    assert len(list(stream)) == 2
    path.write_text("other,columns\n1,2\n", encoding="utf-8")
    with pytest.raises(ValueError, match="does not match"):
        list(stream)
    path.write_text("", encoding="utf-8")
    with pytest.raises(ValueError, match="no header"):
        list(stream)


def test_cli_batch_repair_bad_inputs_are_clean_errors(tmp_path, capsys, hosp):
    """Malformed --master/--rules/--clean all yield `error: ...` + exit 2,
    never a traceback."""
    master_csv = tmp_path / "master.csv"
    relation_to_csv(hosp.master, master_csv)
    rules_json = tmp_path / "rules.json"
    rules_json.write_text(rule_io.dumps(hosp.rules) + "\n")
    dirty_csv = tmp_path / "dirty.csv"
    relation_to_csv(Relation(hosp.schema, [hosp.master.first()]), dirty_csv)

    ragged = tmp_path / "ragged.csv"
    ragged.write_text("a,b\n1\n", encoding="utf-8")
    bad_rules = tmp_path / "bad.json"
    bad_rules.write_text("not json", encoding="utf-8")

    for argv in (
        ["--rules", str(rules_json), "--master", str(ragged),
         "--input", str(dirty_csv), "--clean", str(dirty_csv)],
        ["--rules", str(bad_rules), "--master", str(master_csv),
         "--input", str(dirty_csv), "--clean", str(dirty_csv)],
        ["--rules", str(rules_json), "--master", str(master_csv),
         "--input", str(dirty_csv), "--clean", str(ragged)],
    ):
        assert main(["batch-repair", *argv]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")


def test_cli_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "FN := 'Robert'" in out


def test_cli_mine_then_analyze(tmp_path, capsys, hosp):
    master_csv = tmp_path / "master.csv"
    relation_to_csv(hosp.master, master_csv)

    rules_json = tmp_path / "rules.json"
    assert main([
        "mine", "--master", str(master_csv),
        "--output", str(rules_json), "--max-key", "1",
    ]) == 0
    mined = rule_io.loads(rules_json.read_text())
    assert mined
    json.loads(rules_json.read_text())  # valid JSON on disk

    assert main([
        "analyze", "--rules", str(rules_json),
        "--master", str(master_csv), "--validate-patterns", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "certain regions" in out
    assert "editing rules" in out


def test_cli_analyze_reports_missing_region(tmp_path, capsys):
    schema = RelationSchema("r", ["a", "b", "c"])
    master = Relation(schema)
    master.insert(["1", "2", "3"])
    master_csv = tmp_path / "m.csv"
    relation_to_csv(master, master_csv)
    # One rule cannot cover c from anything: no certain region over a alone.
    from repro.core.rules import EditingRule

    rules_json = tmp_path / "r.json"
    rules_json.write_text(rule_io.dumps(
        [EditingRule("a", "a", "b", "b")]
    ))
    # a -> b exists, c unfixable but CAN be user-validated: Z = {a, c} works,
    # so a region exists; force failure with an empty master instead.
    empty_csv = tmp_path / "empty_master.csv"
    relation_to_csv(Relation(schema), empty_csv)
    code = main([
        "analyze", "--rules", str(rules_json), "--master", str(empty_csv),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "NO certain region" in out


# -- telemetry CLI (PR 7) ------------------------------------------------------


def test_cli_batch_repair_progress_heartbeats(tmp_path, capsys, hosp):
    from repro.datasets import make_dirty_dataset

    master_csv = tmp_path / "master.csv"
    relation_to_csv(hosp.master, master_csv)
    rules_json = tmp_path / "rules.json"
    rules_json.write_text(rule_io.dumps(hosp.rules) + "\n")
    data = make_dirty_dataset(hosp, size=12, duplicate_rate=0.4,
                              noise_rate=0.2, seed=5)
    dirty_csv = tmp_path / "dirty.csv"
    clean_csv = tmp_path / "clean.csv"
    relation_to_csv(Relation(hosp.schema, (dt.dirty for dt in data)),
                    dirty_csv)
    relation_to_csv(Relation(hosp.schema, (dt.clean for dt in data)),
                    clean_csv)

    assert main([
        "batch-repair",
        "--rules", str(rules_json), "--master", str(master_csv),
        "--input", str(dirty_csv), "--clean", str(clean_csv),
        "--progress", "--progress-interval", "0",
    ]) == 0
    err = capsys.readouterr().err
    heartbeats = [line for line in err.splitlines()
                  if line.startswith("[batch-repair]")]
    assert len(heartbeats) >= 2
    # Known input size → percentage prefix; final line has the summary.
    assert f"/{len(data.tuples)} tuples" in heartbeats[0]
    assert "tuples/s" in heartbeats[0]
    assert "done in" in heartbeats[-1]
    assert any("chase" in line for line in heartbeats)


def test_cli_metrics_scrapes_live_server(capsys, small_relation):
    from repro.engine.remote import MasterServer
    from repro.engine.store import InMemoryStore
    from repro.obs import parse_prometheus_text

    with MasterServer(InMemoryStore(small_relation)) as server:
        assert main(["metrics", "--master-url", server.url]) == 0
        text = capsys.readouterr().out
        parsed = parse_prometheus_text(text)
        assert parsed[("repro_server_store_rows", ())] == len(small_relation)

        assert main(["metrics", "--master-url", server.url,
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["series"][0] == "repro_server_requests_total"
                   for entry in payload["counters"])


def test_cli_metrics_unreachable_server_exits_2(capsys):
    assert main(["metrics", "--master-url", "http://127.0.0.1:9",
                 "--timeout", "0.5"]) == 2
    err = capsys.readouterr().err
    assert "cannot scrape" in err
    assert "serve-master" in err
