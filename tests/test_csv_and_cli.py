"""CSV round-trips and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.engine.csvio import relation_from_csv, relation_to_csv
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.values import NULL
from repro import io as rule_io


@pytest.fixture()
def small_relation():
    schema = RelationSchema("people", ["code", "city", "zip"])
    r = Relation(schema)
    r.insert(["A1", "Edinburgh", "EH7"])
    r.insert(["B2", "London", NULL])
    return r


def test_csv_roundtrip(tmp_path, small_relation):
    path = tmp_path / "people.csv"
    relation_to_csv(small_relation, path)
    back = relation_from_csv(path)
    assert back.schema.attributes == small_relation.schema.attributes
    assert [row.values for row in back] == [
        row.values for row in small_relation
    ]
    assert back.rows[1]["zip"] is NULL  # empty cell -> NULL


def test_csv_schema_validation(tmp_path, small_relation):
    path = tmp_path / "people.csv"
    relation_to_csv(small_relation, path)
    other = RelationSchema("other", ["a", "b"])
    with pytest.raises(ValueError, match="does not match"):
        relation_from_csv(path, schema=other)


def test_csv_ragged_row_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1\n", encoding="utf-8")
    with pytest.raises(ValueError, match="expected 2 cells"):
        relation_from_csv(path)


def test_csv_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("", encoding="utf-8")
    with pytest.raises(ValueError, match="no header"):
        relation_from_csv(path)


def test_cli_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "FN := 'Robert'" in out


def test_cli_mine_then_analyze(tmp_path, capsys, hosp):
    master_csv = tmp_path / "master.csv"
    relation_to_csv(hosp.master, master_csv)

    rules_json = tmp_path / "rules.json"
    assert main([
        "mine", "--master", str(master_csv),
        "--output", str(rules_json), "--max-key", "1",
    ]) == 0
    mined = rule_io.loads(rules_json.read_text())
    assert mined
    json.loads(rules_json.read_text())  # valid JSON on disk

    assert main([
        "analyze", "--rules", str(rules_json),
        "--master", str(master_csv), "--validate-patterns", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "certain regions" in out
    assert "editing rules" in out


def test_cli_analyze_reports_missing_region(tmp_path, capsys):
    schema = RelationSchema("r", ["a", "b", "c"])
    master = Relation(schema)
    master.insert(["1", "2", "3"])
    master_csv = tmp_path / "m.csv"
    relation_to_csv(master, master_csv)
    # One rule cannot cover c from anything: no certain region over a alone.
    from repro.core.rules import EditingRule

    rules_json = tmp_path / "r.json"
    rules_json.write_text(rule_io.dumps(
        [EditingRule("a", "a", "b", "b")]
    ))
    # a -> b exists, c unfixable but CAN be user-validated: Z = {a, c} works,
    # so a region exists; force failure with an empty master instead.
    empty_csv = tmp_path / "empty_master.csv"
    relation_to_csv(Relation(schema), empty_csv)
    code = main([
        "analyze", "--rules", str(rules_json), "--master", str(empty_csv),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "NO certain region" in out
