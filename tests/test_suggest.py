"""Procedure Suggest: applicable rules Σt[Z], refinement φ⁺, suggestions."""

from repro.core.patterns import Const
from repro.engine.tuples import Row
from repro.engine.values import NULL
from repro.repair.suggest import Suggestion, applicable_rules, suggest
from repro.repair.transfix import transfix


def _fixed_t1(example):
    """t1 after Example 12: zip validated, AC/str/city fixed."""
    result = transfix(
        example.inputs["t1"], {"zip"}, example.rules, example.master
    )
    return result.row, result.validated


def test_applicable_rules_drop_validated_targets(example):
    row, z = _fixed_t1(example)
    names = {r.name for r in applicable_rules(example.rules, example.master, row, z)}
    # φ1-φ3 target zip-derived attrs already validated: condition (a).
    assert not ({"phi1", "phi2", "phi3"} & names)


def test_applicable_rules_example14(example):
    """Example 14: Σt[zip,AC,str,city] contains φ4 and φ5.

    (The paper's Example 14 also lists φ6⁺-φ8⁺, whose targets str/city/zip
    are in the validated Z there — that contradicts the section's own
    condition (a) "B ∉ Z", so we follow the formal condition and exclude
    them; their refinement mechanics are tested below.)
    """
    row, z = _fixed_t1(example)
    applicable = {r.name: r for r in applicable_rules(
        example.rules, example.master, row, z
    )}
    assert {"phi4", "phi5"} <= set(applicable)
    assert not ({"phi6", "phi7", "phi8"} & set(applicable))


def test_refinement_absorbs_validated_key_values(example):
    """Example 14's φ6⁺: the validated AC = 131 replaces the 0800̄ guard
    context (the pattern gains the concrete constant)."""
    row, _ = _fixed_t1(example)
    applicable = {r.name: r for r in applicable_rules(
        example.rules, example.master, row, frozenset({"AC"})
    )}
    phi6 = applicable["phi6"]
    assert phi6.pattern.get("AC") == Const("131")
    assert "type" in phi6.pattern  # original guard kept


def test_applicable_rules_condition_b(example):
    """A rule whose pattern contradicts validated values is dropped."""
    row, _ = _fixed_t1(example)
    # Validate type = 1 (and AC): φ4/φ5 (type = 2 pattern) must drop out
    # while the home-phone rules φ6-φ8 stay applicable.
    row2 = row.with_values({"type": 1})
    names = {r.name for r in applicable_rules(
        example.rules, example.master, row2, frozenset({"AC", "type"})
    )}
    assert "phi4" not in names and "phi5" not in names
    assert {"phi6", "phi7", "phi8"} <= names


def test_applicable_rules_condition_c_master_probe(example):
    """A rule whose validated key matches no master tuple is dropped."""
    row, _ = _fixed_t1(example)
    row2 = row.with_values({"phn": "0000000", "type": 1})
    names = {r.name for r in applicable_rules(
        example.rules, example.master, row2,
        frozenset({"AC", "type", "phn"}),
    )}
    assert "phi4" not in names  # Mphn probe fails
    assert "phi6" not in names  # (AC, Hphn) probe fails


def test_suggest_returns_item_for_running_example(example):
    """Example 13: S = {phn, type, item} given t1[zip, AC, str, city]."""
    row, z = _fixed_t1(example)
    suggestion = suggest(
        example.rules, example.master, example.schema, row, z
    )
    assert set(suggestion.attrs) == {"phn", "type", "item"}
    assert suggestion.certain  # master-backed witness exists
    assert suggestion.source == "certain-region"


def test_suggest_structural_fallback_without_master_support(example):
    """A tuple matching nothing gets the remainder as suggestion."""
    t4 = example.inputs["t4"]
    suggestion = suggest(
        example.rules, example.master, example.schema, t4,
        frozenset({"zip", "AC", "phn", "type"}),
    )
    assert suggestion.attrs  # something is suggested
    assert not suggestion.certain


def test_suggest_empty_s_suggests_remainder(example):
    """When rules could cover everything left, suggest the leftovers."""
    row, z = _fixed_t1(example)
    nearly_all = frozenset(example.schema.attributes) - {"item"}
    suggestion = suggest(
        example.rules, example.master, example.schema,
        row.with_values({"item": NULL}), nearly_all,
    )
    assert suggestion.attrs == ("item",)


def test_suggest_pattern_cache_reused(example):
    row, z = _fixed_t1(example)
    cache = {}
    suggest(example.rules, example.master, example.schema, row, z,
            pattern_cache=cache)
    assert isinstance(cache, dict)
    # Second call hits the cache (same object, no error).
    suggest(example.rules, example.master, example.schema, row, z,
            pattern_cache=cache)


def test_suggestion_truthiness():
    assert not Suggestion(attrs=(), certain=False)
    assert Suggestion(attrs=("a",), certain=False)


def test_s_minimum_matches_example13(example):
    """Example 13: the minimum suggestion for t1 given t1[zip,AC,str,city]
    is exactly {phn, type, item}."""
    from repro.repair.suggest import s_minimum_exact

    row, z = _fixed_t1(example)
    result = s_minimum_exact(
        example.rules, example.master, example.schema, row, z
    )
    assert result is not None
    s, witness = result
    assert set(s) == {"phn", "type", "item"}
    assert witness is not None


def test_s_minimum_with_empty_z_is_z_minimum(example):
    """Sect. 5.2: the Z-minimum problem is the S-minimum special case with
    no attribute fixed initially."""
    from repro.analysis.zproblems import z_minimum_exact
    from repro.repair.suggest import s_minimum_exact
    from repro.engine.tuples import Row
    from repro.engine.values import UNKNOWN

    blank = Row(example.schema,
                [UNKNOWN] * len(example.schema))
    s_result = s_minimum_exact(
        example.rules, example.master, example.schema, blank, frozenset(),
        max_subsets=100_000,
    )
    z_result = z_minimum_exact(
        example.rules, example.master, example.schema, max_subsets=100_000
    )
    assert (s_result is None) == (z_result is None)
    if s_result is not None:
        assert len(s_result[0]) == len(z_result[0])


def test_s_minimum_subset_budget(example):
    import pytest as _pytest
    from repro.repair.suggest import s_minimum_exact

    row, z = _fixed_t1(example)
    with _pytest.raises(RuntimeError, match="NP-complete"):
        s_minimum_exact(
            example.rules, example.master, example.schema, row, frozenset(),
            max_subsets=1,
        )
