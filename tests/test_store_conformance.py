"""Run the MasterStore conformance kit across every backend.

One subclass per backend; the contract itself lives in
``tests/store_conformance.py``.  A fourth backend earns its suite by
adding a subclass with a ``store`` fixture — nothing else.
"""

import pytest

from repro.engine.relation import Relation
from repro.engine.remote import MasterServer, RemoteStore
from repro.engine.store import InMemoryStore, SqliteStore

from store_conformance import StoreConformance, conformance_rows


class TestInMemoryStoreConformance(StoreConformance):
    """The paper's setting: Relation + hash indexes in RAM."""

    @pytest.fixture
    def store(self):
        schema = self.schema()
        return InMemoryStore(Relation(schema, conformance_rows(schema)))

    def resync(self, parent, clone):
        # Snapshot backend: reattached copies are by value, so the resync
        # ships the rows along with the stamp (the batch engine's
        # per-chunk snapshot protocol).
        clone.reset_rows(tuple(parent), parent.version)


class TestSqliteStoreConformance(StoreConformance):
    """Out-of-core file-backed sqlite (shares storage across processes)."""

    @pytest.fixture
    def store(self, tmp_path):
        schema = self.schema()
        backend = SqliteStore(
            schema, conformance_rows(schema), path=tmp_path / "m.db"
        )
        yield backend
        backend.close()


class TestSqliteMemoryStoreConformance(StoreConformance):
    """A private ``:memory:`` sqlite database — everything but detach."""

    supports_detach = False

    @pytest.fixture
    def store(self):
        schema = self.schema()
        backend = SqliteStore(schema, conformance_rows(schema))
        yield backend
        backend.close()


class TestRemoteStoreConformance(StoreConformance):
    """The HTTP read-through client over a memory-backed MasterServer."""

    @pytest.fixture
    def store(self):
        schema = self.schema()
        backing = InMemoryStore(Relation(schema, conformance_rows(schema)))
        with MasterServer(backing) as server:
            client = RemoteStore(server.url)
            yield client
            client.close()
