"""Run the MasterStore conformance kit across every backend.

One subclass per backend; the contract itself lives in
``tests/store_conformance.py``.  A fourth backend earns its suite by
adding a subclass with a ``store`` fixture — nothing else.
"""

import contextlib

import pytest

from repro.engine.relation import Relation
from repro.engine.remote import MasterServer, RemoteStore
from repro.engine.sharded import ShardedStore
from repro.engine.store import InMemoryStore, SqliteStore

from store_conformance import StoreConformance, conformance_rows


@contextlib.contextmanager
def _shards_lie(store, skew):
    """Make every shard of a ShardedStore answer one key too few/many."""
    for shard in store.shards:
        def lying(attrs, keys, _real=shard.probe_many):
            out = dict(_real(attrs, keys))
            if skew < 0:
                out.pop(next(iter(out)))
            else:
                out[("__liar__",) * len(tuple(attrs))] = ()
            return out
        shard.probe_many = lying
    try:
        yield
    finally:
        for shard in store.shards:
            del shard.probe_many


class TestInMemoryStoreConformance(StoreConformance):
    """The paper's setting: Relation + hash indexes in RAM."""

    @pytest.fixture
    def store(self):
        schema = self.schema()
        return InMemoryStore(Relation(schema, conformance_rows(schema)))

    def resync(self, parent, clone):
        # Snapshot backend: reattached copies are by value, so the resync
        # ships the rows along with the stamp (the batch engine's
        # per-chunk snapshot protocol).
        clone.reset_rows(tuple(parent), parent.version)


class TestSqliteStoreConformance(StoreConformance):
    """Out-of-core file-backed sqlite (shares storage across processes)."""

    @pytest.fixture
    def store(self, tmp_path):
        schema = self.schema()
        backend = SqliteStore(
            schema, conformance_rows(schema), path=tmp_path / "m.db"
        )
        yield backend
        backend.close()


class TestSqliteMemoryStoreConformance(StoreConformance):
    """A private ``:memory:`` sqlite database — everything but detach."""

    supports_detach = False

    @pytest.fixture
    def store(self):
        schema = self.schema()
        backend = SqliteStore(schema, conformance_rows(schema))
        yield backend
        backend.close()


class TestRemoteStoreConformance(StoreConformance):
    """The HTTP read-through client over a memory-backed MasterServer."""

    @pytest.fixture
    def store(self):
        schema = self.schema()
        backing = InMemoryStore(Relation(schema, conformance_rows(schema)))
        with MasterServer(backing) as server:
            client = RemoteStore(server.url)
            yield client
            client.close()

    def lie_probe_many(self, store, skew):
        # Tamper with the wire payload below the client's accounting:
        # the server answered, the transport delivered, the body lies.
        @contextlib.contextmanager
        def lie():
            real = store._request

            def lying(method, path, payload=None, idempotent=True):
                body, version = real(method, path, payload, idempotent)
                if path.startswith("/probe_many"):
                    results = list(body["results"])
                    if skew < 0:
                        results.pop()
                    else:
                        results.append([])
                    body = dict(body, results=results)
                return body, version

            store._request = lying
            try:
                yield
            finally:
                del store._request

        return lie()


class TestShardedMemoryStoreConformance(StoreConformance):
    """The scatter-gather coordinator over two in-memory shards."""

    @pytest.fixture
    def store(self):
        schema = self.schema()
        backend = ShardedStore(
            [InMemoryStore(Relation(schema)) for _ in range(2)],
            route_attrs=("k",),
            rows=conformance_rows(schema),
        )
        yield backend
        backend.close()

    def resync(self, parent, clone):
        # Memory shards are snapshots: ship rows + stamp, as for the
        # plain in-memory backend (rows re-route by hash on the way in).
        clone.reset_rows(tuple(parent), parent.version)

    def lie_probe_many(self, store, skew):
        return _shards_lie(store, skew)


class TestShardedRemoteStoreConformance(StoreConformance):
    """The fleet deployment shape: the coordinator over two RemoteStore
    clients, each against its own memory-backed MasterServer."""

    @pytest.fixture
    def store(self):
        schema = self.schema()
        with MasterServer(InMemoryStore(Relation(schema))) as s0, \
                MasterServer(InMemoryStore(Relation(schema))) as s1:
            backend = ShardedStore(
                [RemoteStore(s0.url), RemoteStore(s1.url)],
                route_attrs=("k",),
                rows=conformance_rows(schema),
            )
            yield backend
            backend.close()

    def lie_probe_many(self, store, skew):
        return _shards_lie(store, skew)
