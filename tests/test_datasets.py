"""The HOSP and DBLP generators: schemas, FDs, rule counts, determinism."""

import random

from repro.constraints.fd import all_hold
from repro.datasets.dblp import dblp_fds, dblp_rules, make_dblp, DBLP_ATTRS
from repro.datasets.hosp import hosp_fds, hosp_rules, make_hosp, HOSP_ATTRS
from repro.engine.values import NULL


def test_hosp_schema_has_19_attributes(hosp):
    assert len(HOSP_ATTRS) == 19
    assert hosp.schema.attributes == HOSP_ATTRS
    assert hosp.master_schema.attributes == HOSP_ATTRS  # R = Rm, as in Sect. 6


def test_hosp_has_21_rules(hosp):
    assert len(hosp.rules) == 21


def test_hosp_contains_the_five_published_rules(hosp):
    """φ1: zip→ST, φ2: phn→zip, φ3: (mCode,ST)→sAvg, φ4: (id,mCode)→Score,
    φ5: id→hName — all with non-nil guards."""
    signatures = {(r.lhs, r.rhs) for r in hosp.rules}
    assert (("zip",), "ST") in signatures
    assert (("phn",), "zip") in signatures
    assert (("mCode", "ST"), "sAvg") in signatures
    assert (("id", "mCode"), "Score") in signatures
    assert (("id",), "hName") in signatures


def test_hosp_nil_guards(hosp):
    for rule in hosp.rules:
        for attr in rule.lhs:
            condition = rule.pattern.get(attr)
            assert condition is not None and condition.is_negation
            assert condition.value is NULL


def test_hosp_master_satisfies_fd_suite(hosp):
    assert all_hold(hosp_fds(), hosp.master)


def test_hosp_master_size_is_hospitals_times_measures():
    bundle = make_hosp(num_hospitals=12, num_measures=4, seed=1)
    assert len(bundle.master) == 48


def test_hosp_generation_is_deterministic():
    a = make_hosp(num_hospitals=8, num_measures=3, seed=5)
    b = make_hosp(num_hospitals=8, num_measures=3, seed=5)
    assert [r.values for r in a.master] == [r.values for r in b.master]


def test_hosp_state_averages_are_true_averages(hosp):
    scores: dict = {}
    for row in hosp.master:
        scores.setdefault((row["mCode"], row["ST"]), set()).add(
            (row["id"], row["Score"])
        )
    for (m_code, state), pairs in scores.items():
        values = [s for _, s in pairs]
        expected = f"{sum(values) / len(values):.1f}"
        sample_row = next(
            r for r in hosp.master
            if r["mCode"] == m_code and r["ST"] == state
        )
        assert sample_row["sAvg"] == expected


def test_hosp_entity_factory_consistent_with_master(hosp):
    rng = random.Random(0)
    for _ in range(20):
        row = hosp.entity_factory(rng)
        assert row["id"] not in hosp.master.active_values("id")
        if row["zip"] in hosp.zip_map:
            city, state = hosp.zip_map[row["zip"]]
            assert (row["city"], row["ST"]) == (city, state)
        m_name, condition = hosp.measure_map[row["mCode"]]
        assert (row["mName"], row["condition"]) == (m_name, condition)
        key = (row["mCode"], row["ST"])
        if key in hosp.state_avg:
            assert row["sAvg"] == hosp.state_avg[key]


def test_hosp_rejects_too_many_measures():
    import pytest

    with pytest.raises(ValueError, match="at most"):
        make_hosp(num_hospitals=2, num_measures=99)


def test_dblp_schema_has_12_attributes(dblp):
    assert len(DBLP_ATTRS) == 12
    assert dblp.schema.attributes == DBLP_ATTRS


def test_dblp_has_16_rules(dblp):
    assert len(dblp.rules) == 16


def test_dblp_cross_attribute_homepage_rules(dblp):
    """φ2 matches input a2 against master a1 — not expressible as a CFD."""
    by_name = {r.name: r for r in dblp.rules}
    phi2 = by_name["phi2"]
    assert phi2.lhs == ("a2",) and phi2.lhs_m == ("a1",)
    assert phi2.rhs == "hp2" and phi2.rhs_m == "hp1"
    phi4 = by_name["phi4"]
    assert phi4.lhs == ("a1",) and phi4.lhs_m == ("a2",)


def test_dblp_rule_families_have_documented_ranges(dblp):
    names = {r.name for r in dblp.rules}
    assert {f"phi5[{a}]" for a in ("isbn", "publisher", "crossref")} <= names
    assert {f"phi6[{a}]" for a in ("btitle", "year", "isbn", "publisher")} <= names
    assert {
        f"phi7[{a}]"
        for a in ("isbn", "publisher", "year", "btitle", "crossref")
    } <= names


def test_dblp_master_satisfies_fd_suite(dblp):
    assert all_hold(dblp_fds(), dblp.master)


def test_dblp_homepages_consistent_across_author_columns(dblp):
    """The same person as a1 or a2 must carry the same homepage, or the
    cross rules φ2/φ4 would be inconsistent."""
    homepages: dict = {}
    for row in dblp.master:
        for author_col, hp_col in (("a1", "hp1"), ("a2", "hp2")):
            author, homepage = row[author_col], row[hp_col]
            assert homepages.setdefault(author, homepage) == homepage


def test_dblp_entity_factory_consistent_with_master(dblp):
    rng = random.Random(0)
    titles = dblp.master.active_values("ptitle")
    for _ in range(20):
        row = dblp.entity_factory(rng)
        assert row["ptitle"] not in titles
        assert row["type"] == "inproceedings"
        if row["crossref"] in dblp.venues:
            btitle, year, publisher, isbn = dblp.venues[row["crossref"]]
            assert row["btitle"] == btitle and row["year"] == year
            assert row["publisher"] == publisher and row["isbn"] == isbn
        if row["a1"] in dblp.authors:
            assert row["hp1"] == dblp.authors[row["a1"]]


def test_dblp_generation_is_deterministic():
    a = make_dblp(num_papers=30, num_authors=10, num_venues=4, seed=2)
    b = make_dblp(num_papers=30, num_authors=10, num_venues=4, seed=2)
    assert [r.values for r in a.master] == [r.values for r in b.master]


def test_rule_builders_are_pure():
    assert hosp_rules() == hosp_rules()
    assert dblp_rules() == dblp_rules()
