"""The exact certification passes (E205/W206/I208), fix-its, and caching."""

import ast
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.patterns import ANY, Const, PatternTableau, PatternTuple
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.store import InMemoryStore, SqliteStore, as_master_store
from repro.lint import (
    LintError,
    Severity,
    apply_fixits,
    preflight,
    run_lint,
)
from repro.lint.certify import (
    certification_cache_info,
    certification_for,
)
from repro.lint.registry import LintContext


def _rule(lhs, rhs, pattern=None, name=None, lhs_m=None, rhs_m=None):
    lhs = (lhs,) if isinstance(lhs, str) else tuple(lhs)
    lhs_m = lhs if lhs_m is None else (
        (lhs_m,) if isinstance(lhs_m, str) else tuple(lhs_m)
    )
    return EditingRule(
        lhs, lhs_m, rhs, rhs_m if rhs_m is not None else rhs,
        PatternTuple(pattern or {}), name=name,
    )


def _master(rows, schema):
    relation = Relation(schema)
    for row in rows:
        relation.insert(list(row))
    return relation


def _wild_region(attrs):
    attrs = tuple(attrs)
    return Region(attrs, PatternTableau(
        attrs, [PatternTuple({a: ANY for a in attrs})]
    ))


@pytest.fixture()
def diverging():
    """r1 probes k1, r2 probes k2; input (k1=1, k2=2) gets 10 vs 20."""
    schema = RelationSchema("r", ["k1", "k2", "v"])
    master = _master([(1, 9, 10), (8, 2, 20)], schema)
    rules = [_rule("k1", "v", name="r1"), _rule("k2", "v", name="r2")]
    return schema, master, rules


# -- E205: exact consistency --------------------------------------------------


def test_e205_provably_inconsistent_with_minimal_witness(diverging):
    schema, master, rules = diverging
    report = run_lint(rules, schema, master,
                      region=_wild_region(("k1", "k2")))
    (finding,) = [d for d in report if d.code == "E205"]
    assert finding.severity is Severity.ERROR
    assert finding.data["region_source"] == "declared"
    assert finding.data["witness"] == {"k1": "1", "k2": "2"}
    assert "candidate values" in finding.data["conflict"]
    assert report.fails("error")


def test_e205_witness_is_minimized(diverging):
    # An attribute irrelevant to the conflict is dropped from the witness.
    schema, master, rules = diverging
    wide = RelationSchema("r", ["k1", "k2", "x", "v"])
    master = _master([(1, 9, "p", 10), (8, 2, "q", 20)], wide)
    report = run_lint(rules, wide, master,
                      region=_wild_region(("k1", "k2", "x")))
    (finding,) = [d for d in report if d.code == "E205"]
    assert set(finding.data["witness"]) == {"k1", "k2"}
    assert set(finding.data["witness_full"]) == {"k1", "k2", "x"}


def test_e205_silent_on_consistent_program():
    # A concrete tableau over the active keys: every marked input has a
    # unique covering fix.  (A wildcard region would NOT be certain — its
    # instantiation includes a fresh key no rule can fire on.)
    schema = RelationSchema("r", ["k", "v"])
    master = _master([(1, 10), (2, 20)], schema)
    region = Region(("k",), PatternTableau(
        ("k",), [PatternTuple({"k": Const(1)}),
                 PatternTuple({"k": Const(2)})],
    ))
    report = run_lint([_rule("k", "v", name="only")], schema, master,
                      region=region)
    assert "E205" not in report.codes()
    assert "W206" not in report.codes()


def test_e205_degradation_is_reported_never_silent(diverging):
    schema, master, rules = diverging
    report = run_lint(rules, schema, master,
                      region=_wild_region(("k1", "k2")),
                      max_instantiations=1)
    (finding,) = [d for d in report if d.code == "E205"]
    assert finding.severity is Severity.INFO
    assert finding.data["degraded"] is True
    assert "sampled" in finding.message
    # The sampled fallback is re-armed and reports the divergence.
    assert [d for d in report if d.code == "W202"]


def test_degraded_by_master_size_budget(diverging):
    schema, master, rules = diverging
    report = run_lint(rules, schema, master,
                      region=_wild_region(("k1", "k2")),
                      max_master_rows=1)
    (finding,) = [d for d in report if d.code == "E205"]
    assert finding.severity is Severity.INFO
    assert "max_master_rows" in finding.data["reason"]


# -- W206 / I208: coverage and extension --------------------------------------


def test_w206_uncoverable_attr_and_i208_extension():
    schema = RelationSchema("r", ["k", "v", "w"])
    master = _master([(1, 10, "x")], schema)
    rules = [_rule("k", "v", name="kv")]  # nothing ever fixes w
    report = run_lint(rules, schema, master, region=_wild_region(("k",)))
    w206s = [d for d in report if d.code == "W206"]
    assert any(d.data.get("uncoverable") == ["w"] for d in w206s)
    (i208,) = [d for d in report if d.code == "I208"]
    # v rides along because the wildcard region's fresh-key instantiation
    # cannot fire the rule; w is the genuinely uncoverable attribute.
    assert "w" in i208.data["extension"]
    assert i208.data["exact"] is True
    assert i208.fixit["action"] == "extend_region"
    assert "w" in i208.fixit["attrs"]


def test_i208_fixit_round_trips_through_apply(diverging):
    # Applying I208's extend_region makes the re-lint clean of E205/W206.
    schema, master, rules = diverging
    region = _wild_region(("k1", "k2"))
    report = run_lint(rules, schema, master, region=region)
    assert "E205" in report.codes() and "I208" in report.codes()
    result = apply_fixits(rules, report.diagnostics, region)
    assert result.changed
    assert "v" in result.region.attrs
    again = run_lint(result.rules, schema, master, region=result.region)
    assert "E205" not in again.codes()
    assert "I208" not in again.codes()
    # Idempotence: a second application changes nothing.
    rerun = apply_fixits(result.rules, again.diagnostics, result.region)
    assert not rerun.changed


# -- backend parity -----------------------------------------------------------


@pytest.mark.parametrize("dataset", ["hosp", "dblp"])
def test_cert_codes_identical_across_backends(dataset, request):
    from repro.engine.remote import MasterServer, RemoteStore

    bundle = request.getfixturevalue(dataset)
    key = lambda report: [
        (d.code, d.severity.name, d.rule, d.rule_index, d.message)
        for d in report
    ]
    memory = as_master_store(bundle.master)
    expected = key(run_lint(bundle.rules, bundle.schema, memory))
    sqlite = SqliteStore(bundle.schema, iter(bundle.master))
    assert key(run_lint(bundle.rules, bundle.schema, sqlite)) == expected
    sqlite.close()
    with MasterServer(InMemoryStore(bundle.master)) as server:
        remote = RemoteStore(server.url)
        assert key(run_lint(bundle.rules, bundle.schema, remote)) == expected
        remote.close()


# -- certification caching over the delta journal -----------------------------


def test_delta_keeps_certification_when_footprints_missed():
    # Two-column probes, region pinned to k1=1: only the (1, *) key pairs
    # are ever probed.  Inserting an unprobed key combination whose values
    # are all already active keeps the whole certification (and its E205
    # finding) across the version move.
    schema = RelationSchema("r", ["k1", "k2", "v", "w"])
    store = InMemoryStore(
        _master([(1, 9, 10, 20), (8, 2, 30, 40)], schema)
    )
    rules = [
        _rule(("k1", "k2"), "v", name="r1"),
        _rule(("k1", "k2"), "v", rhs_m="w", name="r2"),
    ]
    region = Region(("k1", "k2"), PatternTableau(
        ("k1", "k2"),
        [PatternTuple({"k1": Const(1), "k2": ANY})],
    ))
    first = run_lint(rules, schema, store, region=region)
    assert "E205" in first.codes()
    before = certification_cache_info(store)
    store.insert([8, 9, 10, 20])  # new key pair, no novel values
    second = run_lint(rules, schema, store, region=region)
    after = certification_cache_info(store)
    assert after["delta_kept"] == before["delta_kept"] + 1
    assert after["delta_kept_findings"] > before["delta_kept_findings"]
    # The retained findings are the same objects, not recomputations.
    firsts = [d for d in first if d.code == "E205"]
    seconds = [d for d in second if d.code == "E205"]
    assert all(a is b for a, b in zip(firsts, seconds))


def test_delta_with_footprint_hit_recomputes():
    schema = RelationSchema("r", ["k1", "k2", "v", "w"])
    store = InMemoryStore(
        _master([(1, 9, 10, 20), (8, 2, 30, 40)], schema)
    )
    rules = [
        _rule(("k1", "k2"), "v", name="r1"),
        _rule(("k1", "k2"), "v", rhs_m="w", name="r2"),
    ]
    region = Region(("k1", "k2"), PatternTableau(
        ("k1", "k2"),
        [PatternTuple({"k1": Const(1), "k2": ANY})],
    ))
    run_lint(rules, schema, store, region=region)
    before = certification_cache_info(store)
    store.insert([1, 9, 30, 40])  # hits the probed (1, 9) key
    run_lint(rules, schema, store, region=region)
    after = certification_cache_info(store)
    assert after["recomputes"] == before["recomputes"] + 1
    assert after["delta_kept"] == before["delta_kept"]


def test_novel_value_in_domain_column_recomputes():
    # The inserted key pair is unprobed, but a domain-feeding column gains
    # a value absent from the certification's active-domain snapshot: the
    # exact verdict may no longer hold, so the entry is recomputed.
    schema = RelationSchema("r", ["k1", "k2", "v", "w"])
    store = InMemoryStore(
        _master([(1, 9, 10, 20), (8, 2, 30, 40)], schema)
    )
    rules = [
        _rule(("k1", "k2"), "v", name="r1"),
        _rule(("k1", "k2"), "v", rhs_m="w", name="r2"),
    ]
    region = Region(("k1", "k2"), PatternTableau(
        ("k1", "k2"),
        [PatternTuple({"k1": Const(1), "k2": ANY})],
    ))
    run_lint(rules, schema, store, region=region)
    before = certification_cache_info(store)
    store.insert([8, 9, 10, 99])  # w=99 is novel
    run_lint(rules, schema, store, region=region)
    after = certification_cache_info(store)
    assert after["recomputes"] == before["recomputes"] + 1
    assert after["delta_kept"] == before["delta_kept"]


# -- active-domain hoisting (satellite: saved work is counted) ----------------


def test_domain_cache_stats_show_reuse(hosp):
    ctx = LintContext(
        rules=tuple(hosp.rules), schema=hosp.schema,
        master_schema=hosp.schema, store=as_master_store(hosp.master),
    )
    cert = certification_for(ctx)
    assert cert.exact_complete
    assert cert.domain_stats["reused"] > cert.domain_stats["computed"]


# -- preflight mode "certify" -------------------------------------------------


def test_preflight_certify_passes_consistent_program(diverging):
    # The computed region is concrete and consistent, so certify admits the
    # program even though the sampled search had a (spurious) witness.
    schema, master, rules = diverging
    report = preflight(rules, schema, mode="certify", master=master)
    assert report is not None and not report.errors


def test_preflight_certify_refuses_inconsistent_program():
    # Four target attributes each have a diverging rule pair (one reads
    # the attribute's own master column, one reads `alt`), so a consistent
    # region would need all four assured — beyond comp_c_region's
    # extension bound.  The search fails, the canonical region is
    # certified, and its exact check proves the conflict.
    attrs = ["k", "v1", "v2", "v3", "v4", "alt"]
    schema = RelationSchema("r", attrs)
    master = _master([(1, 10, 11, 12, 13, 99)], schema)
    rules = []
    for i in range(1, 5):
        rules.append(_rule("k", f"v{i}", name=f"own{i}"))
        rules.append(_rule("k", f"v{i}", rhs_m="alt", name=f"alt{i}"))
    with pytest.raises(LintError) as excinfo:
        preflight(rules, schema, mode="certify", master=master)
    assert "E205" in str(excinfo.value)
    # The plain structural gate would have admitted the same program.
    assert preflight(rules, schema) is not None


def test_preflight_certify_requires_master(diverging):
    schema, _, rules = diverging
    with pytest.raises(ValueError, match="needs master data"):
        preflight(rules, schema, mode="certify")


# -- fuzz: exact and sampled never disagree in the inconsistent direction -----


FUZZ_ATTRS = ["a", "b", "c"]
fuzz_values = st.integers(min_value=0, max_value=2)


@st.composite
def fuzz_instances(draw):
    schema = RelationSchema("r", FUZZ_ATTRS)
    rows = draw(st.lists(
        st.tuples(fuzz_values, fuzz_values, fuzz_values),
        min_size=1, max_size=3,
    ))
    num_rules = draw(st.integers(min_value=2, max_value=3))
    rules = []
    for i in range(num_rules):
        lhs = draw(st.sampled_from(FUZZ_ATTRS))
        rhs = draw(st.sampled_from([x for x in FUZZ_ATTRS if x != lhs]))
        rhs_m = draw(st.sampled_from([x for x in FUZZ_ATTRS if x != lhs]))
        rules.append(_rule(lhs, rhs, rhs_m=rhs_m, name=f"r{i}"))
    return schema, _master(rows, schema), rules


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fuzz_instances())
def test_fuzz_sampled_witness_implies_exact_inconsistency(instance):
    """Any divergence the sampled W202 search finds must also be found by
    the exact check over the concrete region marking exactly that witness:
    the two analyses never disagree in the 'inconsistent' direction."""
    from repro.analysis.consistency import check_region

    schema, master, rules = instance
    # Starve the exact pass so the sampled fallback produces findings.
    report = run_lint(rules, schema, master,
                      region=_wild_region(tuple(FUZZ_ATTRS)),
                      max_instantiations=1)
    for finding in report:
        if finding.code != "W202":
            continue
        witness = {
            attr: ast.literal_eval(value)
            for attr, value in finding.data["witness"].items()
        }
        attrs = tuple(a for a in FUZZ_ATTRS if a in witness)
        concrete = Region(attrs, PatternTableau(
            attrs,
            [PatternTuple({a: Const(witness[a]) for a in attrs})],
        ))
        exact = check_region(rules, as_master_store(master), concrete,
                             schema)
        assert not exact.consistent, (
            f"sampled witness {witness} diverges but the exact check "
            f"claims consistency"
        )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fuzz_instances())
def test_fuzz_agreement_holds_on_sqlite_backend(instance):
    from repro.analysis.consistency import check_region

    schema, master, rules = instance
    store = SqliteStore(schema, iter(master))
    try:
        report = run_lint(rules, schema, store,
                          region=_wild_region(tuple(FUZZ_ATTRS)),
                          max_instantiations=1)
        for finding in report:
            if finding.code != "W202":
                continue
            witness = {
                attr: ast.literal_eval(value)
                for attr, value in finding.data["witness"].items()
            }
            attrs = tuple(a for a in FUZZ_ATTRS if a in witness)
            concrete = Region(attrs, PatternTableau(
                attrs,
                [PatternTuple({a: Const(witness[a]) for a in attrs})],
            ))
            exact = check_region(rules, store, concrete, schema)
            assert not exact.consistent
    finally:
        store.close()
