"""Batch repair engine: shared caches, memoization, determinism, reporting."""

import pytest

from repro.engine.csvio import relation_to_csv
from repro.engine.relation import Relation
from repro.engine.tuples import Row
from repro.repair.batch import BatchRepairEngine, BatchReport, MemoStats
from repro.repair.certainfix import CertainFix, IncompleteFix
from repro.repair.oracle import SimulatedUser


def _pairs(data):
    return [(dt.dirty, SimulatedUser(dt.clean)) for dt in data]


def _assert_sessions_identical(batch_sessions, stream_sessions):
    assert len(batch_sessions) == len(stream_sessions)
    for b, s in zip(batch_sessions, stream_sessions):
        assert b.final == s.final
        assert b.validated == s.validated
        assert b.round_count == s.round_count
        assert b.completed == s.completed
        assert [r.asserted for r in b.rounds] == [r.asserted for r in s.rounds]


# -- determinism: batch == sequential fix_stream ------------------------------


@pytest.mark.parametrize("use_bdd", [False, True])
def test_batch_matches_fix_stream_hosp(hosp, hosp_dirty, use_bdd):
    sequential = CertainFix(hosp.rules, hosp.master, hosp.schema,
                            use_bdd=use_bdd)
    stream_sessions = sequential.fix_stream(_pairs(hosp_dirty))
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                              use_bdd=use_bdd, chunk_size=7)
    result = batch.run(_pairs(hosp_dirty))
    _assert_sessions_identical(result.sessions, stream_sessions)


@pytest.mark.parametrize("use_bdd", [False, True])
def test_batch_matches_fix_stream_dblp(dblp, dblp_dirty, use_bdd):
    sequential = CertainFix(dblp.rules, dblp.master, dblp.schema,
                            use_bdd=use_bdd)
    stream_sessions = sequential.fix_stream(_pairs(dblp_dirty))
    batch = BatchRepairEngine(dblp.rules, dblp.master, dblp.schema,
                              use_bdd=use_bdd, chunk_size=16)
    result = batch.run(_pairs(dblp_dirty))
    _assert_sessions_identical(result.sessions, stream_sessions)


def _example_workload(example):
    """Dirty tuples for the running example, built from its master rows
    (R and Rm have different schemas, so project the master by hand)."""
    workload = []
    for key, item in (("s1", "CD"), ("s2", "BOOK")):
        s = example.masters[key]
        clean = Row(example.schema, {
            "FN": s["FN"], "LN": s["LN"], "AC": s["AC"], "phn": s["Mphn"],
            "type": 2, "str": s["str"], "city": s["city"], "zip": s["zip"],
            "item": item,
        })
        workload.append((clean.with_values({"FN": "Bobby", "city": "???"}),
                         clean))
        workload.append((clean, clean))  # already-clean duplicate shape
    return workload


def test_batch_matches_fix_stream_running_example(example):
    workload = _example_workload(example)
    sequential = CertainFix(example.rules, example.master, example.schema)
    stream_sessions = sequential.fix_stream(
        (dirty, SimulatedUser(clean)) for dirty, clean in workload
    )
    batch = BatchRepairEngine(example.rules, example.master, example.schema,
                              use_bdd=False)
    result = batch.run(
        (dirty, SimulatedUser(clean)) for dirty, clean in workload
    )
    _assert_sessions_identical(result.sessions, stream_sessions)
    for session, (_, clean) in zip(result.sessions, workload):
        assert session.final == clean


# -- memoization --------------------------------------------------------------


def test_memo_hits_on_identical_dirty_shapes(hosp, hosp_dirty):
    repeated = list(hosp_dirty) + list(hosp_dirty)
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema)
    result = batch.run_dirty(repeated)
    report = result.report
    # The second pass re-validates nothing: every chase / TransFix outcome
    # comes from the validated-pattern memo.
    assert report.chase_memo.hits >= report.chase_memo.misses
    assert report.transfix_memo.hits >= report.transfix_memo.misses
    half = len(hosp_dirty)
    for first, second in zip(result.sessions[:half], result.sessions[half:]):
        assert first.final == second.final
        assert first.validated == second.validated


def test_memoized_sessions_equal_unmemoized(hosp, hosp_dirty):
    plain = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                              use_bdd=False, memoize=False)
    memo = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                             use_bdd=False, memoize=True)
    r1 = plain.run(_pairs(hosp_dirty))
    r2 = memo.run(_pairs(hosp_dirty))
    _assert_sessions_identical(r2.sessions, r1.sessions)
    assert r1.report.chase_memo.lookups == 0
    assert r2.report.chase_memo.lookups > 0


# -- concurrency --------------------------------------------------------------


def test_concurrent_batch_deterministic_without_bdd(hosp, hosp_dirty):
    sequential = CertainFix(hosp.rules, hosp.master, hosp.schema,
                            use_bdd=False)
    stream_sessions = sequential.fix_stream(_pairs(hosp_dirty))
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                              use_bdd=False, concurrency=4, chunk_size=5)
    result = batch.run(_pairs(hosp_dirty))
    _assert_sessions_identical(result.sessions, stream_sessions)


def test_concurrent_batch_with_bdd_produces_certain_fixes(hosp, hosp_dirty):
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                              use_bdd=True, concurrency=4, chunk_size=8)
    result = batch.run_dirty(hosp_dirty)
    assert result.report.completed == len(hosp_dirty)
    for session, dt in zip(result.sessions, hosp_dirty):
        assert session.final == dt.clean


# -- chunked / streaming execution -------------------------------------------


def test_chunked_generator_input_preserves_order(hosp, hosp_dirty):
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                              use_bdd=False, chunk_size=6)
    from_list = batch.run(_pairs(hosp_dirty))
    generator = ((dt.dirty, SimulatedUser(dt.clean)) for dt in hosp_dirty)
    from_generator = batch.run(generator)
    _assert_sessions_identical(from_generator.sessions, from_list.sessions)
    expected_chunks = -(-len(hosp_dirty) // 6)
    assert from_generator.report.chunks == expected_chunks


def test_run_csv_streaming(tmp_path, dblp, dblp_dirty):
    dirty_csv = tmp_path / "dirty.csv"
    clean_csv = tmp_path / "clean.csv"
    relation_to_csv(
        Relation(dblp.schema, (dt.dirty for dt in dblp_dirty)), dirty_csv
    )
    relation_to_csv(
        Relation(dblp.schema, (dt.clean for dt in dblp_dirty)), clean_csv
    )
    batch = BatchRepairEngine(dblp.rules, dblp.master, dblp.schema)
    result = batch.run_csv(dirty_csv, clean_path=clean_csv)
    assert result.report.tuples == len(dblp_dirty)
    # CSV round-trips NULLs and strings faithfully for the all-string DBLP
    # schema, so the streamed run repairs to the same ground truth.
    for session, dt in zip(result.sessions, dblp_dirty):
        assert session.final == dt.clean


def test_run_csv_requires_exactly_one_feedback_source(tmp_path, dblp):
    batch = BatchRepairEngine(dblp.rules, dblp.master, dblp.schema)
    with pytest.raises(ValueError, match="exactly one"):
        batch.run_csv(tmp_path / "x.csv")


def test_run_csv_misaligned_clean_file_fails(tmp_path, dblp, dblp_dirty):
    """A short clean file must not silently truncate the stream (zip
    semantics); the error names both paths and both row counts."""
    dirty_csv = tmp_path / "dirty.csv"
    clean_csv = tmp_path / "clean.csv"
    relation_to_csv(
        Relation(dblp.schema, (dt.dirty for dt in dblp_dirty)), dirty_csv
    )
    relation_to_csv(
        Relation(dblp.schema, (dt.clean for dt in list(dblp_dirty)[:-3])),
        clean_csv,
    )
    batch = BatchRepairEngine(dblp.rules, dblp.master, dblp.schema)
    with pytest.raises(ValueError) as excinfo:
        batch.run_csv(dirty_csv, clean_path=clean_csv)
    message = str(excinfo.value)
    total = len(dblp_dirty)
    assert str(dirty_csv) in message and str(clean_csv) in message
    assert f"{total} data rows" in message and str(total - 3) in message


def test_run_csv_misaligned_dirty_file_fails(tmp_path, dblp, dblp_dirty):
    """The symmetric case: a short dirty file means ground truth would be
    silently ignored — also an error, with exact counts."""
    dirty_csv = tmp_path / "dirty.csv"
    clean_csv = tmp_path / "clean.csv"
    relation_to_csv(
        Relation(dblp.schema, (dt.dirty for dt in list(dblp_dirty)[:-5])),
        dirty_csv,
    )
    relation_to_csv(
        Relation(dblp.schema, (dt.clean for dt in dblp_dirty)), clean_csv
    )
    batch = BatchRepairEngine(dblp.rules, dblp.master, dblp.schema)
    with pytest.raises(ValueError) as excinfo:
        batch.run_csv(dirty_csv, clean_path=clean_csv)
    message = str(excinfo.value)
    total = len(dblp_dirty)
    assert f"{total - 5} data rows" in message and str(total) in message


# -- incomplete sessions ------------------------------------------------------


def _needs_multiple_rounds(hosp, hosp_dirty):
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema)
    for dt in hosp_dirty:
        session = engine.fix(dt.dirty, SimulatedUser(dt.clean))
        if session.round_count >= 2:
            return dt
    pytest.skip("workload produced no multi-round session")


def test_on_incomplete_raise_in_fix_stream(hosp, hosp_dirty):
    dt = _needs_multiple_rounds(hosp, hosp_dirty)
    truncated = CertainFix(hosp.rules, hosp.master, hosp.schema, max_rounds=1)
    with pytest.raises(IncompleteFix) as excinfo:
        truncated.fix_stream([(dt.dirty, SimulatedUser(dt.clean))],
                             on_incomplete="raise")
    assert excinfo.value.index == 0
    assert not excinfo.value.session.completed


def test_on_incomplete_keep_in_fix_stream(hosp, hosp_dirty):
    dt = _needs_multiple_rounds(hosp, hosp_dirty)
    truncated = CertainFix(hosp.rules, hosp.master, hosp.schema, max_rounds=1)
    sessions = truncated.fix_stream([(dt.dirty, SimulatedUser(dt.clean))])
    assert len(sessions) == 1 and not sessions[0].completed


def test_on_incomplete_policies_in_batch(hosp, hosp_dirty):
    dt = _needs_multiple_rounds(hosp, hosp_dirty)
    keep = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                             use_bdd=False, max_rounds=1)
    report = keep.run([(dt.dirty, SimulatedUser(dt.clean))]).report
    assert report.incomplete == 1 and report.completed == 0
    strict = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                               use_bdd=False, max_rounds=1,
                               on_incomplete="raise")
    with pytest.raises(IncompleteFix):
        strict.run([(dt.dirty, SimulatedUser(dt.clean))])


def test_invalid_policies_rejected(hosp):
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema)
    with pytest.raises(ValueError, match="on_incomplete"):
        engine.fix_stream([], on_incomplete="ignore")
    with pytest.raises(ValueError, match="on_incomplete"):
        BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                          on_incomplete="drop")
    with pytest.raises(ValueError, match="chunk_size"):
        BatchRepairEngine(hosp.rules, hosp.master, hosp.schema, chunk_size=0)
    with pytest.raises(ValueError, match="concurrency"):
        BatchRepairEngine(hosp.rules, hosp.master, hosp.schema, concurrency=0)


# -- reporting ----------------------------------------------------------------


def test_batch_report_contents(hosp, hosp_dirty):
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                              chunk_size=10)
    report = batch.run_dirty(hosp_dirty).report
    assert isinstance(report, BatchReport)
    assert report.tuples == len(hosp_dirty)
    assert report.completed == len(hosp_dirty)
    assert report.elapsed > 0
    assert report.throughput > 0
    assert report.mean_rounds >= 1.0
    assert report.regions_precomputed >= 1
    assert report.suggestion_hits + report.suggestion_misses > 0
    payload = report.to_dict()
    assert payload["tuples"] == len(hosp_dirty)
    assert 0.0 <= payload["suggestion_cache"]["hit_rate"] <= 1.0
    assert "tuples/s" in report.describe()


def test_reports_are_per_run_deltas(hosp, hosp_dirty):
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema)
    first = batch.run_dirty(hosp_dirty).report
    second = batch.run_dirty(hosp_dirty).report
    assert second.tuples == first.tuples
    # Second run reuses the warmed shared caches but reports only its own
    # lookups; a fully-warmed run is all hits.
    assert second.chase_memo.misses == 0
    assert second.transfix_memo.misses == 0
    assert second.chase_memo.lookups <= first.chase_memo.lookups


def test_memo_stats_arithmetic():
    stats = MemoStats(hits=3, misses=1)
    assert stats.lookups == 4
    assert stats.hit_rate == 0.75
    delta = MemoStats(hits=5, misses=2).delta(MemoStats(hits=3, misses=1))
    assert (delta.hits, delta.misses) == (2, 1)
    assert MemoStats().hit_rate == 0.0


def test_result_to_relation(hosp, hosp_dirty):
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema)
    result = batch.run_dirty(hosp_dirty)
    relation = result.to_relation(hosp.schema)
    assert len(relation) == len(hosp_dirty)
    assert relation.rows == result.final_rows


# -- telemetry: worker stats, timings, provenance (PR 7) -----------------------


def test_thread_worker_stats_populated_at_concurrency_4(hosp, hosp_dirty):
    # Regression: the thread executor used to report empty worker_stats
    # while the process executor reported per-worker rows.
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                              concurrency=4, chunk_size=5)
    report = batch.run_dirty(hosp_dirty).report
    assert report.executor == "thread"
    assert report.worker_stats
    assert all(name.startswith("thread-") for name in report.worker_stats)
    assert 1 <= len(report.worker_stats) <= 4
    assert sum(s["tuples"] for s in report.worker_stats.values()) \
        == len(hosp_dirty)
    # Every chunk had at least one participating thread; threads sharing a
    # chunk each count it once.
    assert sum(s["chunks"] for s in report.worker_stats.values()) \
        >= report.chunks
    payload = report.to_dict()
    for stats in payload["worker_stats"].values():
        assert 0.0 <= stats["chase_hit_rate"] <= 1.0
        assert 0.0 <= stats["transfix_hit_rate"] <= 1.0
        assert "_chunk" not in stats  # internal epoch marker never leaks


def test_sequential_run_reports_no_worker_stats(hosp, hosp_dirty):
    report = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema) \
        .run_dirty(hosp_dirty).report
    assert report.worker_stats == {}


def test_report_timings_in_dict_and_describe(hosp, hosp_dirty):
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema)
    report = batch.run_dirty(hosp_dirty).report
    assert report.timings["region_precompute_s"] > 0.0
    assert report.timings["probe_warmup_s"] == 0.0  # threads never warm
    payload = report.to_dict()
    assert set(payload["timings"]) \
        == {"region_precompute_s", "probe_warmup_s"}
    assert "precompute" in report.describe()


def test_provenance_attributes_every_rule_fix(hosp, hosp_dirty):
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema)
    result = batch.run_dirty(hosp_dirty)
    provenance = result.provenance
    assert len(provenance) == len(result.sessions)
    attributed = 0
    for session, records in zip(result.sessions, provenance):
        assert set(records) == set(session.attrs_fixed_by_rules)
        for attr, record in records.items():
            assert record.attr == attr
            assert 0 <= record.rule_index < len(hosp.rules)
            assert hosp.rules[record.rule_index].name == record.rule_name
            # Last write wins: the surviving cell carries this value.
            assert session.final[attr] == record.value
            assert record.master_key  # the matched master probe key
            assert attr in record.describe()
            attributed += 1
    assert attributed > 0
    by_rule = result.report.fixes_by_rule
    assert sum(by_rule.values()) >= attributed
    assert by_rule == result.report.to_dict()["fixes_by_rule"]


def test_provenance_off_by_default_in_bare_certainfix(hosp, hosp_dirty):
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema)
    dt = hosp_dirty.tuples[0]
    session = engine.fix(dt.dirty, SimulatedUser(dt.clean))
    assert all(r.provenance == () for r in session.rounds)
