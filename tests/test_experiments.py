"""Experiment drivers: smoke runs at tiny scale, shape assertions."""

import pytest

from repro.experiments.config import ExperimentConfig, load_dataset, load_workload
from repro.experiments.figures import (
    ablation_transfix,
    fig9_interactions,
    fig10_tuple_recall,
    fig11_f_measure,
    table1_region_sizes,
)
from repro.experiments.runner import run_stream
from repro.experiments.tables import format_table

TINY_H = ExperimentConfig(dataset="hosp", master_size=150, input_size=30)
TINY_D = ExperimentConfig(dataset="dblp", master_size=150, input_size=30)


def test_load_dataset_respects_sizes():
    bundle = load_dataset(TINY_H)
    assert len(bundle.master) == 150
    assert load_dataset(TINY_H) is bundle  # memoized


def test_load_workload_matches_config():
    _, data = load_workload(TINY_H.with_(input_size=12))
    assert len(data) == 12


def test_unknown_dataset_rejected():
    with pytest.raises(ValueError, match="unknown dataset"):
        load_dataset(ExperimentConfig(dataset="nope"))


def test_run_stream_full_correction():
    bundle, data = load_workload(TINY_H)
    result = run_stream(bundle, data)
    metrics = result.final_metrics()
    assert metrics.recall_t == 1.0
    assert metrics.precision_a == 1.0
    assert result.mean_round_latency() > 0.0
    assert result.round_histogram()


def test_metrics_after_round_monotone_recall():
    bundle, data = load_workload(TINY_H)
    result = run_stream(bundle, data)
    recalls = [
        result.metrics_after_round(k).recall_t
        for k in range(1, result.max_rounds + 1)
    ]
    assert recalls == sorted(recalls)
    assert recalls[-1] == 1.0


def test_table1_shape():
    headers, rows = table1_region_sizes([TINY_H, TINY_D])
    table = dict((r[0], r[1:]) for r in rows)
    assert table["hosp"] == (2, 4)      # the paper's HOSP numbers
    assert table["dblp"][0] == 5        # the paper's DBLP CompCRegion
    assert table["dblp"][1] >= table["dblp"][0]


def test_fig9_recall_t_tracks_duplicate_rate():
    headers, rows = fig9_interactions(TINY_H, max_round=4)
    first_round_recall = rows[0][1]
    assert first_round_recall == pytest.approx(0.3, abs=0.2)
    assert rows[-1][1] == 1.0


def test_fig10_recall_monotone_in_duplicate_rate():
    config = TINY_H.with_(input_size=40)
    headers, rows = fig10_tuple_recall(config, "d%", rounds=(1,))
    k1 = [row[1] for row in rows]
    # Not strictly monotone at tiny sizes, but the span must rise.
    assert k1[-1] > k1[0]


def test_fig11_ours_beats_increp_at_high_noise():
    config = TINY_H.with_(input_size=40)
    headers, rows = fig11_f_measure(config, "n%", rounds=(4,))
    high_noise = rows[-1]
    ours, increp = high_noise[1], high_noise[2]
    assert ours > increp


def test_ablation_reports_three_variants():
    headers, rows = ablation_transfix(TINY_H)
    assert len(rows) == 3
    fixed = {row[2] for row in rows}
    assert len(fixed) == 1  # all variants fix the same attributes


def test_format_table_alignment():
    text = format_table(("x", "value"), [(1, 0.5), (10, 1.25)], "T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "0.500" in text and "1.250" in text
