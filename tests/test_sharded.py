"""ShardedStore coordinator behavior beyond the conformance contract.

The conformance kit (``tests/test_store_conformance.py``) already proves
ShardedStore is a lawful MasterStore over memory and remote shards; this
file pins the fleet-specific semantics: stable routing, scatter-gather
strictness, undecidable-key failure typing, bounded retry/backoff and
health accounting, offline resharding, and — the acceptance bar — a
hypothesis fuzz showing the coordinator over {1, 2, 3} shards is
bit-identical to a plain InMemoryStore under random interleavings of
probes, mutations, and repair runs.
"""

import itertools

import pytest

from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema
from repro.engine.sharded import (
    ShardedStore,
    ShardUnavailableError,
    reshard,
    shard_of,
)
from repro.engine.store import (
    InMemoryStore,
    StoreProtocolError,
    StoreUnavailableError,
)
from repro.engine.tuples import Row
from repro.repair.batch import BatchRepairEngine
from repro.repair.oracle import SimulatedUser

from store_conformance import conformance_rows, conformance_schema


def _fleet(n, schema=None, rows=()):
    schema = schema or conformance_schema()
    store = ShardedStore(
        [InMemoryStore(Relation(schema)) for _ in range(n)],
        route_attrs=("k",),
        rows=rows,
    )
    return store


# -- routing ------------------------------------------------------------------


def test_routing_is_stable_and_respects_value_equality():
    # equal Python values must land on the same shard regardless of type
    for n in (1, 2, 3, 7):
        assert shard_of((2,), n) == shard_of((2.0,), n)
        assert shard_of((True,), n) == shard_of((1,), n)
        assert 0 <= shard_of(("a", 3), n) < n
    # unstorable values route nowhere
    assert shard_of((object(),), 3) is None


def test_rows_land_on_their_hash_shard():
    schema = conformance_schema()
    store = _fleet(3, schema, rows=conformance_rows(schema))
    for index, shard in enumerate(store.shards):
        for row in shard:
            assert shard_of((row["k"],), 3) == index
    store.close()


def test_constructor_validation():
    schema = conformance_schema()
    with pytest.raises(ValueError, match="at least one shard"):
        ShardedStore([])
    other = RelationSchema("m", ["a", "b"])
    with pytest.raises(ValueError, match="schemas disagree"):
        ShardedStore([
            InMemoryStore(Relation(schema)),
            InMemoryStore(Relation(other)),
        ])
    with pytest.raises(KeyError, match="no attribute 'nope'"):
        ShardedStore(
            [InMemoryStore(Relation(schema))], route_attrs=("nope",)
        )


def test_routable_probe_asks_one_shard_broadcast_asks_all():
    schema = conformance_schema()
    store = _fleet(3, schema, rows=conformance_rows(schema))
    probes_before = [shard.probe_ref_calls for shard in store.shards]

    store.probe(("k", "v"), ("a", "x"))  # covers route_attrs: routable
    assert store.broadcast_probes == 0

    store.probe(("n",), (2,))  # cannot route: every shard asked
    assert store.broadcast_probes == 1
    del probes_before  # counters live on InMemoryStore.probe_ref only

    out = store.probe_many(("v", "n"), [("x", 1), ("y", 2)])
    assert store.broadcast_probes == 2
    assert out[("x", 1)] == store.probe(("v", "n"), ("x", 1))
    store.close()


def test_unstorable_keys_and_rows():
    store = _fleet(2)
    schema = store.schema
    assert store.probe(("k",), (object(),)) == ()
    assert store.probe_many(("k",), [(object(),)]) != {}
    with pytest.raises(TypeError, match="unstorable routing key"):
        store.insert(Row(schema, (object(), "x", 1)))
    assert store.delete(Row(schema, (object(), "x", 1))) is False
    store.close()


# -- scatter strictness and failure typing ------------------------------------


class _FlakyShard:
    """Delegates to a real shard, failing the first *fail* calls of the
    instrumented methods with StoreUnavailableError."""

    shares_storage_across_processes = False

    def __init__(self, real, fail):
        self._real = real
        self.fail = fail

    def __getattr__(self, name):
        return getattr(self._real, name)

    def __len__(self):
        return len(self._real)

    def __iter__(self):
        return iter(self._real)

    def _maybe_fail(self):
        if self.fail > 0:
            self.fail -= 1
            raise StoreUnavailableError("shard down (simulated)")

    def probe(self, attrs, key):
        self._maybe_fail()
        return self._real.probe(attrs, key)

    def probe_many(self, attrs, keys):
        self._maybe_fail()
        return self._real.probe_many(attrs, keys)

    def insert(self, row):
        self._maybe_fail()
        return self._real.insert(row)


def _flaky_fleet(fail, retries=3, backoff=0.001):
    schema = conformance_schema()
    inner = ShardedStore(
        [InMemoryStore(Relation(schema)) for _ in range(2)],
        route_attrs=("k",),
        rows=conformance_rows(schema),
    )
    shards = [_FlakyShard(s, fail) for s in inner.shards]
    return ShardedStore(
        shards, route_attrs=("k",),
        retries=retries, backoff=backoff, max_backoff=0.002,
    )


def test_transient_failure_is_ridden_out_and_accounted():
    store = _flaky_fleet(fail=2)
    rows = conformance_rows(conformance_schema())
    assert store.probe(("k",), ("a",)) == (rows[0], rows[2])
    health = store.health[shard_of(("a",), 2)]
    assert health.retries == 2
    assert health.total_failures == 2
    assert health.failures == 0  # consecutive count reset by success
    assert "simulated" in health.last_error
    info = store.shard_info()
    assert info["shards"] == 2 and info["route_attrs"] == ["k"]


def test_exhausted_retries_raise_typed_error_with_undecidable_keys():
    store = _flaky_fleet(fail=99, retries=1)
    with pytest.raises(ShardUnavailableError) as exc_info:
        store.probe_many(("k",), [("a",), ("b",), ("c",)])
    err = exc_info.value
    assert isinstance(err, StoreUnavailableError)
    assert err.shard in (0, 1)
    # the undecidable keys ride on the error — never resolved as ()
    assert err.keys and set(err.keys) <= {("a",), ("b",), ("c",)}
    assert "unavailable after 2 attempt(s)" in str(err)
    assert store.health[err.shard].retries >= 1


def test_mutations_are_never_replayed_by_the_coordinator():
    store = _flaky_fleet(fail=1)
    schema = conformance_schema()
    with pytest.raises(ShardUnavailableError, match="after 1 attempt"):
        store.insert(Row(schema, ("d", "z", 9)))
    target = shard_of(("d",), 2)
    assert store.health[target].retries == 0  # no blind insert replay
    # the shard is back up: the caller's own retry lands exactly once
    store.insert(Row(schema, ("d", "z", 9)))
    assert store.probe(("k",), ("d",)) == (Row(schema, ("d", "z", 9)),)


def test_lying_shard_fails_scatter_reconciliation():
    schema = conformance_schema()
    store = _fleet(2, schema, rows=conformance_rows(schema))
    victim = store.shards[shard_of(("a",), 2)]
    real = victim.probe_many
    victim.probe_many = lambda attrs, keys: dict(
        itertools.islice(real(attrs, keys).items(), 1)
    )
    with pytest.raises(StoreProtocolError, match="refusing to merge"):
        store.probe_many(("k",), [("a",), ("b",), ("c",), ("d",)])
    del victim.probe_many
    # nothing merged, nothing cached: full truth afterwards
    out = store.probe_many(("k",), [("a",), ("b",)])
    assert out[("a",)] == store.probe(("k",), ("a",))
    store.close()


# -- resharding ---------------------------------------------------------------


def test_reshard_split_preserves_rows_order_and_placement():
    schema = conformance_schema()
    source = _fleet(2, schema, rows=conformance_rows(schema))
    source.insert(Row(schema, ("d", "z", 9)))
    wider = reshard(
        source, [InMemoryStore(Relation(schema)) for _ in range(4)]
    )
    assert list(wider) == list(source)
    assert len(wider.shards) == 4
    for index, shard in enumerate(wider.shards):
        for row in shard:
            assert shard_of((row["k"],), 4) == index
    # merge back down to a single-shard fleet
    narrow = reshard(wider, [InMemoryStore(Relation(schema))])
    assert list(narrow) == list(source)
    source.close(), wider.close(), narrow.close()


def test_reshard_refuses_nonempty_destinations():
    schema = conformance_schema()
    source = _fleet(2, schema, rows=conformance_rows(schema))
    dirty = InMemoryStore(Relation(schema, conformance_rows(schema)))
    with pytest.raises(ValueError, match="must be empty"):
        reshard(source, [dirty])
    source.close()


def test_reshard_accepts_relation_and_iterable_sources():
    schema = conformance_schema()
    rows = conformance_rows(schema)
    via_relation = reshard(
        Relation(schema, rows),
        [InMemoryStore(Relation(schema)) for _ in range(2)],
        route_attrs=("k",),
    )
    via_rows = reshard(
        rows, [InMemoryStore(Relation(schema)) for _ in range(2)],
        route_attrs=("k",),
    )
    assert list(via_relation) == rows == list(via_rows)


# -- composite versioning ------------------------------------------------------


def test_composite_version_is_sum_of_shard_versions():
    schema = conformance_schema()
    store = _fleet(3, schema, rows=conformance_rows(schema))
    assert store.version == sum(s.version for s in store.shards)
    store.insert(Row(schema, ("d", "z", 9)))
    assert store.version == sum(s.version for s in store.shards)
    store.close()


def test_foreign_shard_mutations_fold_into_composite_journal():
    schema = conformance_schema()
    store = _fleet(2, schema, rows=conformance_rows(schema))
    v0 = store.version
    extra = Row(schema, ("d", "z", 9))
    target = store.shards[shard_of(("d",), 2)]
    target.insert(extra)  # behind the coordinator's back
    assert store.version == v0 + 1
    deltas = store.deltas_since(v0)
    assert [(d.op, d.values) for d in deltas] == [
        ("insert", ("d", "z", 9))
    ]
    assert store.probe(("k",), ("d",)) == (extra,)
    store.close()


def test_shard_journal_gap_gaps_the_composite_journal():
    schema = conformance_schema()
    store = ShardedStore(
        [InMemoryStore(Relation(schema), delta_window=4) for _ in range(2)],
        route_attrs=("k",),
        rows=conformance_rows(schema),
    )
    v0 = store.version
    target = store.shards[shard_of(("g0",), 2)]
    # overflow one shard's journal behind the coordinator's back
    for i in range(6):
        target.insert(Row(schema, ("g0", f"w{i}", i)))
    assert store.deltas_since(v0) is None  # full-drop fallback preserved
    assert store.version == v0 + 6
    # iteration still serves every row (shard-major after degradation)
    assert len(list(store)) == len(store)
    store.close()


# -- CLI surface --------------------------------------------------------------


def _hash_partition(relation, count):
    """Partition a relation's rows the way the fleet routing hash does,
    on the schema's first attribute (the CLI default)."""
    parts = [[] for _ in range(count)]
    for row in relation.iter_rows():
        parts[shard_of((row.values[0],), count)].append(row)
    return parts


def test_sharded_cli_batch_repair_matches_memory(tmp_path, hosp, hosp_dirty):
    """--master-backend sharded --shard-urls against two live shard
    servers writes the same repaired CSV as the memory backend."""
    from repro.cli import main as cli_main
    from repro.engine.csvio import relation_to_csv
    from repro.engine.remote import MasterServer
    from repro.io import dumps as rules_dumps

    relation_to_csv(hosp.master, tmp_path / "master.csv")
    (tmp_path / "rules.json").write_text(rules_dumps(hosp.rules) + "\n")
    data = list(hosp_dirty)[:10]
    relation_to_csv(Relation(hosp.schema, (d.dirty for d in data)),
                    tmp_path / "dirty.csv")
    relation_to_csv(Relation(hosp.schema, (d.clean for d in data)),
                    tmp_path / "clean.csv")

    common = [
        "batch-repair", "--rules", str(tmp_path / "rules.json"),
        "--input", str(tmp_path / "dirty.csv"),
        "--clean", str(tmp_path / "clean.csv"),
    ]
    assert cli_main(common + [
        "--master", str(tmp_path / "master.csv"),
        "--output", str(tmp_path / "fixed_memory.csv"),
    ]) == 0

    parts = _hash_partition(hosp.master, 2)
    backings = [
        InMemoryStore(Relation(hosp.schema, part)) for part in parts
    ]
    with MasterServer(backings[0]) as s0, MasterServer(backings[1]) as s1:
        assert cli_main(common + [
            "--master-backend", "sharded",
            "--shard-urls", s0.url, s1.url,
            "--output", str(tmp_path / "fixed_sharded.csv"),
            "--report", str(tmp_path / "report.json"),
        ]) == 0

    assert (tmp_path / "fixed_sharded.csv").read_text() == \
        (tmp_path / "fixed_memory.csv").read_text()

    import json
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["connection"]["shards"] == 2
    assert len(report["connection"]["per_shard"]) == 2
    assert "probe_cache" in report


def test_sharded_cli_argument_validation(tmp_path, capsys):
    from repro.cli import main as cli_main

    (tmp_path / "rules.json").write_text("[]\n")
    base = ["batch-repair", "--rules", str(tmp_path / "rules.json"),
            "--input", "x.csv", "--clean", "y.csv"]
    assert cli_main(base + ["--master-backend", "sharded"]) == 2
    assert "--shard-urls" in capsys.readouterr().err
    assert cli_main(base + ["--master-backend", "sharded",
                            "--shard-urls", "http://127.0.0.1:1",
                            "--master", "m.csv"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_serve_master_shard_filter_partitions_the_csv(tmp_path, hosp):
    """`serve-master --shard i/N` loads exactly the rows the routing hash
    places on shard i — together the N servers hold the master once."""
    from repro.cli import _load_master_store, build_parser
    from repro.engine.csvio import relation_from_csv, relation_to_csv

    relation_to_csv(hosp.master, tmp_path / "master.csv")
    parser = build_parser()
    loaded = []
    for i in range(2):
        args = parser.parse_args([
            "serve-master", "--master", str(tmp_path / "master.csv"),
            "--shard", f"{i}/2",
        ])
        loaded.append(_load_master_store(args))
    # compare against partitioning the same CSV load (the CSV round-trip
    # stringifies typed cells; routing happens on the loaded values)
    expected = _hash_partition(
        relation_from_csv(str(tmp_path / "master.csv")), 2
    )
    for part, relation in zip(expected, loaded):
        assert [tuple(r.values) for r in relation.iter_rows()] == \
            [tuple(r.values) for r in part]
    total = sum(len(list(r.iter_rows())) for r in loaded)
    assert total == len(list(hosp.master.iter_rows()))

    with pytest.raises(ValueError, match="--shard must look like i/N"):
        args = parser.parse_args([
            "serve-master", "--master", str(tmp_path / "master.csv"),
            "--shard", "nope",
        ])
        _load_master_store(args)
    with pytest.raises(ValueError, match="out of range"):
        args = parser.parse_args([
            "serve-master", "--master", str(tmp_path / "master.csv"),
            "--shard", "2/2",
        ])
        _load_master_store(args)


# -- fuzz: fleet ≡ single store ------------------------------------------------


def test_hypothesis_sharded_vs_memory_interleavings():
    """Property test (acceptance bar): ShardedStore over {1, 2, 3} memory
    shards is bit-identical to a plain InMemoryStore — fix outputs and
    version observations — under random probe / insert / delete / update
    interleavings driven (and shrunk) by hypothesis."""
    hypothesis = pytest.importorskip("hypothesis")
    st = hypothesis.strategies

    keys = [f"k{i}" for i in range(5)]

    def tiny_bundle():
        schema = RelationSchema("T", ["key", "val"])
        rules = [EditingRule(("key",), ("key",), "val", "val",
                             name="key->val")]
        rows = [Row(schema, ("k1", "v1")), Row(schema, ("k2", "v2"))]
        return schema, rules, rows

    @hypothesis.settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[hypothesis.HealthCheck.too_slow,
                               hypothesis.HealthCheck.data_too_large],
    )
    @hypothesis.given(data=st.data())
    def run(data):
        schema, rules, rows = tiny_bundle()
        stores = {"memory": InMemoryStore(Relation(schema, list(rows)))}
        for n in (1, 2, 3):
            stores[f"sharded{n}"] = ShardedStore(
                [InMemoryStore(Relation(schema)) for _ in range(n)],
                route_attrs=("key",),
                rows=list(rows),
            )
        engines = {
            name: BatchRepairEngine(rules, store, schema, use_bdd=False)
            for name, store in stores.items()
        }
        known = list(rows)
        next_id = [0]

        def everywhere(op, *args):
            results = {n: getattr(s, op)(*args) for n, s in stores.items()}
            assert len(set(map(bool, results.values()))) == 1
            return results["memory"]

        def do_insert():
            key = data.draw(st.sampled_from(keys), label="insert key")
            row = Row(schema, (key, f"v{next_id[0]}"))
            next_id[0] += 1
            # unique keys per master, or the rule hits a MasterConflict
            for existing in list(known):
                if existing["key"] == key:
                    assert everywhere("delete", existing)
                    known.remove(existing)
            everywhere("insert", row)
            known.append(row)

        def do_delete():
            if len(known) <= 1:
                return
            victim = known.pop(
                data.draw(st.integers(0, len(known) - 1), label="victim")
            )
            assert everywhere("delete", victim)

        def do_update():
            if not known:
                return
            index = data.draw(st.integers(0, len(known) - 1),
                              label="update index")
            old = known[index]
            new = Row(schema, (old["key"], f"v{next_id[0]}"))
            next_id[0] += 1
            assert everywhere("update", old, new)
            known[index] = new

        def do_probe():
            key = data.draw(st.sampled_from(keys), label="probe key")
            expected = stores["memory"].probe(("key",), (key,))
            for name, store in stores.items():
                assert store.probe(("key",), (key,)) == expected, name
            many = stores["memory"].probe_many(("key",), [(k,) for k in keys])
            for name, store in stores.items():
                assert store.probe_many(
                    ("key",), [(k,) for k in keys]
                ) == many, name

        actions = {"insert": do_insert, "delete": do_delete,
                   "update": do_update, "probe": do_probe}
        for _ in range(data.draw(st.integers(2, 8), label="ops")):
            before = {n: s.version for n, s in stores.items()}
            actions[data.draw(st.sampled_from(sorted(actions)),
                              label="action")]()
            # version observations move in lockstep across all backends
            moved = {n: s.version > before[n] for n, s in stores.items()}
            assert len(set(moved.values())) == 1

            if not known:
                continue
            target = known[data.draw(
                st.integers(0, len(known) - 1), label="target")]
            dirty = Row(schema, (target["key"], "dirty"))
            clean = Row(schema, (target["key"], target["val"]))
            finals = {
                name: engine.run(
                    [(dirty, SimulatedUser(clean))]
                ).sessions[0].final
                for name, engine in engines.items()
            }
            assert all(final == clean for final in finals.values()), finals
        reference = list(stores["memory"])
        for name, store in stores.items():
            assert list(store) == reference, name

    run()
