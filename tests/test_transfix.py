"""Procedure TransFix (Fig. 5) and its ablation variants."""

import random

import pytest

from repro.analysis.dependency_graph import DependencyGraph
from repro.core.patterns import PatternTuple, neq
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema
from repro.engine.tuples import Row
from repro.engine.values import NULL, UNKNOWN
from repro.repair.transfix import MasterConflict, transfix, transfix_naive


def _setup(master_rows, rules_spec):
    r = RelationSchema("R", [(a, INT) for a in "abcd"])
    rm = RelationSchema("Rm", [(a, INT) for a in "wxyz"])
    master = Relation(rm)
    for row in master_rows:
        master.insert(row)
    rules = [
        EditingRule(lhs, lhs_m, rhs, rhs_m, PatternTuple(pattern or {}),
                    name=f"r{i}")
        for i, (lhs, lhs_m, rhs, rhs_m, pattern) in enumerate(rules_spec)
    ]
    return r, master, rules


CHAIN = [
    (("a",), ("w",), "b", "x", None),
    (("b",), ("x",), "c", "y", None),
    (("c",), ("y",), "d", "z", None),
]


def test_transfix_chains_through_dependency_graph():
    r, master, rules = _setup([(1, 2, 3, 4)], CHAIN)
    t = Row(r, [1, 0, 0, 0])
    result = transfix(t, {"a"}, rules, master)
    assert result.row.values == (1, 2, 3, 4)
    assert result.validated == {"a", "b", "c", "d"}
    assert result.fixed_attrs == ("b", "c", "d")


def test_transfix_validated_attrs_protected():
    r, master, rules = _setup([(1, 2, 3, 4)], CHAIN)
    t = Row(r, [1, 99, 0, 0])
    result = transfix(t, {"a", "b"}, rules, master)
    assert result.row["b"] == 99          # user-validated, untouched
    assert result.row["c"] == 0           # b = 99 matches no master key
    assert result.validated == {"a", "b"}


def test_transfix_stops_at_missing_master_match():
    r, master, rules = _setup([(9, 2, 3, 4)], CHAIN)
    t = Row(r, [1, 0, 0, 0])
    result = transfix(t, {"a"}, rules, master)
    assert result.row == t
    assert result.applied == []


def test_transfix_pattern_gate():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", {"a": 7})],
    )
    result = transfix(Row(r, [1, 0, 0, 0]), {"a"}, rules, master)
    assert result.applied == []


def test_transfix_nil_guard_blocks_null_keys():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", {"a": __import__("repro.core.patterns", fromlist=["neq"]).neq(NULL)})],
    )
    result = transfix(Row(r, [NULL, 0, 0, 0]), {"a"}, rules, master)
    assert result.applied == []


def test_transfix_detects_master_disagreement():
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    with pytest.raises(MasterConflict):
        transfix(Row(r, [1, 0, 0, 0]), {"a"}, rules, master)


def test_transfix_agreeing_duplicates_are_fine():
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 2, 9, 9)],
        [(("a",), ("w",), "b", "x", None)],
    )
    result = transfix(Row(r, [1, 0, 0, 0]), {"a"}, rules, master)
    assert result.row["b"] == 2


def test_transfix_reuses_prebuilt_graph():
    r, master, rules = _setup([(1, 2, 3, 4)], CHAIN)
    graph = DependencyGraph(rules)
    t = Row(r, [1, 0, 0, 0])
    r1 = transfix(t, {"a"}, rules, master, graph)
    r2 = transfix(t, {"a"}, rules, master, graph)
    assert r1.row == r2.row


def test_transfix_equals_naive_fixpoint():
    """Ablation A1: dependency-graph order and naive rescanning agree."""
    r, master, rules = _setup([(1, 2, 3, 4)], CHAIN)
    t = Row(r, [1, 0, 0, 0])
    fast = transfix(t, {"a"}, rules, master)
    naive = transfix_naive(t, {"a"}, rules, master)
    assert fast.row == naive.row
    assert fast.validated == naive.validated


def test_transfix_scan_equals_index():
    """Ablation A2: lookups via scan produce identical fixes."""
    r, master, rules = _setup([(1, 2, 3, 4)], CHAIN)
    t = Row(r, [1, 0, 0, 0])
    indexed = transfix(t, {"a"}, rules, master, use_index=True)
    scanned = transfix(t, {"a"}, rules, master, use_index=False)
    assert indexed.row == scanned.row


def _assert_equivalent(t, validated, rules, master):
    """transfix and transfix_naive agree on outcome or on the conflict."""
    outcomes = []
    for fn in (transfix, transfix_naive):
        try:
            outcomes.append(("ok", fn(t, validated, rules, master)))
        except MasterConflict:
            outcomes.append(("conflict", None))
    (k1, r1), (k2, r2) = outcomes
    assert k1 == k2
    if k1 == "ok":
        assert r1.row == r2.row
        assert r1.validated == r2.validated
        assert set(r1.fixed_attrs) == set(r2.fixed_attrs)


def test_transfix_equals_naive_under_master_guard():
    """Guards filter master matches identically on both paths: the
    disagreeing master tuple is invisible, so no conflict and the guarded
    value is used."""
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 0, 4)],       # both match key w=1
        [(("a",), ("w",), "b", "x", None)],
    )
    rules[0].master_guard = PatternTuple({"y": neq(0)})
    _assert_equivalent(Row(r, [1, 0, 0, 0]), {"a"}, rules, master)
    result = transfix(Row(r, [1, 0, 0, 0]), {"a"}, rules, master)
    assert result.row["b"] == 2             # the y=0 tuple was filtered

    # A guard nothing satisfies: the rule never fires on either path.
    rules[0].master_guard = PatternTuple({"z": 99})
    _assert_equivalent(Row(r, [1, 0, 0, 0]), {"a"}, rules, master)
    assert transfix(Row(r, [1, 0, 0, 0]), {"a"}, rules, master).applied == []


def test_transfix_equals_naive_with_unknown_keys():
    """UNKNOWN key values block master probes on both paths, including
    mid-chain (a fixed attribute un-blocks its dependents identically)."""
    r, master, rules = _setup([(1, 2, 3, 4)], CHAIN)
    for values, validated in [
        ([UNKNOWN, 0, 0, 0], {"a"}),
        ([1, UNKNOWN, 0, 0], {"a", "b"}),     # b validated but UNKNOWN
        ([UNKNOWN, 2, UNKNOWN, 0], {"b"}),    # chain resumes from b
    ]:
        _assert_equivalent(Row(r, values), validated, rules, master)
    blocked = transfix(Row(r, [UNKNOWN, 0, 0, 0]), {"a"}, rules, master)
    assert blocked.applied == []
    resumed = transfix(Row(r, [UNKNOWN, 2, UNKNOWN, 0]), {"b"}, rules, master)
    assert resumed.row["c"] == 3 and resumed.row["d"] == 4


def test_transfix_equals_naive_randomized(hosp):
    """Fuzzed equivalence on HOSP: corrupted tuples with NULL/UNKNOWN
    injections and random validated sets (guards model ``≠ NULL``)."""
    rng = random.Random(20100713)
    attrs = hosp.schema.attributes
    rows = hosp.master.rows
    for _ in range(25):
        base = rows[rng.randrange(len(rows))]
        values = {a: base[a] for a in attrs}
        for a in attrs:
            roll = rng.random()
            if roll < 0.12:
                values[a] = NULL
            elif roll < 0.2:
                values[a] = UNKNOWN
            elif roll < 0.3:
                donor = rows[rng.randrange(len(rows))]
                values[a] = donor[a]
        validated = {a for a in attrs if rng.random() < 0.4}
        _assert_equivalent(
            Row(hosp.schema, values), validated, hosp.rules, hosp.master
        )


def test_transfix_example12_trace(example):
    """Example 12: fixing t1 from Z = {zip} walks φ1, φ2, φ3."""
    t1 = example.inputs["t1"]
    result = transfix(t1, {"zip"}, example.rules, example.master)
    assert result.row["AC"] == "131"
    assert result.row["str"] == "51 Elm Row"
    assert result.row["city"] == "Edi"
    assert result.validated >= {"zip", "AC", "str", "city"}
    applied_names = {rule.name for rule, _ in result.applied}
    assert {"phi1", "phi2", "phi3"} <= applied_names
    # φ4/φ5 need phn/type validated - not reachable from zip alone.
    assert result.row["FN"] == "Bob"


def test_transfix_on_hosp_master_row(hosp):
    """From {id, mCode} every other attribute of a master tuple is fixed."""
    source = hosp.master.first()
    blank = Row(hosp.schema, {
        a: (source[a] if a in ("id", "mCode") else NULL)
        for a in hosp.schema.attributes
    })
    result = transfix(blank, {"id", "mCode"}, hosp.rules, hosp.master)
    assert result.validated == set(hosp.schema.attributes)
    assert result.row == Row(hosp.schema, {a: source[a] for a in hosp.schema.attributes})
