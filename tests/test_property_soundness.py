"""Property-based soundness tests on the higher-level machinery.

* every rule survives a serialization round trip unchanged;
* every region emitted by the region search is certified by the formal
  coverage checker (the soundness chain CertainFix relies on);
* batch database repair never writes a value that the chase did not certify.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.coverage import is_certain_region
from repro.core.patterns import ANY, Const, NotConst, PatternTuple
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema
from repro.engine.values import NULL
from repro.io import rule_from_dict, rule_to_dict
from repro.repair.region_search import comp_c_region

R_ATTRS = ("a", "b", "c", "d")
M_ATTRS = ("w", "x", "y", "z")

scalars = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.text(alphabet="abc0", max_size=4),
    st.just(NULL),
)
pattern_values = st.one_of(
    st.builds(Const, scalars), st.builds(NotConst, scalars), st.just(ANY)
)


@st.composite
def random_rules(draw):
    lhs_size = draw(st.integers(min_value=1, max_value=3))
    lhs = tuple(draw(st.permutations(R_ATTRS))[:lhs_size])
    rhs = draw(st.sampled_from([a for a in R_ATTRS if a not in lhs]))
    lhs_m = tuple(draw(st.sampled_from(M_ATTRS)) for _ in lhs)
    rhs_m = draw(st.sampled_from(M_ATTRS))
    pattern_attrs = draw(st.lists(
        st.sampled_from([a for a in R_ATTRS if a != rhs]),
        unique=True, max_size=2,
    ))
    pattern = PatternTuple(
        {a: draw(pattern_values) for a in pattern_attrs}
    )
    guard = PatternTuple(
        {m: draw(pattern_values) for m in draw(st.lists(
            st.sampled_from(M_ATTRS), unique=True, max_size=1))}
    )
    return EditingRule(lhs, lhs_m, rhs, rhs_m, pattern,
                       name=draw(st.text(alphabet="rn", min_size=1,
                                         max_size=6)),
                       master_guard=guard)


@settings(max_examples=200, deadline=None)
@given(random_rules())
def test_rule_serialization_roundtrip(rule):
    back = rule_from_dict(rule_to_dict(rule))
    assert back == rule
    assert back.name == rule.name


@st.composite
def small_worlds(draw):
    """A random master relation + a chain-ish rule set over it."""
    master = Relation(RelationSchema("Rm", [(m, INT) for m in M_ATTRS]))
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        master.insert([draw(st.integers(0, 2)) for _ in M_ATTRS])
    rules = []
    for i in range(draw(st.integers(min_value=1, max_value=5))):
        lhs_size = draw(st.integers(min_value=1, max_value=2))
        lhs = tuple(draw(st.permutations(R_ATTRS))[:lhs_size])
        rhs = draw(st.sampled_from([a for a in R_ATTRS if a not in lhs]))
        lhs_m = tuple(draw(st.sampled_from(M_ATTRS)) for _ in lhs)
        rhs_m = draw(st.sampled_from(M_ATTRS))
        rules.append(EditingRule(lhs, lhs_m, rhs, rhs_m, PatternTuple({}),
                                 name=f"r{i}"))
    return master, rules


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_worlds())
def test_region_search_emits_only_certified_regions(world):
    master, rules = world
    schema = RelationSchema("R", [(a, INT) for a in R_ATTRS])
    candidates = comp_c_region(rules, master, schema, max_regions=3,
                               validate_patterns=8)
    for candidate in candidates:
        sample = candidate.region.restrict_tableau(
            candidate.region.tableau.patterns[:2]
        )
        assert is_certain_region(rules, master, sample, schema), (
            rules, master.rows, candidate.region,
        )


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_worlds(), st.integers(min_value=0, max_value=1000))
def test_database_repair_changes_only_chase_certified_values(world, seed):
    from repro.core.fixes import chase
    from repro.repair.database_repair import repair_database

    master, rules = world
    schema = RelationSchema("R", [(a, INT) for a in R_ATTRS])
    rng = random.Random(seed)
    relation = Relation(schema)
    for _ in range(5):
        relation.insert([rng.randint(0, 2) for _ in R_ATTRS])
    regions = comp_c_region(rules, master, schema, max_regions=2,
                            validate_patterns=8)
    if not regions:
        return
    repaired, report = repair_database(
        relation, rules, master, schema, regions=regions
    )
    assert report.total == len(relation)
    for before, after in zip(relation, repaired):
        changed = [a for a in R_ATTRS if before[a] != after[a]]
        if not changed:
            continue
        # Every change must be reproduced by a certain chase from some
        # region's Z on the original tuple.
        certified = False
        for candidate in regions:
            out = chase(before, candidate.region.attrs, rules, master)
            if out.unique and out.covered >= set(R_ATTRS):
                if all(out.assignment[a] == after[a] for a in R_ATTRS):
                    certified = True
                    break
        assert certified, (before, after, rules, master.rows)
