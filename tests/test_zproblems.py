"""Z-validating, Z-counting, Z-minimum (Sect. 4.2)."""

import pytest

from repro.analysis.closure import attribute_closure, mandatory_attrs, one_hop_cover
from repro.analysis.zproblems import (
    attr_master_options,
    attr_pattern_constants,
    master_projected_patterns,
    z_counting,
    z_minimum_exact,
    z_minimum_greedy,
    z_validating,
)
from repro.core.patterns import PatternTuple, neq
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema


def _setup(master_rows, rules_spec):
    r = RelationSchema("R", [(a, INT) for a in "abcd"])
    rm = RelationSchema("Rm", [(a, INT) for a in "wxyz"])
    master = Relation(rm)
    for row in master_rows:
        master.insert(row)
    rules = [
        EditingRule(lhs, lhs_m, rhs, rhs_m, PatternTuple(pattern or {}),
                    name=f"r{i}")
        for i, (lhs, lhs_m, rhs, rhs_m, pattern) in enumerate(rules_spec)
    ]
    return r, master, rules


CHAIN = [
    (("a",), ("w",), "b", "x", None),
    (("b",), ("x",), "c", "y", None),
    (("c",), ("y",), "d", "z", None),
]


def test_attribute_closure_chains():
    _, _, rules = _setup([(1, 2, 3, 4)], CHAIN)
    assert attribute_closure({"a"}, rules) == {"a", "b", "c", "d"}
    assert attribute_closure({"b"}, rules) == {"b", "c", "d"}
    assert attribute_closure({"d"}, rules) == {"d"}


def test_one_hop_cover_is_myopic():
    _, _, rules = _setup([(1, 2, 3, 4)], CHAIN)
    assert one_hop_cover("a", rules) == {"b"}  # no chaining


def test_mandatory_attrs():
    r, _, rules = _setup([(1, 2, 3, 4)], CHAIN)
    assert mandatory_attrs(r, rules) == {"a"}


def test_attr_master_options_and_constants():
    _, _, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", {"a": 7, "c": neq(0)})],
    )
    assert attr_master_options("a", rules) == ("w",)
    assert attr_pattern_constants("a", rules) == (7,)
    assert attr_pattern_constants("c", rules) == ()  # negations excluded


def test_master_projected_patterns_shape():
    _, master, rules = _setup([(1, 2, 3, 4), (5, 6, 7, 8)], CHAIN)
    patterns = master_projected_patterns(("a",), rules, master)
    values = sorted(p["a"].value for p in patterns)
    assert values == [1, 5]


def test_master_projected_patterns_wildcard_for_unruled_attr():
    _, master, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    patterns = master_projected_patterns(("a", "d"), rules, master)
    assert patterns[0]["d"].is_wildcard


def test_z_validating_finds_witness():
    r, master, rules = _setup([(1, 2, 3, 4)], CHAIN)
    witness = z_validating(rules, master, ("a",), r)
    assert witness is not None
    assert witness["a"].value == 1


def test_z_validating_prunes_by_closure():
    r, master, rules = _setup([(1, 2, 3, 4)], CHAIN[:2])  # d unreachable
    assert z_validating(rules, master, ("a",), r) is None


def test_z_validating_none_when_no_master_support():
    r, master, rules = _setup([], CHAIN)
    assert z_validating(rules, master, ("a",), r) is None


def test_z_counting_counts_constants():
    r, master, rules = _setup([(1, 2, 3, 4), (5, 6, 7, 8)], CHAIN)
    # Two master keys work; negations and fresh values fail coverage.
    assert z_counting(rules, master, ("a",), r) == 2


def test_z_counting_zero_without_closure():
    r, master, rules = _setup([(1, 2, 3, 4)], CHAIN[:2])
    assert z_counting(rules, master, ("a",), r) == 0


def test_z_counting_budget():
    rows = [(i, i, i, i) for i in range(30)]
    r, master, rules = _setup(rows, CHAIN)
    with pytest.raises(RuntimeError, match="#P-complete"):
        z_counting(rules, master, ("a", "b", "c", "d"), r, max_candidates=10)


def test_z_minimum_exact_finds_smallest():
    r, master, rules = _setup([(1, 2, 3, 4)], CHAIN)
    z, witness = z_minimum_exact(rules, master, r)
    assert z == ("a",)
    assert witness is not None


def test_z_minimum_exact_includes_mandatory():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
        ],
    )
    z, _ = z_minimum_exact(rules, master, r)
    assert set(z) == {"a", "d"}


def test_z_minimum_with_empty_master_degenerates_to_full_z():
    """With no master data nothing is fixable: the minimum certain region
    asks the user to validate every attribute (Z = R is trivially certain)."""
    r, master, rules = _setup([], CHAIN)
    z, _ = z_minimum_exact(rules, master, r)
    assert set(z) == {"a", "b", "c", "d"}


def test_z_minimum_greedy_upper_bounds_exact():
    r, master, rules = _setup([(1, 2, 3, 4)], CHAIN)
    exact = z_minimum_exact(rules, master, r)
    greedy = z_minimum_greedy(rules, master, r)
    assert greedy is not None
    assert len(greedy[0]) >= len(exact[0])


def test_z_minimum_on_hosp(hosp):
    """The paper's headline: HOSP has a certain region with |Z| = 2."""
    z, witness = z_minimum_greedy(hosp.rules, hosp.master, hosp.schema)
    assert set(z) == {"id", "mCode"}
    assert witness is not None
