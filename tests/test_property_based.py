"""Property-based tests (Hypothesis) on the core invariants.

The headline property is chase confluence: the PTIME batched checker of
:func:`repro.core.fixes.chase` must agree with the exhaustive order-exploring
chase on arbitrary small instances — this validates the exact step-(g)
strengthening documented in DESIGN.md §4.1.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.chase import explore_fixes
from repro.analysis.closure import attribute_closure
from repro.constraints.distance import levenshtein
from repro.core.fixes import chase
from repro.core.patterns import ANY, Const, NotConst, PatternTuple
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema
from repro.engine.values import UNKNOWN

R_ATTRS = ("a", "b", "c", "d")
M_ATTRS = ("w", "x", "y", "z")

values = st.integers(min_value=0, max_value=2)


@st.composite
def instances(draw):
    """A random small (Σ, Dm, Z, t) instance."""
    master_rows = draw(
        st.lists(st.tuples(values, values, values, values), min_size=0,
                 max_size=4)
    )
    num_rules = draw(st.integers(min_value=1, max_value=6))
    rules = []
    for i in range(num_rules):
        lhs_size = draw(st.integers(min_value=1, max_value=2))
        lhs = tuple(draw(st.permutations(R_ATTRS))[:lhs_size])
        rhs = draw(st.sampled_from([a for a in R_ATTRS if a not in lhs]))
        lhs_m = tuple(
            draw(st.sampled_from(M_ATTRS)) for _ in lhs
        )
        rhs_m = draw(st.sampled_from(M_ATTRS))
        pattern = {}
        if draw(st.booleans()):
            pattern_attr = draw(st.sampled_from(R_ATTRS))
            if pattern_attr != rhs:
                pattern[pattern_attr] = draw(values)
        rules.append(
            EditingRule(lhs, lhs_m, rhs, rhs_m, PatternTuple(pattern),
                        name=f"r{i}")
        )
    z_size = draw(st.integers(min_value=1, max_value=4))
    z = tuple(draw(st.permutations(R_ATTRS))[:z_size])
    t = {attr: draw(values) for attr in z}
    master = Relation(RelationSchema("Rm", [(a, INT) for a in M_ATTRS]))
    for row in master_rows:
        master.insert(row)
    return master, rules, z, t


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(instances())
def test_batched_chase_agrees_with_exhaustive_exploration(instance):
    master, rules, z, t = instance
    batched = chase(t, z, rules, master)
    explored = explore_fixes(t, z, rules, master, max_states=20_000)
    assert batched.unique == explored.unique
    if batched.unique:
        (final,) = explored.final_assignments
        for attr in batched.covered:
            if batched.assignment[attr] is not UNKNOWN:
                assert final[attr] == batched.assignment[attr]


@settings(max_examples=100, deadline=None)
@given(instances())
def test_chase_never_touches_validated_attrs(instance):
    master, rules, z, t = instance
    out = chase(t, z, rules, master)
    for attr in z:
        assert out.assignment[attr] == t[attr]


@settings(max_examples=100, deadline=None)
@given(instances())
def test_chase_covered_contains_z_and_is_closure_bounded(instance):
    master, rules, z, t = instance
    out = chase(t, z, rules, master)
    assert set(z) <= out.covered
    assert out.covered <= attribute_closure(z, rules)


@settings(max_examples=100, deadline=None)
@given(instances())
def test_chase_is_idempotent_on_its_fixpoint(instance):
    master, rules, z, t = instance
    out = chase(t, z, rules, master)
    if not out.unique:
        return
    again = chase(dict(out.assignment), out.covered, rules, master)
    assert again.unique
    assert again.assignment == out.assignment
    assert again.covered == out.covered


# -- pattern properties -------------------------------------------------------


pattern_values = st.one_of(
    st.builds(Const, values),
    st.builds(NotConst, values),
    st.just(ANY),
)


@settings(max_examples=200, deadline=None)
@given(
    st.dictionaries(st.sampled_from(R_ATTRS), pattern_values, min_size=1),
    st.tuples(values, values, values, values),
)
def test_normalization_preserves_matching(conditions, row_values):
    schema = RelationSchema("R", [(a, INT) for a in R_ATTRS])
    row = dict(zip(R_ATTRS, row_values))
    tp = PatternTuple(conditions)
    assert tp.matches_values(row) == tp.normalized().matches_values(row)


@settings(max_examples=200, deadline=None)
@given(
    st.dictionaries(st.sampled_from(R_ATTRS), pattern_values, min_size=1),
    st.tuples(values, values, values, values),
)
def test_restrict_weakens_matching(conditions, row_values):
    row = dict(zip(R_ATTRS, row_values))
    tp = PatternTuple(conditions)
    restricted = tp.restrict(list(tp.attrs)[:1])
    if tp.matches_values(row):
        assert restricted.matches_values(row)


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.sampled_from(R_ATTRS), pattern_values, min_size=1))
def test_region_extension_only_adds_wildcards(conditions):
    tp = PatternTuple(conditions)
    region = Region(tuple(tp.attrs), None)
    region.tableau.add(tp)
    free = [a for a in R_ATTRS if a not in tp.attrs]
    if not free:
        return
    rule = EditingRule(
        (tp.attrs[0],), ("w",), free[0], "x", PatternTuple({})
    )
    extended = region.extend(rule)
    assert extended.attrs == tuple(tp.attrs) + (free[0],)
    assert extended.tableau.patterns[0][free[0]].is_wildcard


# -- closure properties ---------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(instances())
def test_attribute_closure_is_monotone_and_idempotent(instance):
    _, rules, z, _ = instance
    closure = attribute_closure(z, rules)
    assert set(z) <= closure
    assert attribute_closure(closure, rules) == closure
    bigger = attribute_closure(set(z) | {"a"}, rules)
    assert closure <= bigger | closure


# -- Levenshtein metric properties ---------------------------------------------


words = st.text(alphabet="abcde", max_size=8)


@settings(max_examples=300, deadline=None)
@given(words, words)
def test_levenshtein_symmetry(a, b):
    assert levenshtein(a, b) == levenshtein(b, a)


@settings(max_examples=300, deadline=None)
@given(words, words)
def test_levenshtein_identity_and_bounds(a, b):
    d = levenshtein(a, b)
    assert (d == 0) == (a == b)
    assert d <= max(len(a), len(b))
    assert d >= abs(len(a) - len(b))


@settings(max_examples=150, deadline=None)
@given(words, words, words)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


# -- dirty generator statistics ---------------------------------------------------


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_dirty_generator_ground_truth_invariant(seed):
    from repro.datasets import make_dirty_dataset, make_hosp

    bundle = make_hosp(num_hospitals=6, num_measures=3, seed=1)
    data = make_dirty_dataset(bundle, size=10, duplicate_rate=0.5,
                              noise_rate=0.3, seed=seed)
    for dt in data:
        assert dt.dirty.schema.attributes == dt.clean.schema.attributes
        for attr in dt.erroneous_attrs:
            assert dt.dirty[attr] != dt.clean[attr]
        untouched = set(dt.dirty.schema.attributes) - set(dt.erroneous_attrs)
        for attr in untouched:
            assert dt.dirty[attr] == dt.clean[attr]
