"""Editing-rule discovery from master data (future-work extension)."""

import pytest

from repro.discovery import discover_editing_rules, rules_only
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.values import NULL
from repro.repair.region_search import comp_c_region


@pytest.fixture(scope="module")
def mined_hosp(hosp):
    return discover_editing_rules(hosp.master, max_lhs_size=2)


def test_discovery_finds_exact_fds_only():
    schema = RelationSchema("R", ["k", "v", "noisy"])
    r = Relation(schema)
    r.insert([1, 10, 5])
    r.insert([1, 10, 6])   # k -> v holds; k -> noisy does not
    r.insert([2, 20, 5])
    discovered = discover_editing_rules(r, max_lhs_size=1)
    signatures = {(d.rule.lhs, d.rule.rhs) for d in discovered}
    assert (("k",), "v") in signatures
    assert (("k",), "noisy") not in signatures


def test_discovery_prefers_minimal_keys():
    schema = RelationSchema("R", ["a", "b", "c"])
    r = Relation(schema)
    r.insert([1, 10, 100])
    r.insert([2, 20, 200])
    r.insert([3, 30, 300])
    discovered = discover_editing_rules(r, max_lhs_size=2)
    # a -> c holds; (a, b) -> c must NOT be additionally reported.
    targets_c = [d.rule.lhs for d in discovered if d.rule.rhs == "c"]
    assert ("a",) in targets_c
    assert all(len(lhs) == 1 for lhs in targets_c)


def test_discovery_selectivity_guard():
    schema = RelationSchema("R", ["constant", "v"])
    r = Relation(schema)
    for i in range(50):
        r.insert(["same", "always"])
    discovered = discover_editing_rules(r, min_key_ratio=0.05)
    # A constant column is not a usable match key.
    assert not discovered


def test_discovery_empty_master():
    schema = RelationSchema("R", ["a", "b"])
    assert discover_editing_rules(Relation(schema)) == []


def test_discovered_rules_carry_nil_guards(mined_hosp):
    for d in mined_hosp[:10]:
        for attr in d.rule.lhs:
            assert d.rule.pattern[attr].is_negation
            assert d.rule.pattern[attr].value is NULL


def test_discovery_recovers_hosp_structure(mined_hosp):
    """The mined set contains the paper's five published dependencies."""
    signatures = {(d.rule.lhs, d.rule.rhs) for d in mined_hosp}
    assert (("zip",), "ST") in signatures          # φ1
    assert (("phn",), "zip") in signatures         # φ2
    assert (("id",), "hName") in signatures        # φ5
    assert (("id", "mCode"), "Score") in signatures  # φ4
    # (mCode, ST) -> sAvg may be subsumed by a smaller key on tiny masters;
    # sAvg must be determined by *some* mined key involving the measure.
    savg_keys = [lhs for lhs, rhs in signatures if rhs == "sAvg"]
    assert savg_keys


def test_discovered_rules_yield_the_same_certain_region(hosp, mined_hosp):
    """Vetting mined rules with the Sect. 4 machinery: same size-2 region."""
    regions = comp_c_region(
        rules_only(mined_hosp), hosp.master, hosp.schema,
        validate_patterns=8,
    )
    assert regions
    assert len(regions[0].region.attrs) == 2


def test_discovery_is_deterministic(hosp):
    a = discover_editing_rules(hosp.master, max_lhs_size=1)
    b = discover_editing_rules(hosp.master, max_lhs_size=1)
    assert [d.rule.name for d in a] == [d.rule.name for d in b]


def test_describe(mined_hosp):
    text = mined_hosp[0].describe()
    assert "support=" in text and "selectivity=" in text
