"""The repro.lint static analyzer: passes, reports, preflight, caching."""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.patterns import ANY, Const, NotConst, PatternTableau, PatternTuple
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema, finite_domain
from repro.engine.store import InMemoryStore
from repro.engine.values import NULL
from repro.lint import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
    preflight,
    registered_passes,
    rules_fingerprint,
    run_lint,
    sarif_rule_metadata,
    structural_report,
)
from repro.lint.runner import _MASTER_CACHE


SCHEMA = RelationSchema("r", ["a", "b", "c", "d"])


def _rule(lhs, rhs, pattern=None, name=None, guard=None, lhs_m=None,
          rhs_m=None):
    lhs = (lhs,) if isinstance(lhs, str) else tuple(lhs)
    return EditingRule(
        lhs, lhs_m if lhs_m is not None else lhs, rhs,
        rhs_m if rhs_m is not None else rhs,
        PatternTuple(pattern or {}), name=name,
        master_guard=PatternTuple(guard) if guard else None,
    )


def _master(rows, schema=SCHEMA):
    relation = Relation(schema)
    for row in rows:
        relation.insert(list(row))
    return relation


# -- structural passes: one rule set per code ---------------------------------


def test_e101_unknown_attribute_all_roles():
    report = structural_report(
        [
            _rule("a", "oops", name="bad-rhs"),
            _rule("nope", "b", name="bad-lhs"),
            _rule("a", "b", pattern={"zzz": 1}, name="bad-pattern"),
            _rule("a", "b", lhs_m=("am",), name="bad-lhs-m"),
            _rule("a", "b", rhs_m="bm", name="bad-rhs-m"),
        ],
        SCHEMA,
    )
    findings = [d for d in report if d.code == "E101"]
    # bad-rhs/bad-lhs default their master side to the same bad attr, so
    # both schema sides flag: 7 findings across all five roles.
    assert len(findings) == 7
    assert all(d.severity is Severity.ERROR for d in findings)
    assert {d.rule for d in findings} == {
        "bad-rhs", "bad-lhs", "bad-pattern", "bad-lhs-m", "bad-rhs-m",
    }
    assert {d.data["role"] for d in findings} == {
        "match-key (X)", "master match-key (Xm)", "target (B)",
        "master source (Bm)", "pattern (Xp)",
    }


def test_e101_suggests_close_match():
    schema = RelationSchema("r", ["name", "city", "zip"])
    report = structural_report([_rule("zip", "ciyt", name="typo")], schema)
    findings = [d for d in report if d.code == "E101"]
    assert findings and all(
        "did you mean 'city'" in d.remedy for d in findings
    )


def test_e102_unsatisfiable_pattern_and_guard():
    bit = finite_domain("bit", {0, 1})
    schema = RelationSchema("r", [("a", bit), ("b", bit)])
    report = structural_report(
        [
            _rule("a", "b", pattern={"a": Const(7)}, name="bad-const"),
            _rule("a", "b", guard={"a": Const(9)}, name="bad-guard"),
        ],
        schema,
    )
    findings = [d for d in report if d.code == "E102"]
    assert {(d.rule, d.data["side"]) for d in findings} == {
        ("bad-const", "pattern"), ("bad-guard", "master_guard"),
    }


def test_w103_duplicate_rule_has_fixit():
    report = structural_report(
        [_rule("a", "b", name="first"), _rule("a", "b", name="copy")],
        SCHEMA,
    )
    (finding,) = [d for d in report if d.code == "W103"]
    assert finding.rule == "copy" and finding.rule_index == 1
    assert finding.fixit == {"action": "remove_rule", "rule_index": 1}
    assert finding.data["duplicate_of"] == 0


def test_w104_subsumed_by_wildcard_and_by_negation():
    report = structural_report(
        [
            _rule("a", "b", name="general"),  # no pattern: always applies
            _rule("a", "b", pattern={"c": Const(1)}, name="narrow"),
            _rule("a", "c", pattern={"d": NotConst(0)}, name="neg-general"),
            _rule("a", "c", pattern={"d": Const(1)}, name="neg-narrow"),
        ],
        SCHEMA,
    )
    findings = {d.rule: d for d in report if d.code == "W104"}
    assert findings["narrow"].data["subsumed_by"] == 0
    # x = 1 implies x != 0, so neg-narrow is contained in neg-general.
    assert findings["neg-narrow"].data["subsumed_by"] == 2


def test_w104_not_fired_for_disjoint_or_exact_duplicates():
    report = structural_report(
        [
            _rule("a", "b", pattern={"c": Const(1)}, name="one"),
            _rule("a", "b", pattern={"c": Const(2)}, name="two"),
            _rule("a", "c", name="dup1"),
            _rule("a", "c", name="dup2"),  # W103's case, not W104's
        ],
        SCHEMA,
    )
    assert "W104" not in report.codes()
    assert "W103" in report.codes()


def test_w105_dependency_cycle_witness():
    report = structural_report(
        [
            _rule("a", "b", name="ab"),
            _rule("b", "c", name="bc"),
            _rule("c", "b", name="cb"),
        ],
        SCHEMA,
    )
    (finding,) = [d for d in report if d.code == "W105"]
    assert set(finding.data["cycle"]) == {"bc", "cb"}
    assert "->" in finding.message


def test_w106_self_referential_premise():
    report = structural_report(
        [_rule("a", "b", pattern={"b": NotConst(NULL)}, name="selfie")],
        SCHEMA,
    )
    (finding,) = [d for d in report if d.code == "W106"]
    assert finding.rule == "selfie"
    assert finding.data["attr"] == "b"
    # A wildcard on the target poses no condition: not self-referential.
    clean = structural_report(
        [_rule("a", "b", pattern={"b": ANY}, name="ok")], SCHEMA
    )
    assert "W106" not in clean.codes()


def test_i107_unfixable_attributes():
    report = structural_report([_rule("a", "b"), _rule("b", "c")], SCHEMA)
    (finding,) = [d for d in report if d.code == "I107"]
    assert finding.severity is Severity.INFO
    assert finding.data["attrs"] == ["a", "d"]


def test_w108_dead_rules_unreachable_from_mandatory_start():
    # rhs = {b, c}; mandatory = {a, d}; neither b nor c is derivable from
    # {a, d}, so both rules can never fire.
    report = structural_report(
        [_rule("b", "c", name="bc"), _rule("c", "b", name="cb")],
        SCHEMA,
    )
    dead = {d.rule for d in report if d.code == "W108"}
    assert dead == {"bc", "cb"}
    # A proper chain from a mandatory attribute is alive.
    alive = structural_report(
        [_rule("a", "b", name="ab"), _rule("b", "c", name="bc")], SCHEMA
    )
    assert "W108" not in alive.codes()


# -- master-aware passes ------------------------------------------------------


def test_w201_zero_support_empty_master():
    report = run_lint([_rule("a", "b")], SCHEMA, _master([]))
    (finding,) = [d for d in report if d.code == "W201"]
    assert finding.rule is None
    assert "empty" in finding.message


def test_w201_zero_support_guarded_rule():
    master = _master([(1, 2, 3, 4), (5, 6, 7, 8)])
    report = run_lint(
        [
            _rule("a", "b", guard={"d": Const(999)}, name="starved"),
            _rule("a", "c", name="fed"),
        ],
        SCHEMA,
        master,
    )
    findings = [d for d in report if d.code == "W201"]
    assert [d.rule for d in findings] == ["starved"]


def test_w202_non_confluent_pair_witness():
    # t = (k1=1, k2=2): rule r1 probes k1 -> v=10, rule r2 probes k2 -> v=20.
    # The all-ANY declared region needs 4 instantiations, so
    # max_instantiations=1 degrades the exact E205 certification — which is
    # what re-arms the sampled W202 fallback (E205 subsumes it otherwise).
    schema = RelationSchema("r", ["k1", "k2", "v"])
    master = _master([(1, 9, 10), (8, 2, 20)], schema)
    report = run_lint(
        [_rule("k1", "v", name="r1"), _rule("k2", "v", name="r2")],
        schema,
        master,
        region=Region(("k1", "k2"), PatternTableau(
            ("k1", "k2"), [PatternTuple({"k1": ANY, "k2": ANY})]
        )),
        max_instantiations=1,
    )
    (finding,) = [d for d in report if d.code == "W202"]
    assert finding.rule == "r2" and finding.data["other_rule"] == "r1"
    assert finding.data["attr"] == "v"
    assert sorted(finding.data["values"]) == ["10", "20"]


def test_w202_silent_when_values_agree():
    schema = RelationSchema("r", ["k1", "k2", "v"])
    master = _master([(1, 9, 10), (8, 2, 10)], schema)
    report = run_lint(
        [_rule("k1", "v", name="r1"), _rule("k2", "v", name="r2")],
        schema,
        master,
    )
    assert "W202" not in report.codes()


def test_e203_ambiguous_master_key():
    schema = RelationSchema("r", ["k", "x", "v"])
    master = _master([(1, "p", 10), (1, "q", 20)], schema)
    report = run_lint([_rule("k", "v", name="probe")], schema, master)
    (finding,) = [d for d in report if d.code == "E203"]
    assert finding.severity is Severity.ERROR
    assert finding.data["key_attrs"] == ["k"]
    assert finding.data["values"] == ["10", "20"]
    assert report.fails("error")


def test_e203_respects_guard_filtering():
    # The duplicate key lives outside the rule's guard: no ambiguity.
    schema = RelationSchema("r", ["k", "x", "v"])
    master = _master([(1, "p", 10), (1, "q", 20)], schema)
    report = run_lint(
        [_rule("k", "v", guard={"x": Const("p")}, name="guarded")],
        schema,
        master,
    )
    assert "E203" not in report.codes()


def test_w204_null_master_values_lists_readers():
    schema = RelationSchema("r", ["k", "v", "w"])
    master = _master([(1, NULL, "x"), (2, 5, "y")], schema)
    report = run_lint(
        [_rule("k", "v", name="reader"), _rule("k", "w", name="other")],
        schema,
        master,
    )
    findings = [d for d in report if d.code == "W204"]
    assert len(findings) == 1
    assert findings[0].data["attr"] == "v"
    assert findings[0].data["rules"] == ["reader"]


# -- report rendering ---------------------------------------------------------


def test_report_orders_by_severity_then_code():
    report = LintReport(diagnostics=[
        Diagnostic(code="I107", severity=Severity.INFO, message="i"),
        Diagnostic(code="E101", severity=Severity.ERROR, message="e"),
        Diagnostic(code="W103", severity=Severity.WARNING, message="w"),
    ])
    assert report.codes() == ["E101", "W103", "I107"]
    assert report.fails("error") and report.fails("warning")
    assert not LintReport().fails("info")


def test_report_json_shape():
    report = run_lint([_rule("a", "oops")], SCHEMA, _master([(1, 2, 3, 4)]))
    doc = json.loads(report.to_json())
    assert doc["version"] == 1
    assert doc["summary"]["errors"] >= 1
    assert doc["summary"]["master_version"] == 1
    assert all({"code", "severity", "message"} <= set(d)
               for d in doc["diagnostics"])


def test_report_sarif_shape():
    report = run_lint(
        [_rule("a", "oops"), _rule("a", "b")], SCHEMA,
        _master([(1, 2, 3, 4)]),
    )
    sarif = report.to_sarif(
        artifact_uri="rules.json",
        rule_metadata=sarif_rule_metadata(report.passes_run),
    )
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"E101", "I107"} <= rule_ids
    levels = {r["ruleId"]: r["level"] for r in run["results"]}
    assert levels["E101"] == "error"
    assert levels["I107"] == "note"  # SARIF spells info 'note'
    e101 = next(r for r in run["results"] if r["ruleId"] == "E101")
    (location,) = e101["locations"]
    assert location["physicalLocation"]["artifactLocation"]["uri"] == \
        "rules.json"
    assert location["logicalLocations"][0]["fullyQualifiedName"] == "rules[0]"


def test_at_least_eight_passes_each_with_stable_codes():
    codes = {p.code for p in registered_passes()}
    assert len(codes) >= 8
    assert {"E101", "E102", "W103", "W104", "W105", "W106", "I107", "W108",
            "W201", "W202", "E203", "W204", "E205", "W206", "I208"} == codes


# -- golden outputs for the shipped rule sets ---------------------------------


def test_golden_hosp_lint(hosp):
    # The exact certification completes (computed region [id, mCode] is
    # certain + consistent), so the two sampled W202 witnesses the seed
    # pinned here are now known to be spurious and stay silent.
    report = run_lint(hosp.rules, hosp.schema, hosp.master)
    assert json.loads(report.to_json())["summary"] == {
        "errors": 0,
        "warnings": 0,
        "infos": 1,
        "rules_linted": 21,
        "passes_run": ["E101", "E102", "W103", "W104", "W105", "W106",
                       "I107", "W108", "W201", "E203", "W204", "W202",
                       "E205", "W206", "I208"],
        "master_version": hosp.master.mutation_count,
    }
    assert [
        (d.code, d.rule, d.rule_index) for d in report
    ] == [
        ("I107", None, None),
    ]
    (info,) = report.infos
    assert info.data["attrs"] == ["id", "mCode"]
    assert not report.fails("error")  # the CI gate on the shipped set


def test_golden_hosp_lint_degraded_restores_sampled_w202(hosp):
    # Starving the exact pass of instantiations reports the degradation
    # (info-level E205) and re-arms the sampled W202 fallback findings.
    # The all-wildcard declared region needs |dom(id)| * |dom(mCode)|
    # instantiations; the computed concrete-tableau region would fit in
    # any budget, hence the explicit declaration.
    region = Region(("id", "mCode"), PatternTableau(
        ("id", "mCode"), [PatternTuple({"id": ANY, "mCode": ANY})]
    ))
    report = run_lint(hosp.rules, hosp.schema, hosp.master,
                      region=region, max_instantiations=1)
    assert [(d.code, d.rule, d.rule_index) for d in report] == [
        ("W202", "h19:phn,zip->hName", 18),
        ("W202", "h21:id,zip->addr1", 20),
        ("E205", None, None),
        ("I107", None, None),
    ]
    (degraded,) = [d for d in report if d.code == "E205"]
    assert degraded.severity is Severity.INFO
    assert degraded.data["degraded"] is True


def test_golden_dblp_lint(dblp):
    # All nine seed-era sampled W202 witnesses are subsumed by the exact
    # certification (computed region is certain + consistent).
    report = run_lint(dblp.rules, dblp.schema, dblp.master)
    summary = json.loads(report.to_json())["summary"]
    assert summary["errors"] == 0
    assert summary["warnings"] == 1
    assert summary["infos"] == 1
    assert summary["rules_linted"] == 16
    assert [(d.code, d.rule) for d in report] == [
        ("W105", None),
        ("I107", None),
    ]
    (cycle,) = [d for d in report if d.code == "W105"]
    assert set(cycle.data["cycle"]) == {"phi5[crossref]", "phi6[btitle]"}
    (info,) = report.infos
    assert info.data["attrs"] == ["a1", "a2", "pages", "ptitle", "type"]
    assert not report.fails("error")


# -- caching and fingerprints -------------------------------------------------


def test_master_results_cached_until_version_moves():
    # A NULL master value keeps a W204 finding alive through the certify
    # era (hosp/dblp now lint clean, so they no longer exercise sharing).
    schema = RelationSchema("r", ["k", "v", "w"])
    relation = _master([(1, NULL, "x"), (2, 5, "y")], schema)
    store = InMemoryStore(relation)
    rules = [_rule("k", "v", name="reader")]
    _MASTER_CACHE.pop(store, None)
    first = run_lint(rules, schema, store)
    assert len(_MASTER_CACHE[store]) == 1
    second = run_lint(rules, schema, store)
    assert len(_MASTER_CACHE[store]) == 1  # same key: cache hit
    # Cached Diagnostic objects are shared, not recomputed.
    first_masters = [d for d in first if d.code == "W204"]
    second_masters = [d for d in second if d.code == "W204"]
    assert first_masters
    assert all(a is b for a, b in zip(first_masters, second_masters))
    store.insert(relation.first())
    third = run_lint(rules, schema, store)
    assert len(_MASTER_CACHE[store]) == 2  # version moved: new entry
    assert third.master_version == store.version


def test_fingerprint_sensitive_to_rules_and_names():
    base = [_rule("a", "b", name="x")]
    assert rules_fingerprint(base) == rules_fingerprint(
        [_rule("a", "b", name="x")]
    )
    assert rules_fingerprint(base) != rules_fingerprint(
        [_rule("a", "b", name="y")]
    )
    assert rules_fingerprint(base) != rules_fingerprint([_rule("a", "c")])


# -- preflight gates ----------------------------------------------------------


def test_preflight_error_raises_with_report():
    with pytest.raises(LintError) as excinfo:
        preflight([_rule("a", "oops")], SCHEMA, context="unit test")
    assert "unit test" in str(excinfo.value)
    assert "E101" in str(excinfo.value)
    assert excinfo.value.report.errors


def test_preflight_error_passes_warnings_through():
    report = preflight(
        [_rule("a", "b", name="one"), _rule("a", "b", name="two")], SCHEMA
    )
    assert "W103" in report.codes()  # warning present, but no raise


def test_preflight_warn_prints_and_continues(capsys):
    report = preflight([_rule("a", "oops")], SCHEMA, mode="warn")
    assert report.errors
    err = capsys.readouterr().err
    assert "E101" in err


def test_preflight_off_and_bad_mode():
    assert preflight([_rule("a", "oops")], SCHEMA, mode="off") is None
    with pytest.raises(ValueError, match="preflight must be one of"):
        preflight([], SCHEMA, mode="loud")


def test_batch_engine_preflight_refuses_bad_rules(hosp):
    from repro.repair.batch import BatchRepairEngine

    bad = list(hosp.rules) + [_rule(("id",), "bogus", name="broken")]
    with pytest.raises(LintError) as excinfo:
        BatchRepairEngine(bad, hosp.master, hosp.schema)
    assert "E101" in str(excinfo.value)


def test_batch_engine_preflight_warn_and_off(capsys):
    from repro.repair.batch import BatchRepairEngine

    bit = finite_domain("bit", {1, 2})
    schema = RelationSchema("r", [("a", bit), ("b", bit)])
    master = _master([(1, 1), (2, 2)], schema)
    good = _rule("a", "b", name="good")
    # Error-level (E102) but harmless to precompute: the rule never fires.
    bad = _rule("a", "b", pattern={"a": Const(7)}, name="unsat")

    with pytest.raises(LintError, match="E102"):
        BatchRepairEngine([good, bad], master, schema)
    engine = BatchRepairEngine([good, bad], master, schema,
                               preflight="warn")
    assert engine.engine.regions
    assert "E102" in capsys.readouterr().err
    BatchRepairEngine([good, bad], master, schema, preflight="off")
    assert capsys.readouterr().err == ""
    with pytest.raises(ValueError, match="preflight"):
        BatchRepairEngine([good], master, schema, preflight="always")


def test_batch_engine_clean_rules_pass_preflight(hosp):
    from repro.repair.batch import BatchRepairEngine

    engine = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema)
    assert engine.engine.regions  # precompute went through the gate


# -- structural passes are total (never raise) --------------------------------


R_ATTRS = ("a", "b", "c", "d")
_values = st.integers(min_value=0, max_value=2)
_pattern_values = st.one_of(
    st.builds(Const, _values), st.builds(NotConst, _values), st.just(ANY),
)


@st.composite
def well_typed_rules(draw):
    """Arbitrary rule sets whose attributes all come from the schema."""
    num_rules = draw(st.integers(min_value=0, max_value=8))
    rules = []
    for index in range(num_rules):
        lhs_size = draw(st.integers(min_value=1, max_value=2))
        lhs = tuple(draw(st.permutations(R_ATTRS))[:lhs_size])
        rhs = draw(st.sampled_from([a for a in R_ATTRS if a not in lhs]))
        pattern = draw(st.dictionaries(
            st.sampled_from(R_ATTRS), _pattern_values, max_size=3,
        ))
        guard = draw(st.dictionaries(
            st.sampled_from(R_ATTRS), _pattern_values, max_size=2,
        ))
        rules.append(EditingRule(
            lhs, lhs, rhs, draw(st.sampled_from(R_ATTRS)),
            PatternTuple(pattern), name=f"g{index}",
            master_guard=PatternTuple(guard),
        ))
    return rules


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(well_typed_rules())
def test_structural_passes_never_raise(rules):
    report = structural_report(rules, SCHEMA)
    # Invariants: deterministic order, well-typed rules yield no E101, and
    # rendering never raises either.
    assert report.codes() == [d.code for d in sorted(
        report, key=lambda d: (d.severity.rank, d.code,
                               d.rule_index if d.rule_index is not None
                               else 1 << 30, d.message),
    )]
    assert "E101" not in report.codes()
    report.describe()
    json.loads(report.to_json())
    report.to_sarif()
