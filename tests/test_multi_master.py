"""Multiple master relations via the tagged single-schema encoding
(Sect. 2, remark (3)) and master-side rule guards."""

import pytest

from repro.core.fixes import chase
from repro.core.patterns import PatternTuple
from repro.core.rules import EditingRule
from repro.engine.multi import (
    SOURCE_ID,
    combine_masters,
    guard_for,
    select_source,
    split_rules_by_source,
)
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema, STRING
from repro.engine.values import NULL
from repro.repair.transfix import transfix


@pytest.fixture()
def sources():
    """Two master relations sharing a key column with DIFFERENT semantics:
    persons keyed by code -> city of residence; branches keyed by code ->
    city of the branch.  Combining them without guards would conflict."""
    persons = Relation(RelationSchema("persons", ["code", "city"]))
    persons.insert(["A1", "Edinburgh"])
    persons.insert(["B2", "London"])
    branches = Relation(RelationSchema("branches", ["code", "city"]))
    branches.insert(["A1", "Glasgow"])   # same code, different city!
    return {"persons": persons, "branches": branches}


@pytest.fixture()
def combined(sources):
    return combine_masters(sources)


def test_combined_schema_and_rows(combined, sources):
    assert SOURCE_ID in combined.schema
    assert len(combined) == 3
    assert {row[SOURCE_ID] for row in combined} == {"persons", "branches"}


def test_select_source_recovers_instances(combined, sources):
    rows = select_source(combined, "persons")
    assert len(rows) == len(sources["persons"])
    assert {r["city"] for r in rows} == {"Edinburgh", "London"}


def test_select_source_result_is_mutation_safe(combined, sources):
    """Public API: mutating the returned list must not corrupt the
    combined relation's index buckets (aliasing regression)."""
    rows = select_source(combined, "persons")
    rows.clear()
    again = select_source(combined, "persons")
    assert len(again) == len(sources["persons"])


def test_missing_attributes_become_null():
    left = Relation(RelationSchema("L", ["k", "only_left"]))
    left.insert([1, "x"])
    right = Relation(RelationSchema("Rr", ["k", "only_right"]))
    right.insert([2, "y"])
    combined = combine_masters({"l": left, "r": right})
    by_source = {row[SOURCE_ID]: row for row in combined}
    assert by_source["l"]["only_right"] is NULL
    assert by_source["r"]["only_left"] is NULL


def test_conflicting_domains_rejected():
    from repro.engine.schema import INT

    a = Relation(RelationSchema("A", [("k", INT)]))
    b = Relation(RelationSchema("B", [("k", STRING)]))
    with pytest.raises(ValueError, match="conflicting domains"):
        combine_masters({"a": a, "b": b})


def test_source_column_collision_rejected():
    a = Relation(RelationSchema("A", [SOURCE_ID, "k"]))
    with pytest.raises(ValueError, match="already has"):
        combine_masters({"a": a})


def test_empty_input_rejected():
    with pytest.raises(ValueError, match="at least one"):
        combine_masters({})


def test_unguarded_rule_sees_cross_source_conflict(combined):
    """Without a guard, code A1 matches both sources -> conflicting fix."""
    schema = RelationSchema("R", ["code", "city"])
    rule = EditingRule("code", "code", "city", "city")
    out = chase({"code": "A1"}, ("code",), [rule], combined)
    assert not out.unique
    assert out.conflict.attr == "city"


def test_guarded_rule_uses_only_its_source(combined):
    schema = RelationSchema("R", ["code", "city"])
    person_rule = EditingRule(
        "code", "code", "city", "city",
        master_guard=guard_for("persons"), name="person-city",
    )
    out = chase({"code": "A1"}, ("code",), [person_rule], combined)
    assert out.unique
    assert out.assignment["city"] == "Edinburgh"

    branch_rule = person_rule.with_pattern(PatternTuple({}))
    branch_rule = EditingRule(
        "code", "code", "city", "city",
        master_guard=guard_for("branches"), name="branch-city",
    )
    out2 = chase({"code": "A1"}, ("code",), [branch_rule], combined)
    assert out2.assignment["city"] == "Glasgow"


def test_guarded_transfix(combined):
    schema = RelationSchema("R", ["code", "city"])
    from repro.engine.tuples import Row

    rule = EditingRule(
        "code", "code", "city", "city",
        master_guard=guard_for("persons"),
    )
    t = Row(schema, ["A1", NULL])
    result = transfix(t, {"code"}, [rule], combined)
    assert result.row["city"] == "Edinburgh"


def test_guard_survives_normalization_and_refinement():
    rule = EditingRule(
        "code", "code", "city", "city",
        pattern=PatternTuple({"code": "A1"}),
        master_guard=guard_for("persons"),
    )
    assert rule.normalized().master_guard == guard_for("persons")
    refined = rule.with_pattern(PatternTuple({"code": "B2"}))
    assert refined.master_guard == guard_for("persons")


def test_guard_rendered_into_sql():
    from repro.engine.sql import render_q_phi

    rule = EditingRule(
        "code", "code", "city", "city",
        master_guard=guard_for("persons"),
    )
    sql = render_q_phi(rule, PatternTuple({"code": "A1"}), "Dm")
    assert f"Dm.{SOURCE_ID} = 'persons'" in sql


def test_split_rules_by_source():
    r1 = EditingRule("a", "a", "b", "b", master_guard=guard_for("x"))
    r2 = EditingRule("a", "a", "c", "c", master_guard=guard_for("y"))
    r3 = EditingRule("a", "a", "d", "d")
    groups = split_rules_by_source([r1, r2, r3])
    assert set(groups) == {"x", "y", None}
    assert groups["x"] == [r1]


def test_guard_affects_equality():
    base = EditingRule("a", "a", "b", "b")
    guarded = EditingRule("a", "a", "b", "b", master_guard=guard_for("x"))
    assert base != guarded
    assert hash(base) != hash(guarded)
