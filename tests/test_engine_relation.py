"""Relations, hash indexes, and index/scan agreement."""

import pytest

from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row


@pytest.fixture()
def rel():
    schema = RelationSchema("R", ["a", "b"])
    r = Relation(schema)
    r.insert([1, "x"])
    r.insert([2, "y"])
    r.insert([1, "z"])
    return r


def test_len_and_iter(rel):
    assert len(rel) == 3
    assert [row["a"] for row in rel] == [1, 2, 1]


def test_lookup_uses_index(rel):
    rows = rel.lookup(["a"], (1,))
    assert sorted(r["b"] for r in rows) == ["x", "z"]


def test_lookup_matches_scan(rel):
    assert rel.lookup(["a"], (2,)) == rel.scan_lookup(["a"], (2,))
    assert rel.lookup(["a", "b"], (1, "z")) == rel.scan_lookup(["a", "b"], (1, "z"))


def test_index_updated_on_insert(rel):
    index = rel.index_on(["a"])
    rel.insert([1, "w"])
    assert len(index.get((1,))) == 3


def test_index_get_returns_a_copy(rel):
    """Regression: HashIndex.get used to hand out the internal bucket, so a
    caller mutating its 'result' silently corrupted the index."""
    index = rel.index_on(["a"])
    rows = index.get((1,))
    rows.clear()
    rows.append("junk")
    assert len(index.get((1,))) == 2          # bucket untouched
    assert "junk" not in index.get((1,))
    # Misses are fresh, mutable lists too.
    miss = index.get((999,))
    miss.append("junk")
    assert index.get((999,)) == []


def test_index_get_ref_aliases_bucket(rel):
    """The internal no-copy accessor (hot path) sees inserts immediately
    without re-probing."""
    index = rel.index_on(["a"])
    ref = index.get_ref((1,))
    assert len(ref) == 2
    rel.insert([1, "w"])
    assert len(ref) == 3                      # same underlying bucket
    assert index.get_ref((999,)) == []
    # Misses are fresh lists: mutating one never leaks into later probes.
    miss = index.get_ref((999,))
    miss.append("junk")
    assert index.get_ref((999,)) == []
    assert rel.lookup(["a"], (999,)) == []


def test_mutating_lookup_result_does_not_break_repairs(hosp):
    """End-to-end aliasing regression: sorting a public get() result must
    not change what the repair hot path later reads."""
    rule = hosp.rules[0]
    index = hosp.master.index_on(rule.lhs_m)
    key = hosp.master.first()[rule.lhs_m]
    before = list(hosp.master.lookup(rule.lhs_m, key))
    victim = index.get(key)
    victim.reverse()
    victim.pop()
    assert list(hosp.master.lookup(rule.lhs_m, key)) == before


def test_index_with_repeated_columns(rel):
    rows = rel.lookup(["a", "a"], (1, 1))
    assert len(rows) == 2
    assert rel.lookup(["a", "a"], (1, 2)) == []


def test_index_unknown_attribute(rel):
    with pytest.raises(KeyError):
        rel.index_on(["missing"])


def test_select_project_distinct(rel):
    selected = rel.select(lambda r: r["a"] == 1)
    assert len(selected) == 2
    projected = rel.project(["a"])
    assert len(projected) == 3
    assert len(projected.distinct()) == 2
    assert len(rel.project(["a"], distinct=True)) == 2


def test_active_values(rel):
    assert rel.active_values("a") == {1, 2}


def test_insert_row_schema_mismatch(rel):
    other = RelationSchema("S", ["x", "y"])
    with pytest.raises(ValueError):
        rel.insert(Row(other, [1, 2]))


def test_from_dicts():
    schema = RelationSchema("R", ["a", "b"])
    r = Relation.from_dicts(schema, [{"a": 1, "b": 2}])
    assert r.first()["b"] == 2


def test_first_on_empty_raises():
    r = Relation(RelationSchema("R", ["a"]))
    with pytest.raises(LookupError):
        r.first()
