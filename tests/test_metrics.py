"""Evaluation metrics (recall_t, recall_a, precision, F-measure)."""

import pytest

from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row
from repro.metrics import AggregateMetrics, aggregate, evaluate_repair


@pytest.fixture()
def schema():
    return RelationSchema("R", ["a", "b", "c", "d"])


def test_evaluate_clean_tuple(schema):
    clean = Row(schema, [1, 2, 3, 4])
    e = evaluate_repair(clean, clean, clean)
    assert not e.was_erroneous
    assert e.fully_corrected


def test_algorithm_corrections_counted(schema):
    clean = Row(schema, [1, 2, 3, 4])
    dirty = Row(schema, [1, 9, 9, 4])
    final = Row(schema, [1, 2, 3, 4])
    e = evaluate_repair(dirty, clean, final)
    assert e.erroneous == {"b", "c"}
    assert e.corrected_by_algorithm == {"b", "c"}
    assert e.fully_corrected


def test_user_corrections_excluded_from_algorithm_credit(schema):
    clean = Row(schema, [1, 2, 3, 4])
    dirty = Row(schema, [1, 9, 9, 4])
    final = Row(schema, [1, 2, 3, 4])
    e = evaluate_repair(dirty, clean, final, user_asserted={"b"})
    assert e.corrected_by_algorithm == {"c"}
    assert e.corrected_by_user == {"b"}
    assert e.changed_by_algorithm == {"c"}


def test_wrong_changes_tracked(schema):
    clean = Row(schema, [1, 2, 3, 4])
    dirty = Row(schema, [1, 9, 3, 4])
    final = Row(schema, [1, 7, 3, 8])  # b mis-repaired, d broken
    e = evaluate_repair(dirty, clean, final)
    assert e.wrong_changes == {"b", "d"}
    assert not e.fully_corrected


def test_aggregate_recall_and_precision(schema):
    clean = Row(schema, [1, 2, 3, 4])
    evals = [
        evaluate_repair(Row(schema, [1, 9, 3, 4]), clean,
                        Row(schema, [1, 2, 3, 4])),          # corrected
        evaluate_repair(Row(schema, [1, 9, 9, 4]), clean,
                        Row(schema, [1, 2, 9, 4])),          # half corrected
        evaluate_repair(clean, clean, clean),                # never dirty
    ]
    m = aggregate(evals)
    assert m.tuples == 3
    assert m.erroneous_tuples == 2
    assert m.corrected_tuples == 1
    assert m.recall_t == 0.5
    assert m.erroneous_attrs == 3
    assert m.corrected_attrs == 2
    assert m.recall_a == pytest.approx(2 / 3)
    assert m.precision_a == 1.0
    assert m.f_measure == pytest.approx(2 * (2 / 3) / (1 + 2 / 3))


def test_aggregate_degenerate_cases():
    m = AggregateMetrics()
    assert m.recall_t == 1.0
    assert m.recall_a == 1.0
    assert m.precision_a == 1.0
    assert m.f_measure == 1.0


def test_zero_f_measure():
    m = AggregateMetrics(erroneous_attrs=5, changed_attrs=5,
                         corrected_attrs=0)
    assert m.f_measure == 0.0


def test_merge():
    m1 = AggregateMetrics(erroneous_tuples=1, corrected_tuples=1,
                          erroneous_attrs=2, corrected_attrs=2,
                          changed_attrs=2, tuples=1)
    m2 = AggregateMetrics(erroneous_tuples=1, corrected_tuples=0,
                          erroneous_attrs=2, corrected_attrs=0,
                          changed_attrs=1, wrong_attrs=1, tuples=1)
    merged = m1.merge(m2)
    assert merged.recall_t == 0.5
    assert merged.recall_a == 0.5
    assert merged.tuples == 2
    assert merged.wrong_attrs == 1
