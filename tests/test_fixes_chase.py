"""The fix chase: region-constrained application, fixpoints, confluence."""

import pytest

from repro.core.fixes import (
    applicable_pairs,
    chase,
    fix_sequence,
    is_fixpoint,
    region_apply,
)
from repro.core.patterns import PatternTuple
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema
from repro.engine.tuples import Row
from repro.engine.values import UNKNOWN


def _setup(master_rows, rules_spec):
    """Small harness: R(a,b,c,d), Rm(w,x,y,z)."""
    r = RelationSchema("R", [(a, INT) for a in "abcd"])
    rm = RelationSchema("Rm", [(a, INT) for a in "wxyz"])
    master = Relation(rm)
    for row in master_rows:
        master.insert(row)
    rules = [
        EditingRule(lhs, lhs_m, rhs, rhs_m, PatternTuple(pattern or {}),
                    name=f"r{i}")
        for i, (lhs, lhs_m, rhs, rhs_m, pattern) in enumerate(rules_spec)
    ]
    return r, master, rules


def test_single_step_region_apply():
    r, master, rules = _setup(
        [(1, 2, 3, 4)], [(("a",), ("w",), "b", "x", None)]
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    t = Row(r, [1, 0, 0, 0])
    fixed, extended = region_apply(t, region, rules[0], master.first())
    assert fixed["b"] == 2
    assert extended.attrs == ("a", "b")


def test_region_apply_enforces_side_conditions():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", None), (("c",), ("y",), "d", "z", None)],
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    t = Row(r, [1, 0, 3, 0])
    with pytest.raises(ValueError, match="not contained in Z"):
        region_apply(t, region, rules[1], master.first())
    not_marked = Row(r, [2, 0, 0, 0])
    with pytest.raises(ValueError, match="not marked"):
        region_apply(not_marked, region, rules[0], master.first())


def test_region_apply_protects_validated_targets():
    r, master, rules = _setup(
        [(1, 2, 3, 4)], [(("a",), ("w",), "b", "x", None)]
    )
    region = Region.from_patterns(("a", "b"), [{"a": 1, "b": 0}])
    t = Row(r, [1, 0, 0, 0])
    with pytest.raises(ValueError, match="protected"):
        region_apply(t, region, rules[0], master.first())


def test_fix_sequence_chains_extensions():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
        ],
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    t = Row(r, [1, 0, 0, 0])
    fixed, final_region = fix_sequence(
        t, region, [(rules[0], master.first()), (rules[1], master.first())]
    )
    assert fixed["b"] == 2 and fixed["c"] == 3
    assert final_region.attrs == ("a", "b", "c")


def test_chase_simple_chain_is_unique_and_covers():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
            (("c",), ("y",), "d", "z", None),
        ],
    )
    out = chase({"a": 1}, ("a",), rules, master)
    assert out.unique
    assert out.assignment == {"a": 1, "b": 2, "c": 3, "d": 4}
    assert out.covered == {"a", "b", "c", "d"}
    assert out.is_certain(r)


def test_chase_same_batch_conflict():
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    out = chase({"a": 1}, ("a",), rules, master)
    assert not out.unique
    assert out.conflict.kind == "same-batch"
    assert out.conflict.attr == "b"
    assert set(out.conflict.values) == {2, 9}


def test_chase_order_dependent_conflict():
    """Two rules targeting b, enabled at different times, different values."""
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),   # b := 2, enabled at once
            (("a",), ("w",), "c", "y", None),   # c := 3
            (("c",), ("y",), "b", "z", None),   # b := 4, enabled after c
        ],
    )
    out = chase({"a": 1}, ("a",), rules, master)
    assert not out.unique
    assert out.conflict.kind == "order-dependent"
    assert out.conflict.attr == "b"


def test_chase_chain_through_target_is_not_a_conflict():
    """A late rule whose premise is only derivable THROUGH its own target
    can never fire first: unique fix (DESIGN.md §4.1's exactness case)."""
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),   # b := 2
            (("b",), ("x",), "c", "y", None),   # c := 3  (needs b)
            (("c",), ("y",), "b", "z", None),   # b := 4  (needs c, via b!)
        ],
    )
    out = chase({"a": 1}, ("a",), rules, master)
    assert out.unique
    assert out.assignment["b"] == 2


def test_chase_long_alternative_derivation_is_found():
    """An alternative premise derivation that avoids the target, discovered
    only late in the batching, must still be flagged (exactness on chains)."""
    r, master, rules = _setup(
        # w x y z = 1 2 3 4
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),   # b := 2 (immediately)
            (("b",), ("x",), "c", "y", None),   # c := 3 via b
            (("a",), ("w",), "d", "z", None),   # d := 4 (immediately)
            (("d",), ("z",), "c", "y", None),   # c := 3 via d (same value)
            (("c",), ("y",), "b", "w", None),   # b := 1 CONFLICT, premise c
        ],
    )
    out = chase({"a": 1}, ("a",), rules, master)
    # c is derivable via d without touching b, so rule 4 can fire before b
    # is set in some order: two distinct fixes.
    assert not out.unique
    assert out.conflict.attr == "b"


def test_chase_same_value_rules_do_not_conflict():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("a",), ("w",), "b", "x", None),  # duplicate, same value
        ],
    )
    out = chase({"a": 1}, ("a",), rules, master)
    assert out.unique
    assert out.assignment["b"] == 2


def test_chase_zb_targets_are_protected():
    """A rule targeting a user-validated attribute never applies."""
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    out = chase({"a": 1, "b": 99}, ("a", "b"), rules, master)
    assert out.unique
    assert out.assignment["b"] == 99  # protected, not overwritten


def test_chase_pattern_gates_application():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", {"a": 7})],
    )
    out = chase({"a": 1}, ("a",), rules, master)
    assert out.unique
    assert out.assignment["b"] is UNKNOWN
    assert out.covered == {"a"}


def test_chase_no_master_match_is_a_fixpoint():
    r, master, rules = _setup(
        [(5, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    out = chase({"a": 1}, ("a",), rules, master)
    assert out.unique
    assert out.covered == {"a"}
    assert not out.is_certain(r)
    assert out.uncovered(r) == ("b", "c", "d")


def test_chase_fired_trace_records_batches():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
        ],
    )
    out = chase({"a": 1}, ("a",), rules, master)
    assert [(rule.name, batch) for rule, _, batch in out.fired] == [
        ("r0", 1), ("r1", 2)
    ]
    assert out.batches == 2


def test_applicable_pairs_respects_region_semantics():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("c",), ("y",), "d", "z", None),  # premise not validated
        ],
    )
    assignment = {"a": 1, "b": UNKNOWN, "c": 3, "d": UNKNOWN}
    pairs = list(applicable_pairs(assignment, frozenset({"a"}), rules, master))
    assert [rule.name for rule, _ in pairs] == ["r0"]


def test_is_fixpoint_counts_same_value_pairs_as_applicable():
    """Maximality: an applicable same-value pair still extends Z, so a state
    with one is NOT a fixpoint (Sect. 3, condition (2))."""
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    t = Row(r, [1, 2, 0, 0])  # b already equals the master value
    assert not is_fixpoint(t, region, rules, master)
    done = Region.from_patterns(("a", "b"), [{"a": 1, "b": 2}])
    assert is_fixpoint(t, done, rules, master)


def test_chase_final_row_materialization():
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
            (("c",), ("y",), "d", "z", None),
        ],
    )
    out = chase({"a": 1}, ("a",), rules, master)
    row = out.final_row(r)
    assert row.values == (1, 2, 3, 4)
