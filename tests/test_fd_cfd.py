"""FDs and CFDs: structure, violation detection, compilation from rules."""

import pytest

from repro.constraints.cfd import CFD, cfds_from_rules, tuple_violations
from repro.constraints.fd import FD, all_hold
from repro.core.patterns import ANY, PatternTuple
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row


@pytest.fixture()
def schema():
    return RelationSchema("R", ["AC", "city", "phn"])


@pytest.fixture()
def relation(schema):
    r = Relation(schema)
    r.insert(["020", "Ldn", "1"])
    r.insert(["020", "Edi", "2"])   # violates AC -> city
    r.insert(["131", "Edi", "3"])
    return r


def test_fd_violations(relation):
    fd = FD("AC", "city")
    violations = fd.violations(relation)
    assert len(violations) == 1
    assert not fd.holds(relation)
    assert FD("phn", ("AC", "city")).holds(relation)


def test_fd_requires_attrs():
    with pytest.raises(ValueError):
        FD((), "city")


def test_all_hold(relation):
    assert all_hold([FD("phn", "city")], relation)
    assert not all_hold([FD("phn", "city"), FD("AC", "city")], relation)


def test_constant_cfd_single_tuple_violation(schema):
    """Example 1: AC = 020 -> city = Ldn."""
    cfd = CFD("AC", "city", PatternTuple({"AC": "020", "city": "Ldn"}))
    assert cfd.is_constant
    t1 = Row(schema, ["020", "Edi", "x"])  # the paper's inconsistent t1
    assert cfd.single_tuple_violation(t1)
    assert not cfd.single_tuple_violation(Row(schema, ["020", "Ldn", "x"]))
    assert not cfd.single_tuple_violation(Row(schema, ["131", "Edi", "x"]))


def test_variable_cfd_pair_violation(schema):
    cfd = CFD("AC", "city", PatternTuple({"AC": ANY, "city": ANY}))
    assert not cfd.is_constant
    r1 = Row(schema, ["020", "Ldn", "1"])
    r2 = Row(schema, ["020", "Edi", "2"])
    assert cfd.pair_violation(r1, r2)
    assert not cfd.pair_violation(r1, r1)


def test_cfd_violations_over_relation(relation):
    constant = CFD("AC", "city", PatternTuple({"AC": "020", "city": "Ldn"}))
    variable = CFD("AC", "city", PatternTuple({"AC": ANY, "city": ANY}))
    assert len(constant.violations(relation)) == 1
    assert len(variable.violations(relation)) == 1


def test_cfd_structure_validation():
    with pytest.raises(ValueError, match="must not occur"):
        CFD("a", "a", PatternTuple({"a": 1}))
    with pytest.raises(ValueError, match="missing"):
        CFD("a", "b", PatternTuple({"a": 1}))


def test_tuple_violations_helper(schema):
    cfds = [
        CFD("AC", "city", PatternTuple({"AC": "020", "city": "Ldn"})),
        CFD("AC", "city", PatternTuple({"AC": "131", "city": "Edi"})),
    ]
    t = Row(schema, ["020", "Edi", "x"])
    assert len(tuple_violations(t, cfds)) == 1


def test_cfds_from_rules_compile_master_evidence(example):
    cfds = cfds_from_rules(example.rules[:1], example.master)
    # One constant CFD per (rule, master tuple): zip -> AC.
    assert len(cfds) == 2
    assert all(c.is_constant for c in cfds)
    t1 = example.inputs["t1"]  # zip EH7 4AH but AC 020: violation
    assert len(tuple_violations(t1, cfds)) == 1


def test_cfds_from_rules_respects_cap_and_dedup(example):
    cfds = cfds_from_rules(example.rules, example.master, max_per_rule=1)
    per_rule: dict = {}
    for c in cfds:
        base = c.name.split("@")[0]
        per_rule[base] = per_rule.get(base, 0) + 1
    assert all(count == 1 for count in per_rule.values())
