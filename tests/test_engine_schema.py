"""Schemas and domains."""

import pytest

from repro.engine.schema import (
    Attribute,
    Domain,
    INT,
    RelationSchema,
    STRING,
    finite_domain,
)


def test_infinite_domain_contains_everything():
    assert INT.contains(42)
    assert INT.contains("anything")
    assert not INT.finite


def test_finite_domain_membership():
    d = finite_domain("phone_type", {1, 2})
    assert d.contains(1)
    assert d.contains(2)
    assert not d.contains(3)
    assert d.finite


def test_finite_domain_requires_values():
    with pytest.raises(ValueError):
        Domain("bad", finite=True)


def test_infinite_domain_rejects_value_enumeration():
    with pytest.raises(ValueError):
        Domain("bad", finite=False, values=frozenset({1}))


def test_schema_attribute_order_and_lookup():
    s = RelationSchema("R", ["a", "b", "c"])
    assert s.attributes == ("a", "b", "c")
    assert s.index_of("b") == 1
    assert "c" in s
    assert "z" not in s
    assert len(s) == 3


def test_schema_rejects_duplicate_attributes():
    with pytest.raises(ValueError):
        RelationSchema("R", ["a", "a"])


def test_schema_index_of_unknown_attribute_mentions_schema():
    s = RelationSchema("R", ["a"])
    with pytest.raises(KeyError, match="R"):
        s.index_of("missing")


def test_schema_accepts_typed_attribute_tuples():
    s = RelationSchema("R", [("a", INT), ("b", STRING)])
    assert s.domain_of("a") is INT
    assert s.domain_of("b") is STRING


def test_schema_accepts_attribute_objects():
    s = RelationSchema("R", [Attribute("a", INT)])
    assert s.domain_of("a") is INT


def test_schema_projection_preserves_order_and_domains():
    s = RelationSchema("R", [("a", INT), ("b", STRING), ("c", INT)])
    p = s.project(["c", "a"])
    assert p.attributes == ("c", "a")
    assert p.domain_of("c") is INT


def test_schema_projection_rejects_unknown_and_duplicates():
    s = RelationSchema("R", ["a", "b"])
    with pytest.raises(KeyError):
        s.project(["z"])
    with pytest.raises(ValueError):
        s.project(["a", "a"])


def test_schema_rename():
    s = RelationSchema("R", ["a", "b"])
    r = s.rename({"a": "x"})
    assert r.attributes == ("x", "b")


def test_schema_equality_and_hash():
    s1 = RelationSchema("R", [("a", INT)])
    s2 = RelationSchema("R", [("a", INT)])
    s3 = RelationSchema("R", [("a", STRING)])
    assert s1 == s2
    assert hash(s1) == hash(s2)
    assert s1 != s3
