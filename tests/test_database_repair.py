"""Batch database repair (future-work extension)."""

import pytest

from repro.datasets import make_dirty_dataset
from repro.engine.relation import Relation
from repro.repair.database_repair import repair_database
from repro.repair.region_search import comp_c_region


@pytest.fixture(scope="module")
def hosp_regions(hosp):
    return comp_c_region(hosp.rules, hosp.master, hosp.schema,
                         validate_patterns=256)


def _dirty_relation(hosp, duplicate_rate, noise, size=30, seed=21,
                    noise_attrs=None):
    data = make_dirty_dataset(hosp, size=size, duplicate_rate=duplicate_rate,
                              noise_rate=noise, seed=seed,
                              noise_attrs=noise_attrs)
    relation = Relation(hosp.schema)
    for dt in data:
        relation.insert(dt.dirty)
    return relation, data


def test_corroborated_tuples_fully_fixed(hosp, hosp_regions):
    """Master tuples with errors outside Z are repaired to the truth."""
    relation, data = _dirty_relation(
        hosp, duplicate_rate=1.0, noise=0.3,
        noise_attrs=tuple(a for a in hosp.schema.attributes
                          if a not in ("id", "mCode")),
    )
    repaired, report = repair_database(
        relation, hosp.rules, hosp.master, hosp.schema, regions=hosp_regions
    )
    assert report.total == len(data)
    assert report.fully_fixed == report.total
    for row, dt in zip(repaired, data):
        assert row == dt.clean


def test_uncorroborated_tuples_left_alone(hosp, hosp_regions):
    """Tuples whose Z values match no master projection are never touched.

    Noise is kept off the key attributes here: swap-noise on ``id`` can
    plant a *real* master id into a non-master tuple, which corroborates it
    under the stated assumption (see test_dirty_key_attrs_block_repair).
    """
    relation, data = _dirty_relation(
        hosp, duplicate_rate=0.0, noise=0.2,
        noise_attrs=tuple(a for a in hosp.schema.attributes
                          if a not in ("id", "mCode")),
    )
    repaired, report = repair_database(
        relation, hosp.rules, hosp.master, hosp.schema, regions=hosp_regions
    )
    assert report.fully_fixed == 0
    for row, dt in zip(repaired, data):
        assert row == dt.dirty  # unchanged, not guessed at


def test_dirty_key_attrs_block_repair(hosp, hosp_regions):
    """Errors inside Z de-corroborate the tuple: no repair, no damage."""
    relation, data = _dirty_relation(
        hosp, duplicate_rate=1.0, noise=0.9, noise_attrs=("id",)
    )
    repaired, report = repair_database(
        relation, hosp.rules, hosp.master, hosp.schema, regions=hosp_regions
    )
    # Only rows whose id survived uncorrupted (or collided with a real id)
    # can be corroborated; corrupted-id rows pass through unchanged.
    for row, dt in zip(repaired, data):
        if dt.dirty["id"] not in hosp.master.active_values("id"):
            assert row == dt.dirty


def test_report_accounting(hosp, hosp_regions):
    relation, _ = _dirty_relation(hosp, duplicate_rate=0.5, noise=0.2)
    _, report = repair_database(
        relation, hosp.rules, hosp.master, hosp.schema, regions=hosp_regions
    )
    assert report.total == len(relation)
    assert (report.fully_fixed + report.partially_fixed + report.untouched
            == report.total)
    assert report.corroborated >= report.fully_fixed
    assert "tuples" in report.describe()


def test_regions_computed_when_omitted(hosp):
    relation, _ = _dirty_relation(hosp, duplicate_rate=0.4, noise=0.1,
                                  size=10)
    repaired, report = repair_database(
        relation, hosp.rules, hosp.master, hosp.schema
    )
    assert len(repaired) == len(relation)


def test_no_wrong_values_ever(hosp, hosp_regions):
    """The certain-fix guarantee carries over: every change is correct,
    provided corroborated Z values are in fact correct (clean-key noise)."""
    relation, data = _dirty_relation(
        hosp, duplicate_rate=0.6, noise=0.3, size=40,
        noise_attrs=tuple(a for a in hosp.schema.attributes
                          if a not in ("id", "mCode")),
    )
    repaired, report = repair_database(
        relation, hosp.rules, hosp.master, hosp.schema, regions=hosp_regions
    )
    for row, dt in zip(repaired, data):
        for attr in hosp.schema.attributes:
            if row[attr] != dt.dirty[attr]:       # the repair changed it
                assert row[attr] == dt.clean[attr]  # ... correctly
