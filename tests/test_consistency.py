"""The consistency problem (Theorems 1 and 4)."""

import pytest

from repro.analysis.consistency import (
    AnalysisExplosion,
    check_pattern,
    check_region,
    is_consistent,
)
from repro.core.patterns import ANY, PatternTuple, neq
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema, finite_domain


def _setup(master_rows, rules_spec, domains=None):
    r_attrs = "abcd"
    domains = domains or {}
    r = RelationSchema("R", [(a, domains.get(a, INT)) for a in r_attrs])
    rm = RelationSchema("Rm", [(a, INT) for a in "wxyz"])
    master = Relation(rm)
    for row in master_rows:
        master.insert(row)
    rules = [
        EditingRule(lhs, lhs_m, rhs, rhs_m, PatternTuple(pattern or {}),
                    name=f"r{i}")
        for i, (lhs, lhs_m, rhs, rhs_m, pattern) in enumerate(rules_spec)
    ]
    return r, master, rules


def test_concrete_pattern_consistent():
    r, master, rules = _setup(
        [(1, 2, 3, 4)], [(("a",), ("w",), "b", "x", None)]
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    assert is_consistent(rules, master, region, r)


def test_concrete_pattern_inconsistent():
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4)], [(("a",), ("w",), "b", "x", None)]
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    report = check_region(rules, master, region, r)
    assert not report.consistent
    assert report.first_conflict() is not None


def test_wildcard_instantiation_finds_hidden_conflict():
    """The conflict only arises for a = 1; a wildcard pattern must find it."""
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4), (5, 7, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    region = Region.from_patterns(("a",), [{"a": ANY}])
    assert not is_consistent(rules, master, region, r)
    safe = Region.from_patterns(("a",), [{"a": 5}])
    assert is_consistent(rules, master, safe, r)


def test_negated_pattern_excludes_the_conflict():
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4), (5, 7, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    region = Region.from_patterns(("a",), [{"a": neq(1)}])
    assert is_consistent(rules, master, region, r)


def test_multi_pattern_tableau_checked_one_by_one():
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4), (5, 7, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    region = Region.from_patterns(("a",), [{"a": 5}, {"a": 1}])
    report = check_region(rules, master, region, r)
    assert [c.consistent for c in report.checks] == [True, False]
    assert not report.consistent


def test_unsatisfiable_pattern_is_vacuously_certain():
    one = finite_domain("one", {1})
    r, master, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
        domains={"a": one},
    )
    region = Region.from_patterns(("a",), [{"a": neq(1)}])  # no a satisfies
    report = check_region(rules, master, region, r)
    assert report.consistent and report.certain
    assert report.checks[0].instantiations == 0


def test_finite_domain_instantiation_is_bounded():
    two = finite_domain("two", {1, 5})
    r, master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
        domains={"a": two},
    )
    region = Region.from_patterns(("a",), [{"a": ANY}])
    report = check_region(rules, master, region, r)
    assert not report.consistent
    assert report.checks[0].instantiations <= 2


def test_instantiation_budget_raises():
    rules_spec = [
        (("a",), ("w",), "b", "x", {"a": 1, "c": 1, "d": 1}),
    ]
    rows = [(i, i, i, i) for i in range(10)]
    r, master, rules = _setup(rows, rules_spec)
    region = Region.from_patterns(
        ("a", "c", "d"), [{"a": ANY, "c": ANY, "d": ANY}]
    )
    with pytest.raises(AnalysisExplosion):
        check_region(rules, master, region, r, max_instantiations=3)


def test_coverage_failure_reports_uncovered_attrs():
    r, master, rules = _setup(
        [(1, 2, 3, 4)], [(("a",), ("w",), "b", "x", None)]
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    check = check_pattern(
        rules, master, region, region.tableau.patterns[0], r
    )
    assert check.consistent and not check.certain
    assert set(check.uncovered) == {"c", "d"}


def test_consistency_independent_of_coverage():
    """A region can be consistent without covering R (t4-style tuples)."""
    r, master, rules = _setup(
        [(5, 2, 3, 4)], [(("a",), ("w",), "b", "x", None)]
    )
    region = Region.from_patterns(("a",), [{"a": 1}])  # never matches master
    report = check_region(rules, master, region, r)
    assert report.consistent
    assert not report.certain


def test_report_describe_is_readable():
    r, master, rules = _setup(
        [(1, 2, 3, 4)], [(("a",), ("w",), "b", "x", None)]
    )
    region = Region.from_patterns(("a",), [{"a": 1}])
    text = check_region(rules, master, region, r).describe()
    assert "Region" in text and "consistent" in text
