"""Regions (Z, Tc), marking, and the ext(Z, Tc, φ) extension."""

import pytest

from repro.core.patterns import ANY, PatternTuple, neq
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row


@pytest.fixture()
def schema():
    return RelationSchema("R", ["a", "b", "c", "d"])


def test_region_construction_and_marking(schema):
    region = Region.from_patterns(("a", "b"), [{"a": 1, "b": ANY}])
    assert region.marks(Row(schema, [1, 9, 0, 0]))
    assert not region.marks(Row(schema, [2, 9, 0, 0]))


def test_region_from_value_tuples(schema):
    region = Region.from_patterns(("a", "b"), [(1, 2), (3, 4)])
    assert len(region.tableau) == 2
    assert region.marks(Row(schema, [3, 4, 0, 0]))


def test_region_duplicate_attrs_rejected():
    with pytest.raises(ValueError):
        Region(("a", "a"))


def test_region_tableau_attr_mismatch_rejected():
    from repro.core.patterns import PatternTableau

    tableau = PatternTableau(("b", "a"), [PatternTuple({"b": 1, "a": 2})])
    with pytest.raises(ValueError):
        Region(("a", "b"), tableau)


def test_extension_adds_wildcard_column(schema):
    region = Region.from_patterns(("a",), [{"a": 1}])
    rule = EditingRule(("a",), ("x",), "b", "y")
    extended = region.extend(rule)
    assert extended.attrs == ("a", "b")
    pattern = extended.tableau.patterns[0]
    assert pattern["a"].is_constant
    assert pattern["b"].is_wildcard


def test_extension_rejects_protected_target(schema):
    region = Region.from_patterns(("a", "b"), [{"a": 1, "b": 2}])
    rule = EditingRule(("a",), ("x",), "b", "y")
    with pytest.raises(ValueError, match="already in Z"):
        region.extend(rule)


def test_extension_preserves_marking(schema):
    """ext only widens: marked tuples stay marked."""
    region = Region.from_patterns(("a",), [{"a": neq(0)}])
    rule = EditingRule(("a",), ("x",), "c", "y")
    extended = region.extend(rule)
    t = Row(schema, [5, 0, 0, 0])
    assert region.marks(t)
    assert extended.marks(t)


def test_extend_attrs_batch(schema):
    region = Region.from_patterns(("a",), [{"a": 1}])
    extended = region.extend_attrs(["c", "d", "a"])
    assert extended.attrs == ("a", "c", "d")


def test_single_pattern_regions_split(schema):
    region = Region.from_patterns(("a",), [{"a": 1}, {"a": 2}])
    singles = region.single_pattern_regions()
    assert len(singles) == 2
    assert all(len(s.tableau) == 1 for s in singles)


def test_concrete_and_positive_flags():
    assert Region.from_patterns(("a",), [{"a": 1}]).is_concrete
    assert not Region.from_patterns(("a",), [{"a": neq(1)}]).is_concrete
    assert Region.from_patterns(("a",), [{"a": ANY}]).is_positive


def test_running_example_regions_mark_expected_tuples(example):
    assert example.regions["ZAH"].marks(example.inputs["t3"])
    assert example.regions["Zzm"].marks(example.inputs["t1"])
    assert example.regions["Zzmi"].marks(example.inputs["t1"])
    assert not example.regions["Zzmi"].marks(example.inputs["t4"])
