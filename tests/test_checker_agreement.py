"""Cross-checker agreement: the direct-fix PTIME analysis vs the general
instantiation-based checker, randomized (both implement Theorem 5's setting
when rules are direct and single-step)."""

import random

import pytest

from repro.analysis.consistency import is_consistent
from repro.analysis.coverage import is_certain_region
from repro.analysis.direct_fixes import (
    is_direct_certain_region,
    is_direct_consistent,
)
from repro.core.patterns import PatternTuple
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema

R_ATTRS = ("a", "b", "c")
M_ATTRS = ("w", "x", "y")


def _random_direct_instance(rng):
    """Rules with lhs ⊆ Z and Xp ⊆ lhs, so the two semantics coincide on
    consistency; plus a concrete single-pattern region over Z."""
    master = Relation(RelationSchema("Rm", [(m, INT) for m in M_ATTRS]))
    for _ in range(rng.randint(1, 5)):
        master.insert([rng.randint(0, 2) for _ in M_ATTRS])
    z = ("a", "b")
    rules = []
    for i in range(rng.randint(1, 4)):
        lhs_size = rng.randint(1, 2)
        lhs = tuple(rng.sample(z, lhs_size))
        rhs = rng.choice([x for x in R_ATTRS if x not in lhs and x not in z])
        lhs_m = tuple(rng.choice(M_ATTRS) for _ in lhs)
        rhs_m = rng.choice(M_ATTRS)
        pattern = {}
        if rng.random() < 0.5:
            guard_attr = rng.choice(lhs)
            pattern[guard_attr] = rng.randint(0, 2)
        rules.append(
            EditingRule(lhs, lhs_m, rhs, rhs_m, PatternTuple(pattern),
                        name=f"r{i}")
        )
    pattern = PatternTuple({a: rng.randint(0, 2) for a in z})
    schema = RelationSchema("R", [(a, INT) for a in R_ATTRS])
    region = Region(z, None)
    region.tableau.add(pattern)
    return schema, master, rules, region


@pytest.mark.parametrize("seed", range(40))
def test_direct_and_general_consistency_agree(seed):
    rng = random.Random(seed)
    schema, master, rules, region = _random_direct_instance(rng)
    direct = is_direct_consistent(rules, master, region, schema)
    general = is_consistent(rules, master, region, schema)
    # With rhs outside Z and single-step coverage only, the two notions of
    # consistency coincide (no region extension can enable further rules:
    # every rule's lhs is already inside Z).
    assert direct == general, (rules, master.rows, region)


@pytest.mark.parametrize("seed", range(40))
def test_direct_and_general_coverage_agree(seed):
    rng = random.Random(100 + seed)
    schema, master, rules, region = _random_direct_instance(rng)
    direct = is_direct_certain_region(rules, master, region, schema)
    general = is_certain_region(rules, master, region, schema)
    assert direct == general, (rules, master.rows, region)
