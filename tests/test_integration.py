"""Cross-module integration tests: the full pipeline on both datasets."""

import pytest

from repro.analysis.coverage import is_certain_region
from repro.core.fixes import chase
from repro.datasets import make_dirty_dataset
from repro.engine.values import NULL
from repro.metrics import aggregate, evaluate_repair
from repro.repair.certainfix import CertainFix
from repro.repair.oracle import SimulatedUser
from repro.repair.region_search import comp_c_region
from repro.repair.transfix import transfix


@pytest.mark.parametrize("bundle_name", ["hosp", "dblp"])
def test_full_pipeline_precision_one(bundle_name, request):
    """dataset → dirty stream → regions → monitoring → metrics."""
    bundle = request.getfixturevalue(bundle_name)
    data = make_dirty_dataset(bundle, size=30, duplicate_rate=0.4,
                              noise_rate=0.25, seed=17)
    engine = CertainFix(bundle.rules, bundle.master, bundle.schema)
    evaluations = []
    for dt in data:
        session = engine.fix(dt.dirty, SimulatedUser(dt.clean))
        assert session.completed
        evaluations.append(
            evaluate_repair(dt.dirty, dt.clean, session.final,
                            session.attrs_asserted_by_user)
        )
    metrics = aggregate(evaluations)
    assert metrics.recall_t == 1.0
    assert metrics.precision_a == 1.0
    assert metrics.wrong_attrs == 0


@pytest.mark.parametrize("bundle_name", ["hosp", "dblp"])
def test_transfix_agrees_with_chase(bundle_name, request):
    """The Fig. 5 worklist and the batched chase assign identical values."""
    bundle = request.getfixturevalue(bundle_name)
    regions = comp_c_region(bundle.rules, bundle.master, bundle.schema)
    z0 = regions[0].region.attrs
    data = make_dirty_dataset(bundle, size=20, duplicate_rate=0.7,
                              noise_rate=0.2, seed=18)
    for dt in data:
        # Assert Z with clean values, as CertainFix round 1 would.
        row = dt.dirty.with_values({a: dt.clean[a] for a in z0})
        chased = chase(row, z0, bundle.rules, bundle.master)
        if not chased.unique:
            continue
        fixed = transfix(row, z0, bundle.rules, bundle.master)
        assert set(fixed.validated) == set(chased.covered)
        for attr in fixed.validated:
            assert fixed.row[attr] == chased.assignment[attr]


def test_master_projection_regions_are_certain_end_to_end(hosp):
    """Every region CompCRegion hands to CertainFix passes the formal
    coverage checker — the paper's soundness chain."""
    regions = comp_c_region(hosp.rules, hosp.master, hosp.schema,
                            max_regions=2, validate_patterns=16)
    for candidate in regions:
        sample = candidate.region.restrict_tableau(
            candidate.region.tableau.patterns[:3]
        )
        assert is_certain_region(hosp.rules, hosp.master, sample, hosp.schema)


def test_monitoring_enriches_null_heavy_tuples(hosp):
    """A tuple arriving with only the region attributes filled is completed
    entirely from master data (the paper's enrichment use case)."""
    source = hosp.master.first()
    sparse = source.with_values({
        a: NULL for a in hosp.schema.attributes if a not in ("id", "mCode")
    })
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema)
    session = engine.fix(sparse, SimulatedUser(source))
    assert session.round_count == 1
    assert session.final == source
    # Everything but the two asserted attributes came from master data.
    assert len(session.attrs_fixed_by_rules) == len(hosp.schema) - 2


def test_bdd_cache_reuse_across_heterogeneous_tuples(dblp):
    """The cache must help streams mixing master / known-venue / fresh
    tuples without ever changing outcomes."""
    data = make_dirty_dataset(dblp, size=40, duplicate_rate=0.3,
                              noise_rate=0.25, seed=19)
    plain = CertainFix(dblp.rules, dblp.master, dblp.schema, use_bdd=False)
    cached = CertainFix(dblp.rules, dblp.master, dblp.schema, use_bdd=True)
    for dt in data:
        s_plain = plain.fix(dt.dirty, SimulatedUser(dt.clean))
        s_cached = cached.fix(dt.dirty, SimulatedUser(dt.clean))
        assert s_plain.final == s_cached.final == dt.clean
    assert cached.cache_stats.hit_rate > 0.5


def test_discovered_rules_monitor_end_to_end(hosp):
    """Mined rules power the same monitoring loop as hand-written ones."""
    from repro.discovery import discover_editing_rules, rules_only

    mined = rules_only(discover_editing_rules(hosp.master, max_lhs_size=2))
    engine = CertainFix(mined, hosp.master, hosp.schema)
    data = make_dirty_dataset(hosp, size=10, duplicate_rate=1.0,
                              noise_rate=0.2, seed=20)
    for dt in data:
        session = engine.fix(dt.dirty, SimulatedUser(dt.clean))
        assert session.final == dt.clean


def test_database_repair_then_monitoring_leftovers(hosp):
    """Batch-repair a relation, then monitor what batch repair could not
    certify — the two modes compose."""
    from repro.engine.relation import Relation
    from repro.repair.database_repair import repair_database

    data = make_dirty_dataset(
        hosp, size=30, duplicate_rate=0.5, noise_rate=0.25, seed=22,
        noise_attrs=tuple(a for a in hosp.schema.attributes
                          if a not in ("id", "mCode")),
    )
    relation = Relation(hosp.schema)
    for dt in data:
        relation.insert(dt.dirty)
    repaired, report = repair_database(
        relation, hosp.rules, hosp.master, hosp.schema
    )
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema)
    for row, dt, (fixed_row, _, status) in zip(
        repaired, data, report.per_tuple
    ):
        if status != "certain":
            session = engine.fix(row, SimulatedUser(dt.clean))
            assert session.final == dt.clean
        else:
            assert row == dt.clean
