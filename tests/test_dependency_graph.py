"""The rule dependency graph (Sect. 5.1, Fig. 4)."""

from repro.analysis.dependency_graph import DependencyGraph
from repro.core.patterns import PatternTuple
from repro.core.rules import EditingRule


def _rule(lhs, rhs, pattern=None, name=None):
    lhs = (lhs,) if isinstance(lhs, str) else tuple(lhs)
    return EditingRule(
        lhs, tuple("m" + a for a in lhs), rhs, "m" + rhs,
        PatternTuple(pattern or {}), name=name,
    )


def test_edges_follow_rhs_to_premise():
    rules = [_rule("a", "b", name="ab"), _rule("b", "c", name="bc")]
    g = DependencyGraph(rules)
    assert len(g) == 2
    assert g.edge_count == 1
    (edge,) = g.edges()
    assert edge[0].name == "ab" and edge[1].name == "bc"


def test_pattern_attrs_create_edges_too():
    rules = [
        _rule("a", "b", name="ab"),
        _rule("c", "d", pattern={"b": 1}, name="cd"),
    ]
    g = DependencyGraph(rules)
    assert g.edge_count == 1
    assert g.successors(0) == [1]


def test_cycles_allowed_and_detected():
    rules = [_rule("a", "b"), _rule("b", "a")]
    g = DependencyGraph(rules)
    assert g.has_cycle
    acyclic = DependencyGraph([_rule("a", "b"), _rule("b", "c")])
    assert not acyclic.has_cycle


def test_find_cycle_returns_witness_names():
    rules = [
        _rule("a", "b", name="ab"),
        _rule("b", "c", name="bc"),
        _rule("c", "a", name="ca"),
        _rule("d", "e", name="de"),  # off-cycle noise
    ]
    cycle = DependencyGraph(rules).find_cycle()
    assert cycle is not None
    assert set(cycle) == {"ab", "bc", "ca"}
    # Consecutive entries are real edges (closing edge included).
    names = {rule.name: rule for rule in rules}
    for u, v in zip(cycle, cycle[1:] + cycle[:1]):
        assert names[u].rhs in names[v].premise_attrs


def test_find_cycle_none_when_acyclic():
    g = DependencyGraph([_rule("a", "b"), _rule("b", "c")])
    assert g.find_cycle() is None


def test_stratification_topological():
    rules = [_rule("b", "c", name="2"), _rule("a", "b", name="1")]
    g = DependencyGraph(rules)
    layers = g.stratification()
    flat = [g.rules[i].name for layer in layers for i in layer]
    assert flat.index("1") < flat.index("2")


def test_roots():
    rules = [_rule("a", "b"), _rule("b", "c")]
    g = DependencyGraph(rules)
    assert g.roots() == [0]


def test_running_example_fig4_edges(example):
    """Fig. 4: φ1 (zip→AC) enables φ6-φ8 (AC ∈ lhs) and φ9 (AC ∈ lhs/Xp)."""
    g = DependencyGraph(example.rules)
    by_name = {rule.name: i for i, rule in enumerate(g.rules)}
    successors = {
        g.rules[i].name for i in g.successors(by_name["phi1"])
    }
    assert {"phi6", "phi7", "phi8", "phi9"} <= successors
    # φ8 (→zip) enables the zip-keyed rules φ1-φ3.
    successors8 = {g.rules[i].name for i in g.successors(by_name["phi8"])}
    assert {"phi1", "phi2", "phi3"} <= successors8


def test_to_networkx_preserves_names(example):
    g = DependencyGraph(example.rules)
    nx_graph = g.to_networkx()
    assert set(nx_graph.nodes) == {rule.name for rule in example.rules}
    assert nx_graph.number_of_edges() == g.edge_count
