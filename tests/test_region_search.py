"""CompCRegion and GRegion (Exp-1(1) structure)."""

from repro.analysis.coverage import is_certain_region
from repro.repair.region_search import comp_c_region, g_region


def test_comp_c_region_hosp_size_two(hosp):
    """The paper's headline: HOSP certain region of size 2 = (id, mCode)."""
    candidates = comp_c_region(hosp.rules, hosp.master, hosp.schema)
    assert candidates
    best = candidates[0]
    assert set(best.region.attrs) == {"id", "mCode"}


def test_comp_c_region_dblp_size_five(dblp):
    """DBLP: Z = (ptitle, a1, a2, type, pages), size 5 as in the paper."""
    candidates = comp_c_region(dblp.rules, dblp.master, dblp.schema)
    best = candidates[0]
    assert set(best.region.attrs) == {"ptitle", "a1", "a2", "type", "pages"}


def test_comp_c_region_emits_only_certain_regions(hosp):
    """Every returned region must pass the Sect. 4 coverage checker."""
    candidates = comp_c_region(
        hosp.rules, hosp.master, hosp.schema, max_regions=3,
        validate_patterns=8,
    )
    for candidate in candidates:
        sample = candidate.region.restrict_tableau(
            candidate.region.tableau.patterns[:2]
        )
        assert is_certain_region(
            hosp.rules, hosp.master, sample, hosp.schema
        ), candidate.describe()


def test_comp_c_region_quality_ordering(hosp):
    candidates = comp_c_region(hosp.rules, hosp.master, hosp.schema)
    qualities = [c.quality for c in candidates]
    assert qualities == sorted(qualities, reverse=True)
    sizes = [c.size for c in candidates]
    assert sizes[0] == min(sizes)  # smaller Z ranks higher


def test_comp_c_region_tableau_is_master_projected(hosp):
    best = comp_c_region(hosp.rules, hosp.master, hosp.schema)[0]
    ids = hosp.master.active_values("id")
    for pattern in best.region.tableau.patterns[:5]:
        assert pattern["id"].value in ids


def test_g_region_hosp_size_four(hosp):
    """The greedy baseline needs 4 attributes on HOSP, as in the paper."""
    greedy = g_region(hosp.rules, hosp.master, hosp.schema)
    assert greedy is not None
    assert len(greedy.region.attrs) == 4
    assert {"id", "mCode"} <= set(greedy.region.attrs)


def test_g_region_never_beats_comp_c_region(hosp, dblp):
    for bundle in (hosp, dblp):
        best = comp_c_region(bundle.rules, bundle.master, bundle.schema)[0]
        greedy = g_region(bundle.rules, bundle.master, bundle.schema)
        assert len(greedy.region.attrs) >= len(best.region.attrs)


def test_g_region_output_is_certain(hosp):
    greedy = g_region(hosp.rules, hosp.master, hosp.schema)
    sample = greedy.region.restrict_tableau(greedy.region.tableau.patterns[:2])
    assert is_certain_region(hosp.rules, hosp.master, sample, hosp.schema)


def test_candidate_describe(hosp):
    candidate = comp_c_region(hosp.rules, hosp.master, hosp.schema)[0]
    text = candidate.describe()
    assert "Z=" in text and "quality" in text
