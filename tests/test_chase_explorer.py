"""The exhaustive chase explorer and its agreement with the batched checker."""

import pytest

from repro.analysis.chase import ChaseExplosion, explore_fixes
from repro.core.fixes import chase
from repro.core.patterns import PatternTuple
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema


def _setup(master_rows, rules_spec):
    rm = RelationSchema("Rm", [(a, INT) for a in "wxyz"])
    master = Relation(rm)
    for row in master_rows:
        master.insert(row)
    rules = [
        EditingRule(lhs, lhs_m, rhs, rhs_m, PatternTuple(pattern or {}),
                    name=f"r{i}")
        for i, (lhs, lhs_m, rhs, rhs_m, pattern) in enumerate(rules_spec)
    ]
    return master, rules


def test_explorer_single_fixpoint():
    master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("b",), ("x",), "c", "y", None),
        ],
    )
    result = explore_fixes({"a": 1}, ("a",), rules, master)
    assert result.unique
    (assignment,) = result.final_assignments
    assert assignment == {"a": 1, "b": 2, "c": 3}


def test_explorer_enumerates_divergent_fixpoints():
    master, rules = _setup(
        [(1, 2, 3, 4), (1, 9, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    result = explore_fixes({"a": 1}, ("a",), rules, master)
    assert not result.unique
    values = sorted(a["b"] for a in result.final_assignments)
    assert values == [2, 9]


def test_explorer_order_dependent_divergence():
    master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("a",), ("w",), "c", "y", None),
            (("c",), ("y",), "b", "z", None),
        ],
    )
    result = explore_fixes({"a": 1}, ("a",), rules, master)
    assert not result.unique
    assert sorted(a["b"] for a in result.final_assignments) == [2, 4]


def test_explorer_agrees_with_batched_on_paper_example(example):
    for name, region_key in (("t3", "ZAH"), ("t3", "ZAHZ"), ("t1", "Zzm")):
        region = example.regions[region_key]
        t = example.inputs[name]
        if not region.marks(t):
            continue
        batched = chase(t, region.attrs, example.rules, example.master)
        explored = explore_fixes(t, region.attrs, example.rules, example.master)
        assert batched.unique == explored.unique, (name, region_key)
        if batched.unique:
            signature = {
                a: v for a, v in batched.assignment.items()
                if a in batched.covered
            }
            (final,) = explored.final_assignments
            for attr, value in signature.items():
                assert final[attr] == value


def test_explorer_state_budget():
    master, rules = _setup(
        [(1, 2, 3, 4)],
        [
            (("a",), ("w",), "b", "x", None),
            (("a",), ("w",), "c", "y", None),
            (("a",), ("w",), "d", "z", None),
        ],
    )
    with pytest.raises(ChaseExplosion):
        explore_fixes({"a": 1}, ("a",), rules, master, max_states=2)


def test_explorer_counts_states():
    master, rules = _setup(
        [(1, 2, 3, 4)],
        [(("a",), ("w",), "b", "x", None)],
    )
    result = explore_fixes({"a": 1}, ("a",), rules, master)
    assert result.states_visited == 2  # start + after firing
