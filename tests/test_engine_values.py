"""The NULL / UNKNOWN sentinels."""

import copy
import pickle

from repro.engine.values import NULL, UNKNOWN, NullType, UnknownType, is_null, is_unknown


def test_singletons():
    assert NullType() is NULL
    assert UnknownType() is UNKNOWN
    assert NULL is not UNKNOWN


def test_falsiness():
    assert not NULL
    assert not UNKNOWN


def test_predicates():
    assert is_null(NULL) and not is_null(UNKNOWN) and not is_null(None)
    assert is_unknown(UNKNOWN) and not is_unknown(NULL)


def test_repr():
    assert repr(NULL) == "NULL"
    assert repr(UNKNOWN) == "UNKNOWN"


def test_null_is_not_none_or_zero():
    assert NULL is not None
    assert NULL != 0
    assert NULL != ""


def test_pickle_roundtrip_preserves_identity():
    assert pickle.loads(pickle.dumps(NULL)) is NULL
    assert pickle.loads(pickle.dumps(UNKNOWN)) is UNKNOWN


def test_copy_preserves_identity():
    assert copy.copy(NULL) is NULL
    assert copy.deepcopy([NULL, UNKNOWN]) == [NULL, UNKNOWN]
    assert copy.deepcopy([NULL])[0] is NULL
