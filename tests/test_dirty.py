"""The dirty-data generator (d%, n%, |Dm| controls)."""

import random

from repro.datasets.dirty import _corrupt, _typo, make_dirty_dataset
from repro.engine.values import NULL


def test_duplicate_rate_controls_master_fraction(hosp):
    for d in (0.0, 0.5, 1.0):
        data = make_dirty_dataset(hosp, size=120, duplicate_rate=d,
                                  noise_rate=0.2, seed=1)
        assert abs(data.master_fraction - d) < 0.15


def test_master_tuples_really_come_from_master(hosp):
    data = make_dirty_dataset(hosp, size=60, duplicate_rate=1.0,
                              noise_rate=0.0, seed=2)
    master_values = {row.values for row in hosp.master}
    for dt in data:
        assert dt.clean.values in master_values
        assert dt.dirty == dt.clean  # zero noise


def test_noise_rate_controls_error_density(hosp):
    low = make_dirty_dataset(hosp, size=80, duplicate_rate=0.3,
                             noise_rate=0.05, seed=3)
    high = make_dirty_dataset(hosp, size=80, duplicate_rate=0.3,
                              noise_rate=0.5, seed=3)

    def error_density(data):
        errors = sum(len(dt.erroneous_attrs) for dt in data)
        return errors / (len(data) * 19)

    assert error_density(low) < 0.12
    assert 0.3 < error_density(high) < 0.65


def test_dirty_tuples_expose_ground_truth(hosp):
    data = make_dirty_dataset(hosp, size=20, duplicate_rate=0.5,
                              noise_rate=0.3, seed=4)
    for dt in data:
        for attr in dt.erroneous_attrs:
            assert dt.dirty[attr] != dt.clean[attr]
        assert dt.is_erroneous == bool(dt.erroneous_attrs)


def test_noise_attrs_restriction(hosp):
    data = make_dirty_dataset(hosp, size=50, duplicate_rate=0.5,
                              noise_rate=0.6, seed=5,
                              noise_attrs=("city", "zip"))
    for dt in data:
        assert set(dt.erroneous_attrs) <= {"city", "zip"}


def test_generation_deterministic(hosp):
    a = make_dirty_dataset(hosp, size=30, duplicate_rate=0.3,
                           noise_rate=0.2, seed=6)
    b = make_dirty_dataset(hosp, size=30, duplicate_rate=0.3,
                           noise_rate=0.2, seed=6)
    assert [dt.dirty.values for dt in a] == [dt.dirty.values for dt in b]


def test_typo_changes_strings_and_ints():
    rng = random.Random(7)
    for _ in range(50):
        assert _typo("hello", rng) != ""
        assert isinstance(_typo(42, rng), int)
        assert _typo(42, rng) != 42


def test_corrupt_guarantees_difference(hosp):
    rng = random.Random(8)
    for _ in range(50):
        value = _corrupt("Springfield", "city", hosp.master, rng)
        assert value != "Springfield"


def test_corrupt_can_produce_nulls(hosp):
    rng = random.Random(9)
    values = {
        _corrupt("Springfield", "city", hosp.master, rng) for _ in range(200)
    }
    assert NULL in values


def test_erroneous_count_and_len(hosp):
    data = make_dirty_dataset(hosp, size=25, duplicate_rate=0.3,
                              noise_rate=0.4, seed=10)
    assert len(data) == 25
    assert 0 < data.erroneous_count <= 25
