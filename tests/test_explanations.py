"""Provenance explanations on chase and TransFix results."""

from repro.core.fixes import chase
from repro.repair.transfix import transfix


def test_chase_explain_names_rules_and_masters(example):
    out = chase(
        example.inputs["t1"], ("zip", "phn", "type"),
        example.rules, example.master,
    )
    text = out.explain()
    assert "validated by the user: ['phn', 'type', 'zip']" in text
    assert "FN := 'Robert' via phi4" in text
    assert "AC := '131' via phi1" in text
    assert "'zip': 'EH7 4AH'" in text  # the master match key is shown


def test_chase_explain_flags_divergence(example):
    out = chase(
        example.inputs["t3"], example.regions["ZAHZ"].attrs,
        example.rules, example.master,
    )
    assert "DIVERGENT" in out.explain()


def test_chase_explain_no_rules(example):
    out = chase(
        example.inputs["t4"], ("zip",), example.rules, example.master
    )
    assert "no rule applied" in out.explain()


def test_transfix_explain(example):
    result = transfix(
        example.inputs["t1"], {"zip"}, example.rules, example.master
    )
    text = result.explain()
    assert "AC := '131' via phi1" in text
    assert "str := '51 Elm Row' via phi2" in text


def test_transfix_explain_empty(example):
    result = transfix(
        example.inputs["t4"], {"zip"}, example.rules, example.master
    )
    assert result.explain() == "no rule applied"
