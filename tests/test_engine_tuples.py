"""Rows: the t[X] access notation and immutability-by-derivation."""

import pytest

from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row


@pytest.fixture()
def schema():
    return RelationSchema("R", ["a", "b", "c"])


def test_row_from_mapping_and_sequence(schema):
    r1 = Row(schema, {"a": 1, "b": 2, "c": 3})
    r2 = Row(schema, [1, 2, 3])
    assert r1 == r2


def test_row_mapping_missing_attribute_raises(schema):
    with pytest.raises(KeyError, match="'c'"):
        Row(schema, {"a": 1, "b": 2})


def test_row_sequence_arity_checked(schema):
    with pytest.raises(ValueError):
        Row(schema, [1, 2])


def test_single_and_list_access(schema):
    r = Row(schema, [1, 2, 3])
    assert r["b"] == 2
    assert r[["c", "a"]] == (3, 1)  # the paper's t[X] on a list


def test_with_values_returns_new_row(schema):
    r = Row(schema, [1, 2, 3])
    r2 = r.with_values({"b": 99})
    assert r["b"] == 2
    assert r2["b"] == 99
    assert r2["a"] == 1


def test_project(schema):
    r = Row(schema, [1, 2, 3])
    p = r.project(["c", "b"])
    assert p.values == (3, 2)
    assert p.schema.attributes == ("c", "b")


def test_agrees_with_cross_schema(schema):
    other_schema = RelationSchema("S", ["x", "y"])
    r = Row(schema, [1, 2, 3])
    s = Row(other_schema, [2, 1])
    assert r.agrees_with(s, ["a", "b"], ["y", "x"])
    assert not r.agrees_with(s, ["a", "b"], ["x", "y"])


def test_diff(schema):
    r1 = Row(schema, [1, 2, 3])
    r2 = Row(schema, [1, 9, 3])
    assert r1.diff(r2) == ("b",)


def test_diff_requires_same_attributes(schema):
    r1 = Row(schema, [1, 2, 3])
    other = Row(RelationSchema("S", ["x", "y", "z"]), [1, 2, 3])
    with pytest.raises(ValueError):
        r1.diff(other)


def test_equality_and_hash(schema):
    r1 = Row(schema, [1, 2, 3])
    r2 = Row(schema, [1, 2, 3])
    assert r1 == r2
    assert hash(r1) == hash(r2)
    assert len({r1, r2}) == 1


def test_to_dict(schema):
    assert Row(schema, [1, 2, 3]).to_dict() == {"a": 1, "b": 2, "c": 3}


def test_rebind(schema):
    renamed = schema.rename({"a": "x"})
    r = Row(schema, [1, 2, 3]).rebind(renamed)
    assert r["x"] == 1
