"""Backend equivalence: memory and sqlite masters produce identical fixes.

The acceptance bar for the MasterStore seam: per backend, fix output is
bit-identical on the running example, HOSP and DBLP — including after
master inserts/deletes mid-batch — and a master mutation bumps ``version``,
rebuilds the shared regions/indexes/BDD/memo caches, and makes subsequent
fixes reflect the new master.
"""

import random

import pytest

from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.store import InMemoryStore, SqliteStore
from repro.engine.tuples import Row
from repro.repair.batch import BatchRepairEngine
from repro.repair.certainfix import CertainFix
from repro.repair.oracle import SimulatedUser


def _pairs(data):
    return [(dt.dirty, SimulatedUser(dt.clean)) for dt in data]


def _assert_sessions_identical(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.final == b.final
        assert a.validated == b.validated
        assert a.round_count == b.round_count
        assert a.completed == b.completed
        assert [r.asserted for r in a.rounds] == [r.asserted for r in b.rounds]
        assert [r.fixed_by_rules for r in a.rounds] == \
            [r.fixed_by_rules for r in b.rounds]


# -- dataset bundles ----------------------------------------------------------


@pytest.mark.parametrize("use_bdd", [False, True])
def test_backends_identical_on_hosp(hosp, hosp_dirty, use_bdd):
    memory = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                               use_bdd=use_bdd)
    sqlite = BatchRepairEngine(hosp.rules,
                               SqliteStore.from_relation(hosp.master),
                               hosp.schema, use_bdd=use_bdd)
    r_mem = memory.run(_pairs(hosp_dirty))
    r_sql = sqlite.run(_pairs(hosp_dirty))
    _assert_sessions_identical(r_mem.sessions, r_sql.sessions)
    assert r_mem.report.completed == r_sql.report.completed
    assert r_mem.report.incomplete == r_sql.report.incomplete


@pytest.mark.parametrize("use_bdd", [False, True])
def test_backends_identical_on_dblp(dblp, dblp_dirty, use_bdd):
    memory = BatchRepairEngine(dblp.rules, dblp.master, dblp.schema,
                               use_bdd=use_bdd)
    sqlite = BatchRepairEngine(dblp.rules,
                               SqliteStore.from_relation(dblp.master),
                               dblp.schema, use_bdd=use_bdd)
    r_mem = memory.run(_pairs(dblp_dirty))
    r_sql = sqlite.run(_pairs(dblp_dirty))
    _assert_sessions_identical(r_mem.sessions, r_sql.sessions)
    assert r_mem.report.completed == r_sql.report.completed


def test_backends_identical_on_running_example(example):
    workload = []
    for key, item in (("s1", "CD"), ("s2", "BOOK")):
        s = example.masters[key]
        clean = Row(example.schema, {
            "FN": s["FN"], "LN": s["LN"], "AC": s["AC"], "phn": s["Mphn"],
            "type": 2, "str": s["str"], "city": s["city"], "zip": s["zip"],
            "item": item,
        })
        workload.append((clean.with_values({"FN": "Bobby", "city": "???"}),
                         clean))
        workload.append((clean, clean))
    memory = BatchRepairEngine(example.rules, example.master, example.schema,
                               use_bdd=False)
    sqlite = BatchRepairEngine(example.rules,
                               SqliteStore.from_relation(example.master),
                               example.schema, use_bdd=False)
    r_mem = memory.run((d, SimulatedUser(c)) for d, c in workload)
    r_sql = sqlite.run((d, SimulatedUser(c)) for d, c in workload)
    _assert_sessions_identical(r_mem.sessions, r_sql.sessions)
    for session, (_, clean) in zip(r_sql.sessions, workload):
        assert session.final == clean


def test_backends_identical_after_insert_mid_batch(hosp, hosp_dirty):
    """Split the workload, insert a fresh master tuple between the halves:
    both backends must bump, invalidate, and keep producing identical
    sessions against the grown master."""
    data = list(hosp_dirty)
    half = len(data) // 2
    donor = hosp.master.row_at(0)
    fresh = donor.with_values({hosp.schema.attributes[0]: "ZZ-NEW-KEY"})

    results = {}
    for name, master in (
        ("memory", InMemoryStore(Relation(hosp.schema, hosp.master))),
        ("sqlite", SqliteStore.from_relation(hosp.master)),
    ):
        engine = BatchRepairEngine(hosp.rules, master, hosp.schema)
        first = engine.run(_pairs(data[:half]))
        assert first.report.cache_invalidations == 0
        version_before = master.version
        master.insert(fresh)
        assert master.version > version_before
        second = engine.run(_pairs(data[half:]))
        assert second.report.cache_invalidations == 1
        assert second.report.master_version == master.version
        results[name] = first.sessions + second.sessions

    _assert_sessions_identical(results["memory"], results["sqlite"])


# -- a tiny observable scenario: updates change fix outcomes ------------------


def _tiny_bundle():
    schema = RelationSchema("T", ["key", "val"])
    rules = [EditingRule(("key",), ("key",), "val", "val", name="key->val")]
    rows = [Row(schema, ("k1", "v1")), Row(schema, ("k2", "v2"))]
    return schema, rules, rows


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_master_update_changes_subsequent_fixes(backend):
    """Without versioned invalidation the memoized TransFix outcome would
    keep serving the stale master value; the engine must notice the update
    and fix against the new master."""
    schema, rules, rows = _tiny_bundle()
    if backend == "memory":
        store = InMemoryStore(Relation(schema, rows))
    else:
        store = SqliteStore(schema, rows)
    engine = BatchRepairEngine(rules, store, schema, use_bdd=True)

    dirty = Row(schema, ("k1", "wrong"))
    first = engine.run([(dirty, SimulatedUser(Row(schema, ("k1", "v1"))))])
    assert first.sessions[0].final["val"] == "v1"
    assert "val" in first.sessions[0].attrs_fixed_by_rules

    assert store.update(Row(schema, ("k1", "v1")), Row(schema, ("k1", "v1b")))
    second = engine.run([(dirty, SimulatedUser(Row(schema, ("k1", "v1b"))))])
    assert second.report.cache_invalidations == 1
    assert second.sessions[0].final["val"] == "v1b"
    assert "val" in second.sessions[0].attrs_fixed_by_rules


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_master_delete_disables_rule_fixes(backend):
    """Deleting the matching master tuple must push the fix back to the
    user: the rule can no longer certify ``val``, so Suggest recommends it
    for assertion instead of TransFix copying it."""
    schema, rules, rows = _tiny_bundle()
    if backend == "memory":
        store = InMemoryStore(Relation(schema, rows))
    else:
        store = SqliteStore(schema, rows)
    engine = BatchRepairEngine(rules, store, schema, use_bdd=True)

    dirty = Row(schema, ("k2", "wrong"))
    clean = Row(schema, ("k2", "v2"))
    first = engine.run([(dirty, SimulatedUser(clean))])
    assert "val" in first.sessions[0].attrs_fixed_by_rules

    assert store.delete(Row(schema, ("k2", "v2")))
    second = engine.run([(dirty, SimulatedUser(clean))])
    assert second.report.cache_invalidations == 1
    session = second.sessions[0]
    assert session.completed
    assert session.final == clean
    assert "val" not in session.attrs_fixed_by_rules
    assert "val" in session.attrs_asserted_by_user


def test_hypothesis_remote_vs_memory_interleavings():
    """Property test (hypothesis): random interleavings of probe / insert /
    delete / update against a RemoteStore vs a plain InMemoryStore must
    produce identical fixed outputs and identical version *observations*
    (the stamp moves iff a mutation succeeded, in lockstep per backend).

    Complements ``test_fuzz_backends_stay_identical_under_random_mutations``
    (one seeded walk): hypothesis drives many interleavings and shrinks a
    failure to the minimal op sequence.
    """
    hypothesis = pytest.importorskip("hypothesis")
    st = hypothesis.strategies
    from repro.engine.remote import MasterServer, RemoteStore

    keys = [f"k{i}" for i in range(5)]

    @hypothesis.settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[hypothesis.HealthCheck.too_slow,
                               hypothesis.HealthCheck.data_too_large],
    )
    @hypothesis.given(data=st.data())
    def run(data):
        schema, rules, rows = _tiny_bundle()
        memory = InMemoryStore(Relation(schema, list(rows)))
        backing = InMemoryStore(Relation(schema, list(rows)))
        with MasterServer(backing) as server:
            remote = RemoteStore(server.url)
            engines = {
                "memory": BatchRepairEngine(rules, memory, schema,
                                            use_bdd=False),
                "remote": BatchRepairEngine(rules, remote, schema,
                                            use_bdd=False),
            }
            stores = {"memory": memory, "remote": remote}
            known = list(rows)
            next_id = [0]

            def do_insert():
                key = data.draw(st.sampled_from(keys), label="insert key")
                row = Row(schema, (key, f"v{next_id[0]}"))
                next_id[0] += 1
                # unique keys per master, or the rule hits a MasterConflict
                for existing in list(known):
                    if existing["key"] == key:
                        assert memory.delete(existing)
                        assert remote.delete(existing)
                        known.remove(existing)
                memory.insert(row)
                remote.insert(row)
                known.append(row)

            def do_delete():
                if len(known) <= 1:
                    return
                victim = known.pop(
                    data.draw(st.integers(0, len(known) - 1), label="victim")
                )
                assert memory.delete(victim)
                assert remote.delete(victim)

            def do_update():
                if not known:
                    return
                index = data.draw(st.integers(0, len(known) - 1),
                                  label="update index")
                old = known[index]
                new = Row(schema, (old["key"], f"v{next_id[0]}"))
                next_id[0] += 1
                assert memory.update(old, new)
                assert remote.update(old, new)
                known[index] = new

            def do_probe():
                key = data.draw(st.sampled_from(keys), label="probe key")
                assert memory.probe(("key",), (key,)) == \
                    remote.probe(("key",), (key,))

            actions = {"insert": do_insert, "delete": do_delete,
                       "update": do_update, "probe": do_probe}
            for _ in range(data.draw(st.integers(2, 8), label="ops")):
                before = {n: s.version for n, s in stores.items()}
                actions[data.draw(st.sampled_from(sorted(actions)),
                                  label="action")]()
                # version observations move in lockstep: bumped on both
                # backends or on neither
                moved = {n: s.version > before[n] for n, s in stores.items()}
                assert moved["memory"] == moved["remote"]

                if not known:
                    continue
                target = known[data.draw(
                    st.integers(0, len(known) - 1), label="target")]
                dirty = Row(schema, (target["key"], "dirty"))
                clean = Row(schema, (target["key"], target["val"]))
                outputs = {
                    name: engine.run([(dirty, SimulatedUser(clean))]).sessions
                    for name, engine in engines.items()
                }
                _assert_sessions_identical(outputs["memory"],
                                           outputs["remote"])
                assert outputs["memory"][0].final == clean
            assert list(memory) == list(remote)

    run()


def test_hypothesis_delta_invalidation_matches_full_drop():
    """Property test (hypothesis): the delta-aware invalidation path
    (per-key purges + region retention) must be observationally
    equivalent to the historical full cache drop under random
    insert / delete / update interleavings — the acceptance bar of the
    delta journal.  Non-BDD sessions must match bit-for-bit; BDD runs
    retain solver nodes across deltas, so there the contract is the
    user-observable outcome (final rows, completion, validated attrs).
    """
    hypothesis = pytest.importorskip("hypothesis")
    st = hypothesis.strategies

    keys = [f"k{i}" for i in range(5)]

    @hypothesis.settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[hypothesis.HealthCheck.too_slow,
                               hypothesis.HealthCheck.data_too_large],
    )
    @hypothesis.given(data=st.data())
    def run(data):
        use_bdd = data.draw(st.booleans(), label="use_bdd")
        schema, rules, rows = _tiny_bundle()
        stores = {
            "delta": InMemoryStore(Relation(schema, list(rows))),
            "drop": InMemoryStore(Relation(schema, list(rows))),
        }
        engines = {
            "delta": BatchRepairEngine(rules, stores["delta"], schema,
                                       use_bdd=use_bdd),
            "drop": BatchRepairEngine(rules, stores["drop"], schema,
                                      use_bdd=use_bdd,
                                      delta_invalidation=False),
        }
        known = list(rows)
        next_id = [0]

        def do_insert():
            key = data.draw(st.sampled_from(keys), label="insert key")
            row = Row(schema, (key, f"v{next_id[0]}"))
            next_id[0] += 1
            # unique keys per master, or the rule hits a MasterConflict
            for existing in list(known):
                if existing["key"] == key:
                    for store in stores.values():
                        assert store.delete(existing)
                    known.remove(existing)
            for store in stores.values():
                store.insert(row)
            known.append(row)

        def do_delete():
            if len(known) <= 1:
                return
            victim = known.pop(
                data.draw(st.integers(0, len(known) - 1), label="victim")
            )
            for store in stores.values():
                assert store.delete(victim)

        def do_update():
            if not known:
                return
            index = data.draw(st.integers(0, len(known) - 1),
                              label="update index")
            old = known[index]
            new = Row(schema, (old["key"], f"v{next_id[0]}"))
            next_id[0] += 1
            for store in stores.values():
                assert store.update(old, new)
            known[index] = new

        actions = {"insert": do_insert, "delete": do_delete,
                   "update": do_update}
        for _ in range(data.draw(st.integers(2, 6), label="ops")):
            actions[data.draw(st.sampled_from(sorted(actions)),
                              label="action")]()
            if not known:
                continue
            target = known[data.draw(
                st.integers(0, len(known) - 1), label="target")]
            dirty = Row(schema, (target["key"], "dirty"))
            clean = Row(schema, (target["key"], target["val"]))
            outputs = {
                name: engine.run([(dirty, SimulatedUser(clean))]).sessions
                for name, engine in engines.items()
            }
            if use_bdd:
                for a, b in zip(outputs["delta"], outputs["drop"]):
                    assert a.final == b.final
                    assert a.completed == b.completed
                    assert a.validated == b.validated
            else:
                _assert_sessions_identical(outputs["delta"],
                                           outputs["drop"])
            assert outputs["delta"][0].final == clean
        # both engines observed every mutation; the full-drop reference
        # never takes the delta path
        delta_engine, drop_engine = (engines["delta"].engine,
                                     engines["drop"].engine)
        assert (delta_engine.delta_purges + delta_engine.full_drops
                == delta_engine.cache_invalidations)
        assert drop_engine.delta_purges == 0

    run()


def test_fuzz_backends_stay_identical_under_random_mutations():
    """Property test: interleave random master mutations with monitoring;
    after every step both backends report the same version delta and fix
    streams stay bit-identical."""
    schema, rules, rows = _tiny_bundle()
    memory = InMemoryStore(Relation(schema, rows))
    sqlite = SqliteStore(schema, rows)
    engines = {
        "memory": BatchRepairEngine(rules, memory, schema, use_bdd=False),
        "sqlite": BatchRepairEngine(rules, sqlite, schema, use_bdd=False),
    }
    rng = random.Random(1234)
    known = list(rows)
    next_id = 0

    for step in range(25):
        action = rng.random()
        if action < 0.3:
            key, val = f"k{rng.randrange(8)}", f"v{next_id}"
            next_id += 1
            row = Row(schema, (key, val))
            # keys must stay unique per backend or the rule hits a
            # MasterConflict; replace any same-key tuple first
            for existing in list(known):
                if existing["key"] == key:
                    memory.delete(existing)
                    sqlite.delete(existing)
                    known.remove(existing)
            memory.insert(row)
            sqlite.insert(row)
            known.append(row)
        elif action < 0.45 and len(known) > 1:
            victim = known.pop(rng.randrange(len(known)))
            assert memory.delete(victim)
            assert sqlite.delete(victim)

        if not known:
            continue
        target = known[rng.randrange(len(known))]
        dirty = Row(schema, (target["key"], "dirty"))
        oracle_clean = Row(schema, (target["key"], target["val"]))
        outputs = {}
        for name, engine in engines.items():
            result = engine.run([(dirty, SimulatedUser(oracle_clean))])
            outputs[name] = result.sessions
        _assert_sessions_identical(outputs["memory"], outputs["sqlite"])
        assert outputs["memory"][0].final == oracle_clean
    assert memory.version > 0 and sqlite.version > 0
    assert list(memory) == list(sqlite)


# -- the non-BDD suggest memo (ROADMAP follow-up) -----------------------------


def test_suggest_memo_reports_hits_and_preserves_sessions(hosp, hosp_dirty):
    plain = CertainFix(hosp.rules, hosp.master, hosp.schema, use_bdd=False)
    memo = CertainFix(hosp.rules, hosp.master, hosp.schema, use_bdd=False,
                      memoize_suggest=True)
    assert plain.cache_stats is None
    repeated = _pairs(hosp_dirty) + _pairs(hosp_dirty)
    sessions_plain = plain.fix_stream(repeated)
    sessions_memo = memo.fix_stream(repeated)
    _assert_sessions_identical(sessions_memo, sessions_plain)
    stats = memo.cache_stats
    assert stats is not None
    # the second pass re-suggests nothing (multi-round shapes repeat)
    assert stats.hits + stats.misses > 0
    multi_round = sum(1 for s in sessions_plain if s.round_count > 1)
    if multi_round:
        assert stats.hits > 0


def test_batch_non_bdd_reports_suggestion_cache(hosp, hosp_dirty):
    batch = BatchRepairEngine(hosp.rules, hosp.master, hosp.schema,
                              use_bdd=False)
    repeated = list(hosp_dirty) + list(hosp_dirty)
    report = batch.run_dirty(repeated).report
    payload = report.to_dict()
    assert payload["suggestion_cache"]["hits"] + \
        payload["suggestion_cache"]["misses"] >= 0
    # the engine exposes the memo through the same cache_stats surface the
    # BDD uses
    assert batch.engine.cache_stats is not None


def test_stale_memo_write_rejected_after_concurrent_teardown(monkeypatch):
    """The thread-fan-out race: a worker computes a chase outcome against
    version N; the master mutates and another worker performs the version
    teardown before the first worker's memo write lands.  The stamp check
    must drop the stale write instead of re-poisoning the cleared memo."""
    schema, rules, rows = _tiny_bundle()
    store = InMemoryStore(Relation(schema, rows))
    batch = BatchRepairEngine(rules, store, schema, use_bdd=False)
    engine = batch.engine

    original = CertainFix._unique

    def mutate_mid_compute(self, row, validated):
        outcome = original(self, row, validated)
        store.insert(Row(schema, ("k9", "v9")))
        self._sync_master_version()  # the "other worker's" teardown
        return outcome

    monkeypatch.setattr(CertainFix, "_unique", mutate_mid_compute)
    row = Row(schema, ("k1", "v1"))
    validated = frozenset({"key", "val"})
    engine._unique(row, validated)
    assert engine._memo_key(row, validated) not in engine._chase_memo


def test_suggest_memo_invalidated_by_master_mutation():
    schema, rules, rows = _tiny_bundle()
    store = InMemoryStore(Relation(schema, rows))
    engine = CertainFix(rules, store, schema, use_bdd=False,
                        memoize_suggest=True)
    dirty = Row(schema, ("k2", "wrong"))
    clean = Row(schema, ("k2", "v2"))
    engine.fix(dirty, SimulatedUser(clean))
    store.delete(Row(schema, ("k2", "v2")))
    session = engine.fix(dirty, SimulatedUser(clean))
    assert engine.cache_invalidations == 1
    assert session.final == clean
    assert "val" in session.attrs_asserted_by_user
