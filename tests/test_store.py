"""MasterStore backends: API, versioning, the sqlite codec and LRU cache."""

import pytest

from repro.engine.index import HashIndex
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema
from repro.engine.store import (
    InMemoryStore,
    MasterStore,
    SqliteStore,
    as_master_store,
    _decode,
    _encode,
)
from repro.engine.tuples import Row
from repro.engine.values import NULL, UNKNOWN


@pytest.fixture
def schema():
    return RelationSchema("m", ["k", "v", ("n", INT)])


@pytest.fixture
def rows(schema):
    return [
        Row(schema, ("a", "x", 1)),
        Row(schema, ("b", "y", 2)),
        Row(schema, ("a", "x", 3)),
        Row(schema, ("c", NULL, 4)),
    ]


@pytest.fixture(params=["memory", "sqlite"])
def store(request, schema, rows):
    if request.param == "memory":
        return InMemoryStore(Relation(schema, rows))
    return SqliteStore(schema, rows)


# -- codec --------------------------------------------------------------------


def test_codec_reproduces_python_equality():
    values = ["", "abc", "i87", 87, -3, 0, 1.5, 2.0, True, False,
              NULL, UNKNOWN]
    for value in values:
        assert _decode(_encode(value)) == value
    # ints and their string spellings must not collide (csv coercion relies
    # on string/number keys staying distinct)...
    assert _encode(87) != _encode("87")
    # ...while numerically equal values must collide, exactly as they do as
    # dict keys in the in-memory backend's hash buckets (2 == 2.0 == True)
    assert _encode(2) == _encode(2.0)
    assert _encode(True) == _encode(1)
    assert _encode(False) == _encode(0.0)
    assert _encode(1.5) != _encode(1)
    assert _decode(_encode(NULL)) is NULL
    assert _decode(_encode(UNKNOWN)) is UNKNOWN


def test_codec_rejects_unstorable_values():
    with pytest.raises(TypeError, match="cannot store"):
        _encode(object())


# -- shared backend contract --------------------------------------------------


def test_store_basic_reads(store, schema, rows):
    assert isinstance(store, MasterStore)
    assert store.schema.attributes == schema.attributes
    assert len(store) == 4
    assert list(store) == rows  # insertion order
    assert store.rows == rows   # Relation-compatible copy
    assert store.active_values("k") == {"a", "b", "c"}
    assert store.active_values("v") == {"x", "y", NULL}


def test_probe_and_aliases(store, rows):
    assert store.probe(("k",), ("a",)) == [rows[0], rows[2]]
    assert store.probe(("k", "v"), ("b", "y")) == [rows[1]]
    assert store.probe(("k",), ("zzz",)) == []
    # duplicate attributes in the probe list (Theorem 12-style reuse)
    assert store.probe(("k", "k"), ("a", "a")) == [rows[0], rows[2]]
    assert store.probe(("k", "k"), ("a", "b")) == []
    # Relation-compatible spellings and the index-free ablation agree
    assert store.lookup(("k",), ("a",)) == store.probe(("k",), ("a",))
    assert store.scan_probe(("k",), ("a",)) == store.probe(("k",), ("a",))
    assert store.scan_lookup(("n",), (2,)) == [rows[1]]
    assert store.contains_key(("k",), ("c",))
    assert not store.contains_key(("k",), ("nope",))


def test_probe_is_exact_typed(store):
    assert store.probe(("n",), (2,)) != []
    assert store.probe(("n",), ("2",)) == []


def test_version_bumps_on_mutation(store, schema):
    v0 = store.version
    extra = Row(schema, ("d", "z", 9))
    store.insert(extra)
    v1 = store.version
    assert v1 > v0
    assert len(store) == 5
    assert list(store)[-1] == extra
    assert store.probe(("k",), ("d",)) == [extra]

    assert store.delete(extra)
    assert store.version > v1
    assert len(store) == 4
    assert store.probe(("k",), ("d",)) == []
    # deleting a missing row mutates nothing
    v2 = store.version
    assert not store.delete(extra)
    assert store.version == v2


def test_delete_removes_one_occurrence(store, schema, rows):
    assert store.delete(Row(schema, ("a", "x", 1)))
    assert store.probe(("k",), ("a",)) == [rows[2]]
    assert len(store) == 3


def test_update_moves_row_to_iteration_end(store, schema, rows):
    old = rows[1]
    new = Row(schema, ("b", "y2", 2))
    v0 = store.version
    assert store.update(old, new)
    assert store.version > v0
    assert list(store) == [rows[0], rows[2], rows[3], new]
    assert store.probe(("k",), ("b",)) == [new]
    assert not store.update(old, new)  # old is gone now


def test_ensure_index_then_probe(store):
    store.ensure_index(("v", "n"))
    assert store.probe(("v", "n"), ("x", 3)) == [store.rows[2]]


# -- InMemoryStore specifics --------------------------------------------------


def test_inmemory_version_tracks_direct_relation_mutation(schema, rows):
    relation = Relation(schema, rows)
    store = as_master_store(relation)
    v0 = store.version
    relation.insert(Row(schema, ("e", "w", 7)))
    assert store.version > v0
    assert store.probe(("k",), ("e",)) != []


def test_as_master_store_caches_wrapper(schema, rows):
    relation = Relation(schema, rows)
    store = as_master_store(relation)
    assert isinstance(store, InMemoryStore)
    assert as_master_store(relation) is store
    assert as_master_store(store) is store
    with pytest.raises(TypeError, match="MasterStore or Relation"):
        as_master_store([("a", "x", 1)])


def test_relation_delete_keeps_indexes_consistent(schema, rows):
    relation = Relation(schema, rows)
    index = relation.index_on(("k",))
    assert len(index.get_ref(("a",))) == 2
    assert relation.delete(rows[0])
    assert index.get_ref(("a",)) == [rows[2]]
    assert relation.delete(rows[2])
    assert not index.contains(("a",))
    assert not relation.delete(Row(schema, ("zz", "zz", 0)))
    assert len(relation) == 2


def test_hashindex_remove(schema, rows):
    index = HashIndex(("k",), rows)
    assert index.remove(rows[0])
    assert index.get(("a",)) == [rows[2]]
    assert not index.remove(Row(schema, ("zz", "zz", 0)))
    assert index.remove(rows[2])
    assert not index.contains(("a",))


def test_relation_rows_copies_iter_rows_does_not(schema, rows):
    relation = Relation(schema, rows)
    copied = relation.rows
    copied.clear()
    assert len(relation) == 4  # the property is a defensive copy
    assert list(relation.iter_rows()) == rows
    assert relation.row_at(2) is relation.rows[2]


# -- SqliteStore specifics ----------------------------------------------------


def test_sqlite_from_relation_and_disk_path(tmp_path, schema, rows):
    relation = Relation(schema, rows)
    path = tmp_path / "master.db"
    store = SqliteStore.from_relation(relation, path=path)
    assert list(store) == rows
    store.close()
    # reopening the file sees the persisted rows (out-of-core master)
    reopened = SqliteStore(schema, path=path)
    assert len(reopened) == 4
    assert reopened.probe(("k",), ("a",)) == [rows[0], rows[2]]
    reopened.close()


def test_sqlite_existing_path_keeps_rows_unless_fresh(tmp_path, schema, rows):
    path = tmp_path / "master.db"
    SqliteStore(schema, rows, path=path).close()
    # default: reopening with a row source appends (out-of-core reuse is
    # reopening WITHOUT a source; loaders re-streaming the truth must ask
    # for a rebuild)
    appended = SqliteStore(schema, rows, path=path)
    assert len(appended) == 8
    appended.close()
    rebuilt = SqliteStore(schema, rows, path=path, fresh=True)
    assert len(rebuilt) == 4
    assert list(rebuilt) == rows
    rebuilt.close()


def test_numeric_keys_probe_identically_across_backends(schema):
    """2 == 2.0 == True as dict keys in the memory backend; the sqlite
    codec must reproduce that, not exact-type them apart."""
    rows = [Row(schema, ("a", "x", 2)), Row(schema, ("b", "y", 1))]
    memory = InMemoryStore(Relation(schema, rows))
    sqlite = SqliteStore(schema, rows)
    for key in ((2,), (2.0,)):
        assert memory.probe(("n",), key) == sqlite.probe(("n",), key) \
            == [rows[0]]
    for key in ((1,), (True,), (1.0,)):
        assert memory.probe(("n",), key) == sqlite.probe(("n",), key) \
            == [rows[1]]
    for key in (("2",), (1.5,)):
        assert memory.probe(("n",), key) == sqlite.probe(("n",), key) == []


def test_sqlite_probe_cache_hits_and_invalidation(schema, rows):
    store = SqliteStore(schema, rows)
    store.probe(("k",), ("a",))
    store.probe(("k",), ("a",))
    info = store.probe_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    # mutation drops the cache: the next probe must re-read the table
    store.insert(Row(schema, ("a", "x", 99)))
    result = store.probe(("k",), ("a",))
    assert [tm["n"] for tm in result] == [1, 3, 99]
    assert store.probe_cache_info()["misses"] == 2


def test_sqlite_probe_cache_lru_eviction(schema, rows):
    store = SqliteStore(schema, rows, probe_cache_size=2)
    store.probe(("k",), ("a",))
    store.probe(("k",), ("b",))
    store.probe(("k",), ("c",))  # evicts ("a",)
    assert store.probe_cache_info()["size"] == 2
    store.probe(("k",), ("a",))
    assert store.probe_cache_info()["misses"] == 4


def test_sqlite_unstorable_probe_key_matches_nothing(schema, rows):
    store = SqliteStore(schema, rows)
    assert store.probe(("k",), (object(),)) == []
    assert not store.delete(Row(schema, (object(), "x", 1)))


def test_sqlite_rejects_bad_inputs(schema, rows):
    store = SqliteStore(schema, rows)
    with pytest.raises(ValueError, match="does not match attribute list"):
        store.probe(("k", "v"), ("a",))
    other = RelationSchema("other", ["p", "q"])
    with pytest.raises(ValueError, match="does not match store"):
        store.insert(Row(other, ("1", "2")))
    with pytest.raises(ValueError, match="probe_cache_size"):
        SqliteStore(schema, probe_cache_size=-1)


def test_sqlite_iteration_windows_survive_interleaved_mutation(schema):
    many = [Row(schema, (f"k{i}", "v", i)) for i in range(2500)]
    store = SqliteStore(schema, many)
    seen = 0
    for i, row in enumerate(store):
        if i == 0:
            store.insert(Row(schema, ("late", "v", 9999)))
        seen += 1
    assert seen == 2501  # the appended row lands after the current window
