"""MasterStore backends: API, versioning, the sqlite codec and LRU cache."""

import pytest

from repro.engine.index import HashIndex
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema
from repro.engine.store import (
    InMemoryStore,
    MasterStore,
    SqliteStore,
    as_master_store,
    _decode,
    _encode,
)
from repro.engine.tuples import Row
from repro.engine.values import NULL, UNKNOWN


@pytest.fixture
def schema():
    return RelationSchema("m", ["k", "v", ("n", INT)])


@pytest.fixture
def rows(schema):
    return [
        Row(schema, ("a", "x", 1)),
        Row(schema, ("b", "y", 2)),
        Row(schema, ("a", "x", 3)),
        Row(schema, ("c", NULL, 4)),
    ]


@pytest.fixture(params=["memory", "sqlite"])
def store(request, schema, rows):
    if request.param == "memory":
        return InMemoryStore(Relation(schema, rows))
    return SqliteStore(schema, rows)


# -- codec --------------------------------------------------------------------


def test_codec_reproduces_python_equality():
    values = ["", "abc", "i87", 87, -3, 0, 1.5, 2.0, True, False,
              NULL, UNKNOWN]
    for value in values:
        assert _decode(_encode(value)) == value
    # ints and their string spellings must not collide (csv coercion relies
    # on string/number keys staying distinct)...
    assert _encode(87) != _encode("87")
    # ...while numerically equal values must collide, exactly as they do as
    # dict keys in the in-memory backend's hash buckets (2 == 2.0 == True)
    assert _encode(2) == _encode(2.0)
    assert _encode(True) == _encode(1)
    assert _encode(False) == _encode(0.0)
    assert _encode(1.5) != _encode(1)
    assert _decode(_encode(NULL)) is NULL
    assert _decode(_encode(UNKNOWN)) is UNKNOWN


def test_codec_rejects_unstorable_values():
    with pytest.raises(TypeError, match="cannot store"):
        _encode(object())


# -- shared backend contract --------------------------------------------------


def test_store_basic_reads(store, schema, rows):
    assert isinstance(store, MasterStore)
    assert store.schema.attributes == schema.attributes
    assert len(store) == 4
    assert list(store) == rows  # insertion order
    assert store.rows == rows   # Relation-compatible copy
    assert store.active_values("k") == {"a", "b", "c"}
    assert store.active_values("v") == {"x", "y", NULL}


def test_probe_and_aliases(store, rows):
    assert store.probe(("k",), ("a",)) == (rows[0], rows[2])
    assert store.probe(("k", "v"), ("b", "y")) == (rows[1],)
    assert store.probe(("k",), ("zzz",)) == ()
    # duplicate attributes in the probe list (Theorem 12-style reuse)
    assert store.probe(("k", "k"), ("a", "a")) == (rows[0], rows[2])
    assert store.probe(("k", "k"), ("a", "b")) == ()
    # Relation-compatible spellings and the index-free ablation agree
    assert store.lookup(("k",), ("a",)) == store.probe(("k",), ("a",))
    assert store.scan_probe(("k",), ("a",)) == store.probe(("k",), ("a",))
    assert store.scan_lookup(("n",), (2,)) == (rows[1],)
    assert store.contains_key(("k",), ("c",))
    assert not store.contains_key(("k",), ("nope",))


def test_probe_is_exact_typed(store):
    assert store.probe(("n",), (2,)) != ()
    assert store.probe(("n",), ("2",)) == ()


def test_version_bumps_on_mutation(store, schema):
    v0 = store.version
    extra = Row(schema, ("d", "z", 9))
    store.insert(extra)
    v1 = store.version
    assert v1 > v0
    assert len(store) == 5
    assert list(store)[-1] == extra
    assert store.probe(("k",), ("d",)) == (extra,)

    assert store.delete(extra)
    assert store.version > v1
    assert len(store) == 4
    assert store.probe(("k",), ("d",)) == ()
    # deleting a missing row mutates nothing
    v2 = store.version
    assert not store.delete(extra)
    assert store.version == v2


def test_delete_removes_one_occurrence(store, schema, rows):
    assert store.delete(Row(schema, ("a", "x", 1)))
    assert store.probe(("k",), ("a",)) == (rows[2],)
    assert len(store) == 3


def test_update_moves_row_to_iteration_end(store, schema, rows):
    old = rows[1]
    new = Row(schema, ("b", "y2", 2))
    v0 = store.version
    assert store.update(old, new)
    assert store.version > v0
    assert list(store) == [rows[0], rows[2], rows[3], new]
    assert store.probe(("k",), ("b",)) == (new,)
    assert not store.update(old, new)  # old is gone now


def test_ensure_index_then_probe(store):
    store.ensure_index(("v", "n"))
    assert store.probe(("v", "n"), ("x", 3)) == (store.rows[2],)


# -- InMemoryStore specifics --------------------------------------------------


def test_inmemory_version_tracks_direct_relation_mutation(schema, rows):
    relation = Relation(schema, rows)
    store = as_master_store(relation)
    v0 = store.version
    relation.insert(Row(schema, ("e", "w", 7)))
    assert store.version > v0
    assert store.probe(("k",), ("e",)) != ()


def test_as_master_store_caches_wrapper(schema, rows):
    relation = Relation(schema, rows)
    store = as_master_store(relation)
    assert isinstance(store, InMemoryStore)
    assert as_master_store(relation) is store
    assert as_master_store(store) is store
    with pytest.raises(TypeError, match="MasterStore or Relation"):
        as_master_store([("a", "x", 1)])


def test_relation_delete_keeps_indexes_consistent(schema, rows):
    relation = Relation(schema, rows)
    index = relation.index_on(("k",))
    assert len(index.get_ref(("a",))) == 2
    assert relation.delete(rows[0])
    assert index.get_ref(("a",)) == [rows[2]]
    assert relation.delete(rows[2])
    assert not index.contains(("a",))
    assert not relation.delete(Row(schema, ("zz", "zz", 0)))
    assert len(relation) == 2


def test_hashindex_remove(schema, rows):
    index = HashIndex(("k",), rows)
    assert index.remove(rows[0])
    assert index.get(("a",)) == [rows[2]]
    assert not index.remove(Row(schema, ("zz", "zz", 0)))
    assert index.remove(rows[2])
    assert not index.contains(("a",))


def test_relation_rows_copies_iter_rows_does_not(schema, rows):
    relation = Relation(schema, rows)
    copied = relation.rows
    copied.clear()
    assert len(relation) == 4  # the property is a defensive copy
    assert list(relation.iter_rows()) == rows
    assert relation.row_at(2) is relation.rows[2]


# -- SqliteStore specifics ----------------------------------------------------


def test_sqlite_from_relation_and_disk_path(tmp_path, schema, rows):
    relation = Relation(schema, rows)
    path = tmp_path / "master.db"
    store = SqliteStore.from_relation(relation, path=path)
    assert list(store) == rows
    store.close()
    # reopening the file sees the persisted rows (out-of-core master)
    reopened = SqliteStore(schema, path=path)
    assert len(reopened) == 4
    assert reopened.probe(("k",), ("a",)) == (rows[0], rows[2])
    reopened.close()


def test_sqlite_existing_path_keeps_rows_unless_fresh(tmp_path, schema, rows):
    path = tmp_path / "master.db"
    SqliteStore(schema, rows, path=path).close()
    # default: reopening with a row source appends (out-of-core reuse is
    # reopening WITHOUT a source; loaders re-streaming the truth must ask
    # for a rebuild)
    appended = SqliteStore(schema, rows, path=path)
    assert len(appended) == 8
    appended.close()
    rebuilt = SqliteStore(schema, rows, path=path, fresh=True)
    assert len(rebuilt) == 4
    assert list(rebuilt) == rows
    rebuilt.close()


def test_numeric_keys_probe_identically_across_backends(schema):
    """2 == 2.0 == True as dict keys in the memory backend; the sqlite
    codec must reproduce that, not exact-type them apart."""
    rows = [Row(schema, ("a", "x", 2)), Row(schema, ("b", "y", 1))]
    memory = InMemoryStore(Relation(schema, rows))
    sqlite = SqliteStore(schema, rows)
    for key in ((2,), (2.0,)):
        assert memory.probe(("n",), key) == sqlite.probe(("n",), key) \
            == (rows[0],)
    for key in ((1,), (True,), (1.0,)):
        assert memory.probe(("n",), key) == sqlite.probe(("n",), key) \
            == (rows[1],)
    for key in (("2",), (1.5,)):
        assert memory.probe(("n",), key) == sqlite.probe(("n",), key) == ()


def test_sqlite_probe_cache_hits_and_invalidation(schema, rows):
    store = SqliteStore(schema, rows)
    store.probe(("k",), ("a",))
    store.probe(("k",), ("a",))
    info = store.probe_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    # mutation drops the cache: the next probe must re-read the table
    store.insert(Row(schema, ("a", "x", 99)))
    result = store.probe(("k",), ("a",))
    assert [tm["n"] for tm in result] == [1, 3, 99]
    assert store.probe_cache_info()["misses"] == 2


def test_sqlite_probe_cache_lru_eviction(schema, rows):
    store = SqliteStore(schema, rows, probe_cache_size=2)
    store.probe(("k",), ("a",))
    store.probe(("k",), ("b",))
    store.probe(("k",), ("c",))  # evicts ("a",)
    assert store.probe_cache_info()["size"] == 2
    store.probe(("k",), ("a",))
    assert store.probe_cache_info()["misses"] == 4


def test_sqlite_unstorable_probe_key_matches_nothing(schema, rows):
    store = SqliteStore(schema, rows)
    assert store.probe(("k",), (object(),)) == ()
    assert not store.delete(Row(schema, (object(), "x", 1)))


def test_sqlite_rejects_bad_inputs(schema, rows):
    store = SqliteStore(schema, rows)
    with pytest.raises(ValueError, match="does not match attribute list"):
        store.probe(("k", "v"), ("a",))
    other = RelationSchema("other", ["p", "q"])
    with pytest.raises(ValueError, match="does not match store"):
        store.insert(Row(other, ("1", "2")))
    with pytest.raises(ValueError, match="probe_cache_size"):
        SqliteStore(schema, probe_cache_size=-1)


def test_sqlite_iteration_windows_survive_interleaved_mutation(schema):
    many = [Row(schema, (f"k{i}", "v", i)) for i in range(2500)]
    store = SqliteStore(schema, many)
    seen = 0
    for i, row in enumerate(store):
        if i == 0:
            store.insert(Row(schema, ("late", "v", 9999)))
        seen += 1
    assert seen == 2501  # the appended row lands after the current window


# -- probe aliasing (immutable results) ---------------------------------------


def test_probe_results_are_immutable_tuples(store, rows):
    """Mutating a probe result must be impossible: both backends used to
    hand out aliases of internal state (the index bucket / the LRU cache
    line) under a doc-only contract."""
    result = store.probe(("k",), ("a",))
    assert isinstance(result, tuple)
    with pytest.raises((AttributeError, TypeError)):
        result.append("junk")  # tuples have no append
    # A caller round-tripping through list() and mangling their copy must
    # not corrupt later probes (cache-hit path) either.
    mangled = list(result)
    mangled.clear()
    again = store.probe(("k",), ("a",))
    assert again == (rows[0], rows[2])
    assert store.scan_probe(("k",), ("a",)) == again
    assert isinstance(store.lookup(("k",), ("a",)), tuple)


def test_probe_ref_is_read_only_hot_path(store, rows):
    """probe_ref mirrors HashIndex.get/get_ref: it may alias internals and
    is only ever read by the repair loops, but must agree with probe."""
    assert tuple(store.probe_ref(("k",), ("a",))) == \
        store.probe(("k",), ("a",))
    assert tuple(store.probe_ref(("k",), ("zzz",))) == ()


def test_active_values_result_is_caller_owned(store):
    values = store.active_values("k")
    values.add("corrupted")
    assert "corrupted" not in store.active_values("k")


# -- probe_many ---------------------------------------------------------------


def test_probe_many_matches_probe_loop(store, rows):
    keys = [("a",), ("b",), ("zzz",), ("a",)]  # duplicate collapses
    out = store.probe_many(("k",), keys)
    assert set(out) == {("a",), ("b",), ("zzz",)}
    for key, matches in out.items():
        assert matches == store.probe(("k",), key)
    assert out[("a",)] == (rows[0], rows[2])
    assert out[("zzz",)] == ()


def test_probe_many_multi_column_and_duplicate_attrs(store, rows):
    out = store.probe_many(("k", "v"), [("a", "x"), ("c", NULL), ("a", "y")])
    assert out == {
        ("a", "x"): (rows[0], rows[2]),
        ("c", NULL): (rows[3],),
        ("a", "y"): (),
    }
    dup = store.probe_many(("k", "k"), [("a", "a"), ("a", "b")])
    assert dup == {("a", "a"): (rows[0], rows[2]), ("a", "b"): ()}


def test_probe_many_rejects_mismatched_key(store):
    with pytest.raises(ValueError, match="does not match attribute list"):
        store.probe_many(("k", "v"), [("a",)])


def test_sqlite_probe_many_batches_and_fills_cache(schema):
    many = [Row(schema, (f"k{i}", "v", i)) for i in range(600)]
    store = SqliteStore(schema, many)
    assert store.supports_batched_probes
    keys = [(f"k{i}",) for i in range(650)]
    out = store.probe_many(("k",), keys)
    for i in range(600):
        assert out[(f"k{i}",)] == (many[i],)
    for i in range(600, 650):
        assert out[(f"k{i}",)] == ()
    # the batched plan populated the LRU: a follow-up probe is a pure hit
    hits0 = store.probe_cache_info()["hits"]
    assert store.probe(("k",), ("k7",)) == (many[7],)
    assert store.probe_cache_info()["hits"] == hits0 + 1


def test_sqlite_probe_many_unstorable_key_matches_nothing(schema, rows):
    store = SqliteStore(schema, rows)
    out = store.probe_many(("k",), [("a",), (object(),)])
    assert out[("a",)] == (rows[0], rows[2])
    assert [v for k, v in out.items() if not isinstance(k[0], str)] == [()]


# -- detach / reattach (process-boundary protocol) ----------------------------


def test_memory_detach_reattach_preserves_rows_and_version(schema, rows):
    relation = Relation(schema, rows)
    store = InMemoryStore(relation)
    store.insert(Row(schema, ("d", "z", 9)))
    handle = store.detach()
    clone = handle.reattach()
    assert list(clone) == list(store)
    assert clone.version == store.version
    # reattached copies are by value: parent mutations stay invisible
    store.insert(Row(schema, ("e", "w", 10)))
    assert len(clone) == len(store) - 1
    # reset_rows is the per-chunk resync: contents and stamp jump together
    clone.reset_rows(tuple(store), store.version)
    assert list(clone) == list(store)
    assert clone.version == store.version


def test_sqlite_detach_reattach_shares_file(tmp_path, schema, rows):
    path = tmp_path / "m.db"
    store = SqliteStore(schema, rows, path=path)
    assert store.shares_storage_across_processes
    handle = store.detach()
    clone = handle.reattach()
    assert list(clone) == rows
    assert clone.version == store.version
    # parent writes reach the clone through the file + sync_version
    store.insert(Row(schema, ("d", "z", 9)))
    clone.sync_version(store.version)
    assert len(clone) == 5
    assert clone.probe(("k",), ("d",)) == (Row(schema, ("d", "z", 9)),)
    clone.close()
    store.close()


def test_sqlite_memory_detach_refused(schema, rows):
    store = SqliteStore(schema, rows)
    assert not store.shares_storage_across_processes
    with pytest.raises(ValueError, match="cannot cross a fork/spawn"):
        store.detach()


def test_masterstore_default_detach_refused():
    # Plain local name: a class body would resolve a fixture argument to
    # the module-level fixture *function*, not its value.
    plain_schema = RelationSchema("opaque", ["a"])

    class Opaque(MasterStore):
        schema = plain_schema
        version = 0
        def __len__(self): return 0
        def __iter__(self): return iter(())
        def probe(self, attrs, key): return ()
        def ensure_index(self, attrs): pass
        def active_values(self, attr): return set()
        def insert(self, row): pass
        def delete(self, row): return False

    with pytest.raises(ValueError, match="detach"):
        Opaque().detach()
