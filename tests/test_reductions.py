"""The Sect. 4 hardness constructions, validated against brute force."""

import random

import pytest

from repro.analysis.consistency import is_consistent
from repro.analysis.zproblems import z_counting, z_minimum_exact, z_validating
from repro.reductions import (
    Clause,
    Literal,
    SetCover,
    ThreeSAT,
    consistency_instance_from_3sat,
    z_minimum_instance_from_set_cover,
    z_validating_instance_from_3sat,
)


def _random_formula(rng, num_vars, num_clauses):
    """A random 3SAT formula in which every variable occurs."""
    while True:
        clauses, used = [], set()
        for _ in range(num_clauses):
            variables = rng.sample(range(num_vars), 3)
            used.update(variables)
            clauses.append(
                tuple((v, rng.random() < 0.5) for v in variables)
            )
        if used == set(range(num_vars)):
            return ThreeSAT.from_tuples(num_vars, clauses)


# -- 3SAT plumbing ------------------------------------------------------------


def test_clause_requires_three_distinct_variables():
    with pytest.raises(ValueError):
        Clause((Literal(0), Literal(0), Literal(1)))
    with pytest.raises(ValueError):
        Clause((Literal(0), Literal(1)))


def test_clause_falsifying_values():
    clause = Clause((Literal(0, True), Literal(1, False), Literal(2, True)))
    assert clause.falsifying_values() == (0, 1, 0)


def test_three_sat_brute_force():
    # (x0 ∨ x1 ∨ x2) has 7 models over 3 variables.
    f = ThreeSAT.from_tuples(3, [((0, True), (1, True), (2, True))])
    assert f.satisfiable()
    assert f.model_count() == 7
    # Conjoining the complementary all-positive / all-negative clauses
    # leaves 6 models (all-true and all-false excluded).
    g = ThreeSAT.from_tuples(
        3,
        [
            ((0, True), (1, True), (2, True)),
            ((0, False), (1, False), (2, False)),
        ],
    )
    assert g.satisfiable()
    assert g.model_count() == 6


def test_literal_out_of_range():
    with pytest.raises(ValueError):
        ThreeSAT(2, [Clause((Literal(0), Literal(1), Literal(5)))])


# -- Theorem 1: consistency ⇔ ¬SAT ------------------------------------------


def test_consistency_reduction_unsatisfiable_formula():
    # (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ ¬x1 ∨ ¬x2) ∧ ... craft an unsat formula:
    # all eight sign patterns over three variables is unsatisfiable.
    clauses = []
    for b0 in (True, False):
        for b1 in (True, False):
            for b2 in (True, False):
                clauses.append(((0, b0), (1, b1), (2, b2)))
    f = ThreeSAT.from_tuples(3, clauses)
    assert not f.satisfiable()
    inst = consistency_instance_from_3sat(f)
    assert len(inst.rules) == 9 * len(f.clauses) + 2
    assert is_consistent(inst.rules, inst.master, inst.region, inst.schema)


def test_consistency_reduction_satisfiable_formula():
    f = ThreeSAT.from_tuples(3, [((0, True), (1, True), (2, True))])
    inst = consistency_instance_from_3sat(f)
    assert not is_consistent(inst.rules, inst.master, inst.region, inst.schema)


@pytest.mark.parametrize("seed", range(6))
def test_consistency_reduction_random(seed):
    rng = random.Random(seed)
    f = _random_formula(rng, rng.choice([3, 4]), rng.choice([2, 3]))
    inst = consistency_instance_from_3sat(f)
    assert is_consistent(
        inst.rules, inst.master, inst.region, inst.schema
    ) == (not f.satisfiable())


# -- Theorems 6/9: Z-validating ⇔ SAT, Z-counting = #models ------------------


@pytest.mark.parametrize("seed", range(6))
def test_z_validating_reduction_random(seed):
    rng = random.Random(100 + seed)
    f = _random_formula(rng, rng.choice([3, 4]), rng.choice([2, 3]))
    inst = z_validating_instance_from_3sat(f)
    assert len(inst.rules) == 3 * len(f.clauses)
    witness = z_validating(inst.rules, inst.master, inst.z, inst.schema)
    assert (witness is not None) == f.satisfiable()
    if witness is not None:
        assignment = [witness[f"X{i + 1}"].value for i in range(f.num_vars)]
        assert f.holds(assignment)  # the witness IS a model


@pytest.mark.parametrize("seed", range(4))
def test_z_counting_reduction_random(seed):
    rng = random.Random(200 + seed)
    f = _random_formula(rng, 3, rng.choice([2, 3]))
    inst = z_validating_instance_from_3sat(f)
    count = z_counting(inst.rules, inst.master, inst.z, inst.schema)
    assert count == f.model_count()


# -- Theorem 12: Z-minimum = minimum cover -----------------------------------


def test_set_cover_brute_force():
    sc = SetCover(4, [{0, 1}, {2, 3}, {0, 1, 2}])
    assert sc.minimum_cover_size() == 2
    assert sc.is_cover((0, 1))
    assert not sc.is_cover((2,))


def test_set_cover_no_cover():
    sc = SetCover(3, [{0}, {1}])
    assert sc.minimum_cover() is None


def test_set_cover_rejects_foreign_elements():
    with pytest.raises(ValueError):
        SetCover(2, [{0, 5}])


def test_greedy_cover_known_trap():
    """The classic log-factor trap: greedy picks the big set first."""
    sc = SetCover(6, [{0, 1, 2}, {3, 4, 5}, {0, 1, 3, 4}])
    assert sc.minimum_cover_size() == 2
    greedy = sc.greedy_cover()
    assert len(greedy) == 3  # 2-set optimum missed


@pytest.mark.parametrize("seed", range(4))
def test_z_minimum_reduction_random(seed):
    rng = random.Random(300 + seed)
    n = rng.choice([3, 4])
    h = rng.choice([2, 3])
    subsets = [set(rng.sample(range(n), rng.randint(1, n))) for _ in range(h)]
    subsets[0] |= set(range(n)) - set().union(*subsets)
    sc = SetCover(n, subsets)
    inst = z_minimum_instance_from_set_cover(sc)
    result = z_minimum_exact(
        inst.rules, inst.master, inst.schema, max_subsets=500_000
    )
    assert result is not None
    z, witness = result
    assert len(z) == sc.minimum_cover_size()
    assert witness is not None


def test_z_minimum_reduction_rule_count():
    sc = SetCover(3, [{0, 1}, {2}])
    inst = z_minimum_instance_from_set_cover(sc)
    h = len(sc.subsets)
    expected = (h + 1) * sum(len(s) for s in sc.subsets) + h
    assert len(inst.rules) == expected
