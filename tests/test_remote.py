"""RemoteStore + MasterServer: wire protocol, failure paths, and the
end-to-end guarantee — batch repair over HTTP is bit-identical to the
in-process memory backend, including after mid-batch remote mutations.

The generic MasterStore contract is covered by the conformance kit
(``tests/test_store_conformance.py``); this module tests what is specific
to the remote backend.
"""

import threading

import pytest

from repro.cli import main as cli_main
from repro.core.rules import EditingRule
from repro.engine.csvio import relation_to_csv
from repro.engine.relation import Relation
from repro.engine.remote import (
    MasterServer,
    RemoteStore,
    schema_from_payload,
    schema_to_payload,
)
from repro.engine.schema import INT, RelationSchema, finite_domain
from repro.engine.store import (
    InMemoryStore,
    SqliteStore,
    StoreDetachedError,
    StoreUnavailableError,
)
from repro.engine.tuples import Row
from repro.engine.values import NULL, UNKNOWN
from repro.io import dumps as rules_dumps
from repro.repair.batch import BatchRepairEngine
from repro.repair.oracle import SimulatedUser


@pytest.fixture
def schema():
    return RelationSchema("m", ["k", "v", ("n", INT)])


@pytest.fixture
def rows(schema):
    return [
        Row(schema, ("a", "x", 1)),
        Row(schema, ("b", "y", 2)),
        Row(schema, ("a", "x", 3)),
        Row(schema, ("c", NULL, 4)),
    ]


@pytest.fixture
def served(schema, rows):
    """A running server over a memory backing plus one connected client."""
    backing = InMemoryStore(Relation(schema, rows))
    with MasterServer(backing) as server:
        client = RemoteStore(server.url)
        yield server, backing, client
        client.close()


# -- wire format ---------------------------------------------------------------


def test_schema_payload_roundtrip():
    schema = RelationSchema("m", [
        "plain",
        ("count", INT),
        ("flag", finite_domain("bool01", [0, 1])),
        ("grade", finite_domain("grades", ["a", NULL, UNKNOWN, 2.5])),
    ])
    rebuilt = schema_from_payload(schema_to_payload(schema))
    assert rebuilt == schema
    assert rebuilt.domain_of("count") == INT
    assert rebuilt.domain_of("grade").contains(NULL)


def test_remote_schema_fetched_from_server(served, schema):
    server, _, _ = served
    fetched = RemoteStore(server.url)
    assert fetched.schema == schema
    fetched.close()


def test_remote_values_survive_the_wire(served, schema):
    """NULL/UNKNOWN sentinels and exact-typed numerics cross the HTTP
    boundary with Python equality semantics intact (the sqlite codec)."""
    _, _, client = served
    assert client.probe(("v",), (NULL,)) != ()
    assert [tm["v"] for tm in client.probe(("v",), (NULL,))] == [NULL]
    assert client.probe(("n",), (2,)) == client.probe(("n",), (2.0,)) != ()
    assert client.probe(("n",), ("2",)) == ()
    assert client.probe(("k",), (object(),)) == ()  # unstorable: no request


# -- read-through cache and version piggyback ----------------------------------


def test_probe_cache_hits_and_lru_accounting(served):
    _, _, client = served
    client.probe(("k",), ("a",))
    client.probe(("k",), ("a",))
    info = client.probe_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    requests_before = client.connection_info()["requests"]
    client.probe(("k",), ("a",))  # pure cache hit: no round-trip
    assert client.connection_info()["requests"] == requests_before


def test_server_side_mutation_invalidates_client_caches(served, schema):
    """The per-request header piggyback: another client's mutation is
    observed on this client's next round-trip, and drops its caches
    exactly like a local mutation would."""
    server, _, client = served
    assert len(client.probe(("k",), ("a",))) == 2  # warm the cache
    assert client.active_values("k") == {"a", "b", "c"}
    v0 = client.version

    other = RemoteStore(server.url, schema=schema)
    other.insert(Row(schema, ("a", "x9", 9)))
    foreign_version = other.version
    other.close()

    # a *cache miss* carries the new version back and invalidates every
    # warm line, so the follow-up probe re-reads the server
    client.probe(("k",), ("zzz",))
    assert client.version == foreign_version > v0
    assert client.probe_cache_info()["size"] <= 1  # warm lines dropped
    assert len(client.probe(("k",), ("a",))) == 3
    assert "x9" in client.active_values("v")


def test_version_polling_observes_foreign_mutations(served, schema):
    """poll_interval=0: every version read re-polls, so a foreign mutation
    is observed even when this client's caches are fully warm."""
    server, _, _ = served
    polling = RemoteStore(server.url, schema=schema, poll_interval=0.0)
    assert len(polling.probe(("k",), ("a",))) == 2
    v0 = polling.version

    other = RemoteStore(server.url, schema=schema)
    other.insert(Row(schema, ("a", "x9", 9)))
    other.close()

    assert polling.version > v0  # the poll observed the foreign insert
    assert len(polling.probe(("k",), ("a",))) == 3  # cache was dropped
    polling.close()


def test_probe_many_batches_misses_into_one_request(served, rows):
    _, _, client = served
    requests_before = client.connection_info()["requests"]
    out = client.probe_many(("k",), [("a",), ("b",), ("zzz",), ("a",)])
    assert client.connection_info()["requests"] == requests_before + 1
    assert out[("a",)] == (rows[0], rows[2])
    assert out[("zzz",)] == ()
    # the batched fetch filled the LRU: probes are now pure hits
    requests_before = client.connection_info()["requests"]
    assert client.probe(("k",), ("b",)) == (rows[1],)
    assert client.connection_info()["requests"] == requests_before


def test_client_reconnects_after_connection_drop(served, rows):
    """A severed keep-alive is re-opened transparently for reads."""
    _, _, client = served
    client.probe(("k",), ("a",))
    client._drop_connection()
    assert client.probe(("k",), ("b",)) == (rows[1],)
    assert client.connection_info()["reconnects"] >= 1


def test_stalled_client_does_not_block_other_clients(served, rows):
    """A client that sends headers but never the body must not wedge the
    server: body reads happen outside the store lock, so other clients'
    probes keep flowing (the stalled socket is reaped by the handler
    timeout eventually)."""
    import socket
    import time

    server, _, client = served
    stalled = socket.create_connection(server.address)
    try:
        stalled.sendall(
            b"POST /probe HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\nContent-Length: 999\r\n\r\n"
        )  # ... and the 999-byte body never arrives
        time.sleep(0.1)  # let the handler thread block in its body read
        started = time.monotonic()
        assert client.probe(("k",), ("b",)) == (rows[1],)  # cache miss
        assert time.monotonic() - started < 5
    finally:
        stalled.close()


def test_server_error_message_propagates_as_valueerror(served):
    _, _, client = served
    with pytest.raises(ValueError, match="does not match attribute list"):
        client.probe(("k", "v"), ("a",))


# -- typed failure paths -------------------------------------------------------


def test_unreachable_server_raises_store_unavailable(served, schema):
    server, _, client = served
    url = server.url
    server.close()
    with pytest.raises(StoreUnavailableError, match="serve-master"):
        RemoteStore(url)
    with pytest.raises(StoreUnavailableError, match="unreachable"):
        client.probe(("k",), ("nope",))  # cache miss → dead round-trip


def test_closed_client_raises_store_detached(served):
    _, _, client = served
    client.close()
    with pytest.raises(StoreDetachedError, match="closed"):
        client.probe(("k",), ("a",))
    with pytest.raises(StoreDetachedError, match="closed"):
        client.detach()
    assert "closed" in repr(client)


def test_remote_handle_reattach_dead_server_raises_unavailable(served):
    server, _, client = served
    handle = client.detach()
    server.close()
    with pytest.raises(StoreUnavailableError, match="serve-master"):
        handle.reattach()


def test_sqlite_handle_reattach_missing_file_raises_unavailable(
    tmp_path, schema, rows
):
    """Reattaching a handle whose database file vanished used to silently
    open an EMPTY master — every probe missing, every fix degraded to a
    user question.  Now it is a typed error with a remedy."""
    path = tmp_path / "m.db"
    store = SqliteStore(schema, rows, path=path)
    handle = store.detach()
    store.close()
    path.unlink()
    with pytest.raises(StoreUnavailableError, match="no longer exists"):
        handle.reattach()


def test_sqlite_store_raises_detached_after_close(tmp_path, schema, rows):
    store = SqliteStore(schema, rows, path=tmp_path / "m.db")
    store.close()
    for operation in (
        lambda: store.probe(("k",), ("a",)),
        lambda: store.probe_many(("k",), [("a",)]),
        lambda: list(store),
        lambda: store.active_values("k"),
        lambda: store.insert(Row(schema, ("z", "z", 0))),
        lambda: store.delete(rows[0]),
        lambda: store.detach(),
    ):
        with pytest.raises(StoreDetachedError, match="closed"):
            operation()


def test_batch_run_surfaces_store_error_in_report(schema):
    """A mid-run infrastructure death raises the typed error with the
    partial BatchReport attached (BatchReport.store_errors)."""
    rules = [EditingRule(("k",), ("k",), "v", "v", name="k->v")]
    rows = [Row(schema, ("k1", "v1", 1))]
    server = MasterServer(InMemoryStore(Relation(schema, rows))).start()
    store = RemoteStore(server.url, poll_interval=0.0)
    engine = BatchRepairEngine(rules, store, schema, use_bdd=False,
                               chunk_size=1)
    dirty = Row(schema, ("k1", "wrong", 1))
    clean = Row(schema, ("k1", "v1", 1))
    ok = engine.run([(dirty, SimulatedUser(clean))])
    assert ok.report.store_errors == []
    server.close()
    with pytest.raises(StoreUnavailableError) as excinfo:
        engine.run([(dirty, SimulatedUser(clean))] * 3)
    report = excinfo.value.report
    assert report.store_errors and "unreachable" in report.store_errors[0]
    assert "STORE FAILURE" in report.describe()
    assert report.to_dict()["store_errors"] == report.store_errors


# -- end-to-end: batch repair over HTTP ----------------------------------------


def _pairs(data):
    return [(dt.dirty, SimulatedUser(dt.clean)) for dt in data]


def _assert_sessions_identical(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.final == b.final
        assert a.validated == b.validated
        assert a.round_count == b.round_count
        assert a.completed == b.completed


def _fresh_master_row(bundle):
    donor = bundle.master.row_at(0)
    first = bundle.schema.attributes[0]
    return donor.with_values({first: "ZZ-REMOTE-FRESH"})


@pytest.mark.parametrize("executor,workers", [("thread", 1), ("thread", 2),
                                              ("process", 2)])
def test_remote_batch_identical_to_memory(hosp, hosp_dirty, executor,
                                          workers):
    """serve-master in a thread; batch-repair against it (thread and
    2-worker process executors) must be bit-identical to the memory
    backend — including after a mid-batch remote mutation."""
    data = list(hosp_dirty)
    half = len(data) // 2
    fresh = _fresh_master_row(hosp)

    memory = InMemoryStore(Relation(hosp.schema, hosp.master.iter_rows()))
    mem_engine = BatchRepairEngine(hosp.rules, memory, hosp.schema,
                                   use_bdd=False)
    mem_first = mem_engine.run(_pairs(data[:half]))
    memory.insert(fresh)
    mem_second = mem_engine.run(_pairs(data[half:]))

    backing = InMemoryStore(Relation(hosp.schema, hosp.master.iter_rows()))
    with MasterServer(backing) as server:
        remote = RemoteStore(server.url)
        engine = BatchRepairEngine(
            hosp.rules, remote, hosp.schema, use_bdd=False,
            executor=executor, concurrency=workers, chunk_size=4,
        )
        with engine:
            first = engine.run(_pairs(data[:half]))
            # the mid-batch mutation arrives over HTTP, through the
            # engine's own client
            engine.store.insert(fresh)
            second = engine.run(_pairs(data[half:]))
        remote.close()

    _assert_sessions_identical(first.sessions + second.sessions,
                               mem_first.sessions + mem_second.sessions)
    assert second.report.cache_invalidations >= 1
    assert second.report.master_version == memory.version


def test_remote_mutation_by_foreign_client_with_polling(hosp, hosp_dirty):
    """The harder invalidation story: the mutation comes from ANOTHER
    process/client entirely; version polling makes this engine notice."""
    data = list(hosp_dirty)
    half = len(data) // 2
    fresh = _fresh_master_row(hosp)

    memory = InMemoryStore(Relation(hosp.schema, hosp.master.iter_rows()))
    mem_engine = BatchRepairEngine(hosp.rules, memory, hosp.schema,
                                   use_bdd=False)
    mem_sessions = mem_engine.run(_pairs(data[:half])).sessions
    memory.insert(fresh)
    mem_sessions += mem_engine.run(_pairs(data[half:])).sessions

    backing = InMemoryStore(Relation(hosp.schema, hosp.master.iter_rows()))
    with MasterServer(backing) as server:
        engine = BatchRepairEngine(
            hosp.rules, RemoteStore(server.url, poll_interval=0.0),
            hosp.schema, use_bdd=False,
        )
        sessions = engine.run(_pairs(data[:half])).sessions
        foreign = RemoteStore(server.url, schema=hosp.schema)
        foreign.insert(fresh)
        foreign.close()
        second = engine.run(_pairs(data[half:]))
        sessions += second.sessions
        engine.store.close()

    _assert_sessions_identical(sessions, mem_sessions)
    assert second.report.cache_invalidations == 1


def test_remote_cli_batch_repair(tmp_path, hosp, hosp_dirty):
    """The CLI surface: --master-backend remote --master-url against a
    live server, repaired CSV identical to the memory-backend CLI run."""
    relation_to_csv(hosp.master, tmp_path / "master.csv")
    (tmp_path / "rules.json").write_text(rules_dumps(hosp.rules) + "\n")
    data = list(hosp_dirty)[:10]
    relation_to_csv(Relation(hosp.schema, (d.dirty for d in data)),
                    tmp_path / "dirty.csv")
    relation_to_csv(Relation(hosp.schema, (d.clean for d in data)),
                    tmp_path / "clean.csv")

    common = [
        "batch-repair", "--rules", str(tmp_path / "rules.json"),
        "--input", str(tmp_path / "dirty.csv"),
        "--clean", str(tmp_path / "clean.csv"),
    ]
    assert cli_main(common + [
        "--master", str(tmp_path / "master.csv"),
        "--output", str(tmp_path / "fixed_memory.csv"),
    ]) == 0

    backing = InMemoryStore(Relation(hosp.schema, hosp.master.iter_rows()))
    with MasterServer(backing) as server:
        assert cli_main(common + [
            "--master-backend", "remote", "--master-url", server.url,
            "--output", str(tmp_path / "fixed_remote.csv"),
        ]) == 0

    assert (tmp_path / "fixed_remote.csv").read_text() == \
        (tmp_path / "fixed_memory.csv").read_text()


def test_remote_cli_argument_validation(tmp_path, capsys):
    (tmp_path / "rules.json").write_text("[]\n")
    base = ["batch-repair", "--rules", str(tmp_path / "rules.json"),
            "--input", "x.csv", "--clean", "y.csv"]
    assert cli_main(base + ["--master-backend", "remote"]) == 2
    assert "--master-url" in capsys.readouterr().err
    assert cli_main(base) == 2  # memory backend without --master
    assert "--master is required" in capsys.readouterr().err


def test_remote_store_is_thread_safe_under_concurrent_probes(served, rows):
    """The batch engine's thread fan-out probes one client concurrently;
    the shared connection must serialize without corruption."""
    _, _, client = served
    errors = []

    def worker(key, expected):
        try:
            for _ in range(30):
                assert client.probe(("k",), (key,)) == expected
        except Exception as exc:  # pragma: no cover — diagnostic only
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=("a", (rows[0], rows[2]))),
        threading.Thread(target=worker, args=("b", (rows[1],))),
        threading.Thread(target=worker, args=("zzz", ())),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


# -- /metrics exposition (PR 7) ------------------------------------------------


def _scrape(server, suffix: str = "") -> bytes:
    import urllib.request

    with urllib.request.urlopen(f"{server.url}/metrics{suffix}") as resp:
        return resp.read()


def test_metrics_endpoint_serves_valid_prometheus(served):
    from repro.obs import parse_prometheus_text

    server, backing, client = served
    client.probe(("k",), ("a",))
    client.probe_many(("k",), [("a",), ("b",)])
    parsed = parse_prometheus_text(_scrape(server).decode("utf-8"))
    assert parsed[("repro_server_store_rows", ())] == len(backing)
    assert parsed[("repro_server_store_version", ())] == backing.version
    probed = sum(
        value for (name, labels), value in parsed.items()
        if name == "repro_server_requests_total"
        and "probe" in dict(labels)["endpoint"]
        and dict(labels)["status"] == "200"
    )
    assert probed >= 2
    assert any(
        name == "repro_server_request_seconds"
        and dict(labels).get("quantile") == "0.99"
        for name, labels in parsed
    )


def test_metrics_endpoint_counts_error_responses(served):
    import urllib.error
    import urllib.request

    from repro.obs import parse_prometheus_text

    server, _, _ = served
    with pytest.raises(urllib.error.HTTPError):
        urllib.request.urlopen(f"{server.url}/no-such-route")
    parsed = parse_prometheus_text(_scrape(server).decode("utf-8"))
    assert parsed[(
        "repro_server_requests_total",
        (("endpoint", "/no-such-route"), ("status", "404")),
    )] == 1


def test_metrics_endpoint_json_roundtrip(served):
    import json

    from repro.obs import snapshot_from_dict

    server, backing, client = served
    client.probe(("k",), ("b",))
    payload = json.loads(_scrape(server, "?format=json").decode("utf-8"))
    snapshot = snapshot_from_dict(payload["metrics"])
    assert snapshot.gauge_value("repro_server_store_rows") == len(backing)
    # The scrape itself is traffic too — counted on the next scrape, not
    # this one, so only the probe traffic is asserted here.
    assert snapshot.counter_value(
        "repro_server_requests_total", endpoint="/probe", status="200"
    ) >= 1


def test_server_metrics_registry_is_always_on(served):
    from repro import obs
    from repro.obs import MetricsRegistry

    server, _, _ = served
    # Server-side series never depend on the client-side obs gate.
    assert not obs.enabled()
    assert isinstance(server.metrics, MetricsRegistry)
    _scrape(server)
    assert server.metrics.snapshot().counter_value(
        "repro_server_requests_total", endpoint="/metrics", status="200"
    ) >= 1


def test_client_spans_recorded_when_obs_enabled(served):
    from repro import obs

    _, _, client = served
    obs.enable()
    try:
        client.probe(("k",), ("c",))
        client.probe_many(("k",), [("a",)])
        snap = obs.snapshot()
    finally:
        obs.disable()
    assert snap.histogram_value(
        "repro_store_probe_seconds", backend="remote", op="probe"
    ).count == 1
    assert snap.histogram_value(
        "repro_store_probe_seconds", backend="remote", op="many"
    ).count == 1
    assert snap.counter_value(
        "repro_remote_requests_total", endpoint="/probe", status="ok"
    ) >= 1
    assert snap.histogram_value(
        "repro_remote_request_seconds", endpoint="/probe"
    ).count >= 1
