#!/usr/bin/env python3
"""Beyond the paper: batch database repair and rule discovery.

The paper's conclusion lists two follow-ups this library also implements:

* **certain fixes in data repairing** (not just monitoring) — repair a whole
  relation at once, touching only tuples whose region attributes are
  corroborated by master data, never guessing (`repro.repair.database_repair`);
* **discovering editing rules** from master data — mine exact, selective
  FDs into guarded editing rules and vet them with the Sect. 4 analyses
  (`repro.discovery`).

Run:  python examples/batch_repair_and_discovery.py
"""

from repro import (
    CertainFix,
    SimulatedUser,
    comp_c_region,
    discover_editing_rules,
    make_hosp,
    repair_database,
)
from repro.datasets import make_dirty_dataset
from repro.discovery import rules_only
from repro.engine.relation import Relation


def main():
    hosp = make_hosp(num_hospitals=100, num_measures=8, seed=13)
    print(f"HOSP master: |Dm| = {len(hosp.master)}")

    # ---------------------------------------------------------------- mining
    print("\n## Rule discovery")
    discovered = discover_editing_rules(hosp.master, max_lhs_size=2)
    print(f"mined {len(discovered)} editing rules from exact master FDs; "
          f"first five:")
    for d in discovered[:5]:
        print(f"  {d.describe()}")

    mined_rules = rules_only(discovered)
    regions = comp_c_region(mined_rules, hosp.master, hosp.schema,
                            validate_patterns=16)
    print(f"\nbest certain region from mined rules: "
          f"{regions[0].describe() if regions else 'none'}")
    print("(the hand-written 21-rule set yields the same Z = [id, mCode])")

    # ------------------------------------------------------------ batch mode
    print("\n## Batch database repair")
    data = make_dirty_dataset(
        hosp, size=200, duplicate_rate=0.6, noise_rate=0.25, seed=13,
        noise_attrs=tuple(a for a in hosp.schema.attributes
                          if a not in ("id", "mCode")),
    )
    relation = Relation(hosp.schema)
    for dt in data:
        relation.insert(dt.dirty)

    repaired, report = repair_database(
        relation, hosp.rules, hosp.master, hosp.schema
    )
    print(report.describe())

    correct = sum(
        1 for row, dt in zip(repaired, data) if row == dt.clean
    )
    wrong_writes = sum(
        1
        for row, dt in zip(repaired, data)
        for attr in hosp.schema.attributes
        if row[attr] != dt.dirty[attr] and row[attr] != dt.clean[attr]
    )
    print(f"ground truth check: {correct}/{len(data)} tuples now exactly "
          f"clean; wrong writes: {wrong_writes}")

    # --------------------------------------------------- compose with monitoring
    print("\n## Monitoring the leftovers")
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema, use_bdd=True)
    leftovers = [
        (row, dt) for row, dt, (status_row, _, status) in zip(
            repaired, data, report.per_tuple
        )
        if status != "certain"
    ]
    print(f"{len(leftovers)} tuples need user interaction; monitoring them...")
    for row, dt in leftovers:
        session = engine.fix(row, SimulatedUser(dt.clean))
        assert session.final == dt.clean
    print("all leftovers fixed to ground truth interactively. ✓")


if __name__ == "__main__":
    main()
