#!/usr/bin/env python3
"""Hospital data-entry monitoring (the paper's HOSP scenario, Sect. 6).

Simulates the paper's data-monitoring deployment: tuples arrive at the point
of entry carrying typos, swapped values and missing fields; CertainFix asks
a (simulated) clerk to vouch for a couple of attributes per round, fixes
everything the editing rules and master data entail, and guarantees each
committed tuple is correct.

Run:  python examples/hospital_monitoring.py [--tuples N] [--noise PCT]
"""

import argparse
from collections import Counter

from repro import CertainFix, SimulatedUser
from repro.datasets import make_dirty_dataset, make_hosp
from repro.metrics import aggregate, evaluate_repair


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tuples", type=int, default=150)
    parser.add_argument("--noise", type=float, default=0.2)
    parser.add_argument("--duplicate-rate", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print("Generating HOSP master data (three base tables, natural-joined)...")
    hosp = make_hosp(num_hospitals=150, num_measures=10, seed=args.seed)
    print(f"  |Dm| = {len(hosp.master)} tuples over "
          f"{len(hosp.schema)} attributes, {len(hosp.rules)} editing rules")

    engine = CertainFix(hosp.rules, hosp.master, hosp.schema, use_bdd=True)
    regions = engine.regions
    print(f"\nPrecomputed certain regions (CompCRegion):")
    for candidate in regions[:3]:
        print(f"  {candidate.describe()}")
    print(f"Round-1 suggestion: assert {list(engine.initial_region.region.attrs)}")

    data = make_dirty_dataset(
        hosp, size=args.tuples, duplicate_rate=args.duplicate_rate,
        noise_rate=args.noise, seed=args.seed,
    )
    print(f"\nMonitoring {len(data)} dirty tuples "
          f"(d% = {args.duplicate_rate:.0%}, n% = {args.noise:.0%})...")

    evaluations = []
    rounds = Counter()
    first_shown = False
    for dirty_tuple in data:
        oracle = SimulatedUser(dirty_tuple.clean)
        session = engine.fix(dirty_tuple.dirty, oracle)
        rounds[session.round_count] += 1
        evaluations.append(
            evaluate_repair(dirty_tuple.dirty, dirty_tuple.clean,
                            session.final, session.attrs_asserted_by_user)
        )
        if not first_shown and session.round_count >= 3:
            first_shown = True
            print(f"\nA {session.round_count}-round session "
                  f"(a hospital not in the master data):")
            for r in session.rounds:
                fixed = ", ".join(r.fixed_by_rules) or "-"
                print(f"  round {r.index}: user vouches for "
                      f"{list(r.suggested)}; rules then fix [{fixed}]")

    metrics = aggregate(evaluations)
    print(f"\nInteraction rounds histogram: {dict(sorted(rounds.items()))}")
    print(f"tuple-level recall : {metrics.recall_t:.3f}")
    print(f"attr-level recall  : {metrics.recall_a:.3f} "
          f"(rule-made corrections only)")
    print(f"precision          : {metrics.precision_a:.3f} "
          f"(the certain-fix guarantee)")
    print(f"F-measure          : {metrics.f_measure:.3f}")
    print(f"user corrections   : {metrics.user_corrected_attrs} attributes")
    stats = engine.cache_stats
    print(f"Suggest+ BDD cache : {stats.hits} hits / {stats.misses} misses "
          f"({stats.hit_rate:.1%} hit rate)")
    assert metrics.precision_a == 1.0
    print("\nEvery committed tuple equals its ground truth. ✓")


if __name__ == "__main__":
    main()
