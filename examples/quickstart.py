#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Walks through Fig. 1 and Examples 1-13 of *Towards Certain Fixes with
Editing Rules and Master Data* (Fan et al.): an input tuple with errors, the
editing rules that fix it, why naive constraint-based repair cannot, and how
a certain region guarantees the fix.

Run:  python examples/quickstart.py
"""

from repro import chase, is_certain_region
from repro.constraints.cfd import CFD
from repro.core.patterns import PatternTuple
from repro.datasets import make_running_example


def show(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main():
    ex = make_running_example()
    t1 = ex.inputs["t1"]

    show("The input tuple t1 (Fig. 1a) — a UK supplier with errors")
    for attr, value in t1.to_dict().items():
        print(f"  {attr:>5} = {value!r}")
    print("\nErrors: AC should be 131 (not 020), str should be '51 Elm Row',")
    print("and 'Bob' is a non-standard form of 'Robert'.")

    show("Example 1: a CFD detects the inconsistency but cannot locate it")
    cfd = CFD("AC", "city", PatternTuple({"AC": "020", "city": "Ldn"}))
    print(f"CFD: AC = 020 -> city = Ldn")
    print(f"t1 violates it: {cfd.single_tuple_violation(t1)}")
    print("But which of t1[AC] / t1[city] is wrong? The CFD cannot say —")
    print("a repair heuristic may 'fix' city to Ldn, breaking a correct value.")

    show("Editing rules (Example 3) fix errors instead of just finding them")
    for rule in ex.rules[:4]:
        print(f"  {rule!r}")
    print("  ... 9 rules in total (Example 11)")

    show("The fix chase from the validated region Z = (zip, phn, type)")
    out = chase(t1, ("zip", "phn", "type"), ex.rules, ex.master)
    print(f"unique fix: {out.unique}")
    for rule, tm, batch in out.fired:
        print(f"  batch {batch}: {rule.name} sets "
              f"{rule.rhs} := {tm[rule.rhs_m]!r}")
    print("\nFixed values:")
    for attr in ("FN", "AC", "str", "city"):
        print(f"  {attr:>5} = {out.assignment[attr]!r}")
    print(f"\ncovered attributes: {sorted(out.covered)}")
    print(f"certain fix (covers all of R)? {out.is_certain(ex.schema)}")
    print("-> 'item' is not covered: no rule can fix it (Example 8),")
    print("   so the user must vouch for it.")

    show("Example 9: adding item to Z yields a certain region")
    region = ex.regions["Zzmi"]
    print(f"Region Z = {list(region.attrs)} with {len(region.tableau)} "
          f"master-derived patterns:")
    for pattern in region.tableau:
        print(f"  {pattern!r}")
    certain = is_certain_region(ex.rules, ex.master, region, ex.schema)
    print(f"\nIs it a certain region? {certain}")
    print("Every tuple marked by it is guaranteed a unique, complete fix.")

    show("Example 5: why validation matters — conflicting evidence on t3")
    t3 = ex.inputs["t3"]
    out3 = chase(t3, ex.regions["ZAHZ"].attrs, ex.rules, ex.master)
    print(f"t3 asserts both its zip (matching {ex.masters['s1']['FN']}'s "
          f"record) and its phone (matching {ex.masters['s2']['FN']}'s):")
    print(f"unique fix: {out3.unique}")
    print(f"conflict: {out3.conflict.describe()}")
    print("-> the framework would ask the user to assert only ONE of them.")


if __name__ == "__main__":
    main()
