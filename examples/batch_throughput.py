#!/usr/bin/env python3
"""Batch repair at throughput: shared caches over a dirty tuple stream.

The paper's CertainFix monitors one tuple at a time; production streams
arrive in bulk.  ``BatchRepairEngine`` precomputes the certain regions,
master hash indexes and the Suggest⁺ BDD once, memoizes chase/TransFix
outcomes on the validated pattern, and runs the stream in chunks — here on
a HOSP workload, with the CSV round trip the CLI's ``batch-repair`` command
uses.

Run:  PYTHONPATH=src python examples/batch_throughput.py
"""

import tempfile
import time
from pathlib import Path

from repro import BatchRepairEngine, CertainFix, SimulatedUser, make_hosp
from repro.datasets import make_dirty_dataset
from repro.engine.csvio import relation_to_csv
from repro.engine.relation import Relation


def main():
    hosp = make_hosp(num_hospitals=60, num_measures=8, seed=13)
    data = make_dirty_dataset(
        hosp, size=150, duplicate_rate=0.3, noise_rate=0.2, seed=13
    )
    print(f"workload: |Dm| = {len(hosp.master)}, |D| = {len(data)} dirty tuples")

    # ------------------------------------------------- the batch engine
    engine = BatchRepairEngine(
        hosp.rules, hosp.master, hosp.schema,
        use_bdd=True, memoize=True, chunk_size=64,
    )
    result = engine.run_dirty(data)
    print("\n## BatchRepairEngine")
    print(result.report.describe())
    assert all(s.final == dt.clean for s, dt in zip(result.sessions, data))
    print("every fix matches the ground truth (certain fixes)")

    # -------------------------------- baseline: naive per-tuple monitoring
    naive = CertainFix(hosp.rules, hosp.master, hosp.schema, use_bdd=False,
                       regions=engine.engine.regions)
    started = time.perf_counter()
    naive.fix_stream((dt.dirty, SimulatedUser(dt.clean)) for dt in data)
    elapsed = time.perf_counter() - started
    print(f"\nnaive fix_stream: {len(data) / elapsed:.1f} tuples/s vs "
          f"batch {result.report.throughput:.1f} tuples/s "
          f"({result.report.throughput * elapsed / len(data):.1f}x)")

    # ------------------------------------------------- CSV streaming path
    with tempfile.TemporaryDirectory() as tmp:
        dirty_csv = Path(tmp) / "dirty.csv"
        clean_csv = Path(tmp) / "clean.csv"
        relation_to_csv(Relation(hosp.schema, (dt.dirty for dt in data)),
                        dirty_csv)
        relation_to_csv(Relation(hosp.schema, (dt.clean for dt in data)),
                        clean_csv)
        csv_result = engine.run_csv(dirty_csv, clean_path=clean_csv)
        # Typed columns (Score is INT) coerce back on load, so the CSV
        # path reaches the same ground truth as the in-memory run.
        assert all(s.final == dt.clean
                   for s, dt in zip(csv_result.sessions, data))
        print(f"\nCSV streaming path: {csv_result.report.tuples} rows, "
              f"{csv_result.report.throughput:.1f} tuples/s "
              f"(suggestion cache "
              f"{csv_result.report.suggestion_hit_rate:.0%} hit)")


if __name__ == "__main__":
    main()
