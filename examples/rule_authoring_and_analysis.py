#!/usr/bin/env python3
"""Static analysis workbench: authoring editing rules and vetting them.

Before deploying rules for data monitoring, Sect. 4 of the paper asks three
questions, all answered by this library:

1. **Consistency** — can my rules ever disagree on a marked tuple?
2. **Coverage** — does a region guarantee complete (certain) fixes?
3. **Z-minimum** — what is the least a user must vouch for?

The example also shows the PTIME direct-fix analysis with its generated SQL
and the NP-hardness made tangible via the paper's own 3SAT reduction.

Run:  python examples/rule_authoring_and_analysis.py
"""

from repro import (
    EditingRule,
    PatternTuple,
    Region,
    Relation,
    RelationSchema,
    check_region,
    is_direct_certain_region,
    z_counting,
    z_minimum_exact,
    z_validating,
)
from repro.analysis.direct_fixes import direct_consistency_queries
from repro.engine.schema import INT
from repro.reductions import ThreeSAT, z_validating_instance_from_3sat


def banner(text):
    print()
    print("-" * 72)
    print(text)
    print("-" * 72)


def main():
    # A small product-catalog scenario: input records R(sku, ean, name,
    # brand, price_band) matched against a master catalog.
    schema = RelationSchema(
        "R", [("sku", INT), ("ean", INT), ("name", INT), ("brand", INT),
              ("band", INT)],
    )
    master_schema = RelationSchema(
        "Rm", [("sku", INT), ("ean", INT), ("name", INT), ("brand", INT),
               ("band", INT)],
    )
    master = Relation(master_schema)
    master.insert((1, 101, 11, 21, 1))
    master.insert((2, 102, 12, 22, 1))
    master.insert((3, 103, 13, 21, 2))

    rules = [
        EditingRule("sku", "sku", "ean", "ean", name="sku->ean"),
        EditingRule("sku", "sku", "name", "name", name="sku->name"),
        EditingRule("ean", "ean", "brand", "brand", name="ean->brand"),
        EditingRule("name", "name", "band", "band", name="name->band"),
    ]

    banner("1. Coverage: is (Z = {sku}, tc = (1)) a certain region?")
    region = Region.from_patterns(("sku",), [{"sku": 1}])
    report = check_region(rules, master, region, schema)
    print(report.describe())
    print("-> yes: sku determines everything through rule chaining.")

    banner("2. Consistency: a conflicting rule breaks it")
    bad_master = Relation(master_schema)
    bad_master.insert((1, 101, 11, 21, 1))
    bad_master.insert((1, 101, 11, 22, 1))  # same ean, different brand!
    report = check_region(rules, bad_master, region, schema)
    print(report.describe())
    conflict = report.first_conflict()
    print(f"-> {conflict.describe()}")

    banner("3. Z-minimum: the least the user must vouch for")
    result = z_minimum_exact(rules, master, schema)
    z, witness = result
    print(f"minimum Z = {list(z)} with witness pattern {witness!r}")
    print(f"Z-validating({list(z)}): "
          f"{z_validating(rules, master, z, schema) is not None}")
    print(f"Z-counting({list(z)}): "
          f"{z_counting(rules, master, z, schema)} certain patterns")

    banner("4. Direct fixes (Theorem 5): PTIME checks with generated SQL")
    direct_region = Region.from_patterns(
        ("sku", "ean", "name"), [{"sku": 1, "ean": 101, "name": 11}]
    )
    print(f"direct certain region: "
          f"{is_direct_certain_region(rules, master, direct_region, schema)}")
    queries = direct_consistency_queries(rules, "Dm", direct_region)
    print(f"\nThe consistency check as SQL ({len(queries)} pair queries); "
          f"first one:\n")
    print(queries[0])

    banner("5. Why the general problems are hard: the 3SAT reduction")
    formula = ThreeSAT.from_tuples(
        3, [((0, True), (1, True), (2, False)),
            ((0, False), (1, True), (2, True))],
    )
    print(f"formula: {formula!r} (satisfiable: {formula.satisfiable()})")
    instance = z_validating_instance_from_3sat(formula)
    witness = z_validating(
        instance.rules, instance.master, instance.z, instance.schema
    )
    print(f"Z-validating on the constructed rule instance finds a witness: "
          f"{witness!r}")
    assignment = [witness[f"X{i+1}"].value for i in range(3)]
    print(f"-> which decodes to the satisfying assignment {assignment}")


if __name__ == "__main__":
    main()
