#!/usr/bin/env python3
"""DBLP record enrichment and a head-to-head with heuristic repair.

The paper's second scenario: bibliographic records with missing homepages,
wrong venues and typo'd metadata.  Two repair strategies run on the same
dirty stream:

* **CertainFix** — the paper's method: asks the user for a handful of
  assertions, fixes only what the rules and master data *guarantee*;
* **IncRep** — the CFD-based heuristic baseline of Cong et al. [14]:
  repairs everything it can, with no certainty, mis-repairing under noise.

Run:  python examples/dblp_enrichment.py [--noise PCT]
"""

import argparse

from repro import CertainFix, IncRep, SimulatedUser
from repro.datasets import make_dblp, make_dirty_dataset
from repro.metrics import aggregate, evaluate_repair


def run_certainfix(bundle, data):
    engine = CertainFix(bundle.rules, bundle.master, bundle.schema,
                        use_bdd=True)
    evaluations = []
    for dirty_tuple in data:
        oracle = SimulatedUser(dirty_tuple.clean)
        session = engine.fix(dirty_tuple.dirty, oracle)
        evaluations.append(
            evaluate_repair(dirty_tuple.dirty, dirty_tuple.clean,
                            session.final, session.attrs_asserted_by_user)
        )
    return aggregate(evaluations)


def run_increp(bundle, data):
    increp = IncRep(bundle.rules, bundle.master, bundle.schema)
    evaluations = []
    for dirty_tuple in data:
        result = increp.repair(dirty_tuple.dirty)
        evaluations.append(
            evaluate_repair(dirty_tuple.dirty, dirty_tuple.clean,
                            result.row, user_asserted=())
        )
    return aggregate(evaluations)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tuples", type=int, default=150)
    parser.add_argument("--noise", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print("Generating DBLP master data (papers ⋈ proceedings ⋈ homepages)...")
    dblp = make_dblp(num_papers=1200, num_authors=400, num_venues=60,
                     seed=args.seed)
    print(f"  |Dm| = {len(dblp.master)}, {len(dblp.rules)} editing rules "
          f"(incl. the cross-attribute homepage rules φ2/φ4)")

    data = make_dirty_dataset(dblp, size=args.tuples, duplicate_rate=0.3,
                              noise_rate=args.noise, seed=args.seed)
    errors = sum(len(dt.erroneous_attrs) for dt in data)
    print(f"\nDirty stream: {len(data)} tuples, {errors} attribute errors "
          f"(n% = {args.noise:.0%})")

    print("\nRunning CertainFix (interactive, certainty-guaranteed)...")
    ours = run_certainfix(dblp, data)
    print("Running IncRep (automatic, heuristic)...")
    baseline = run_increp(dblp, data)

    print(f"\n{'':24}{'CertainFix':>12}{'IncRep':>12}")
    for label, attr in (
        ("attribute recall", "recall_a"),
        ("precision", "precision_a"),
        ("F-measure", "f_measure"),
    ):
        print(f"{label:<24}{getattr(ours, attr):>12.3f}"
              f"{getattr(baseline, attr):>12.3f}")
    print(f"{'wrong repairs':<24}{ours.wrong_attrs:>12}{baseline.wrong_attrs:>12}")

    print("\nCertainFix never writes a wrong value (precision 1.0); IncRep")
    print("trades correctness for autonomy and mis-repairs under noise —")
    print("exactly the contrast of the paper's Fig. 11.")


if __name__ == "__main__":
    main()
