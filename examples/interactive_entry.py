#!/usr/bin/env python3
"""Interactive data entry with certain fixes — a terminal demo.

Plays the role of the paper's Fig. 2 deployment: you type a hospital record
(or accept a prefilled dirty one), the framework suggests which attributes
to verify, you confirm or correct them, and the editing rules fill in and
fix the rest with a correctness guarantee.

Run interactively:  python examples/interactive_entry.py
Scripted demo:      python examples/interactive_entry.py --demo
"""

import argparse
import random

from repro import CertainFix
from repro.datasets import make_dirty_dataset, make_hosp
from repro.engine.values import NULL


class TerminalUser:
    """Prompts on stdin for each suggested attribute."""

    def __init__(self, current_hint=None):
        self.hint = current_hint

    def assert_correct(self, current, suggestion):
        values = {}
        print("\nPlease verify the following attributes "
              "(enter = keep shown value):")
        for attr in suggestion:
            shown = current[attr]
            answer = input(f"  {attr} [{shown!r}]: ").strip()
            values[attr] = answer if answer else shown
        return values

    def revise(self, current, suggestion, reason):
        print(f"\n!! Your assertions conflict with master data ({reason}).")
        return self.assert_correct(current, suggestion)


class DemoUser:
    """Non-interactive stand-in: answers from the ground truth."""

    def __init__(self, clean):
        self.clean = clean

    def assert_correct(self, current, suggestion):
        print("\nVerifying attributes (scripted):")
        for attr in suggestion:
            marker = "corrected" if current[attr] != self.clean[attr] else "ok"
            print(f"  {attr}: {current[attr]!r} -> "
                  f"{self.clean[attr]!r} ({marker})")
        return {attr: self.clean[attr] for attr in suggestion}

    def revise(self, current, suggestion, reason):
        return self.assert_correct(current, suggestion)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--demo", action="store_true",
                        help="run without stdin, scripted from ground truth")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print("Loading HOSP master data and editing rules...")
    hosp = make_hosp(num_hospitals=80, num_measures=8, seed=args.seed)
    engine = CertainFix(hosp.rules, hosp.master, hosp.schema)
    print(f"  |Dm| = {len(hosp.master)}, {len(hosp.rules)} rules; "
          f"initial region: {list(engine.initial_region.region.attrs)}")

    data = make_dirty_dataset(hosp, size=1, duplicate_rate=1.0,
                              noise_rate=0.35, seed=args.seed)
    entry = data.tuples[0]
    print("\nIncoming record (dirty fields marked *):")
    for attr in hosp.schema.attributes:
        flag = "*" if entry.dirty[attr] != entry.clean[attr] else " "
        value = entry.dirty[attr]
        print(f"  {flag} {attr:>10} = "
              f"{'<missing>' if value is NULL else value!r}")

    oracle = DemoUser(entry.clean) if args.demo else TerminalUser()
    session = engine.fix(entry.dirty, oracle)

    print("\n" + "=" * 60)
    print(f"Fixed in {session.round_count} round(s).")
    for r in session.rounds:
        fixed = ", ".join(r.fixed_by_rules) or "(nothing new)"
        print(f"  round {r.index}: verified {list(r.asserted)}; "
              f"rules fixed {fixed}")
    print("\nCommitted tuple:")
    for attr in hosp.schema.attributes:
        print(f"    {attr:>10} = {session.final[attr]!r}")
    if args.demo:
        assert session.final == entry.clean
        print("\nMatches the ground truth exactly. ✓")


if __name__ == "__main__":
    main()
