"""Legacy shim: lets ``pip install -e . --no-use-pep517`` work in offline
environments that lack the ``wheel`` package.  All metadata lives in
``pyproject.toml``."""

from setuptools import setup

setup()
