"""Shared benchmark configuration.

Benchmark scale (DESIGN.md §5): the paper's defaults (d% = 30, |Dm| = 10K,
n% = 20, C++ implementation) are scaled to |Dm| ≈ 1.5K and |D| ≈ 200 so the
whole harness regenerates every table and figure in minutes of pure Python.
All sweeps keep the paper's relative parameter spans; every bench asserts
the paper's qualitative shape and prints the regenerated rows.
"""

import pathlib

import pytest

from repro.experiments.config import ExperimentConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_HOSP = ExperimentConfig(dataset="hosp", master_size=1500, input_size=200)
BENCH_DBLP = ExperimentConfig(dataset="dblp", master_size=1500, input_size=200)


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def bench_hosp():
    return BENCH_HOSP


@pytest.fixture(scope="session")
def bench_dblp():
    return BENCH_DBLP
