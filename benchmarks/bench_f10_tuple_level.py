"""Fig. 10 — tuple-level recall under the d% / |Dm| / n% sweeps.

Paper's shapes: (a,d) recall_t at k=1 tracks d% and rises with it;
(b,e) k=1 is insensitive to |Dm| (it equals d%); (c,f) recall is
insensitive to the noise rate.
"""

import pytest

from benchmarks.conftest import BENCH_DBLP, BENCH_HOSP, emit
from repro.experiments.config import load_workload
from repro.experiments.figures import fig10_tuple_recall
from repro.experiments.runner import run_stream
from repro.experiments.tables import format_table


@pytest.mark.parametrize("config,name", [
    (BENCH_HOSP.with_(input_size=150), "hosp"),
    (BENCH_DBLP.with_(input_size=150), "dblp"),
])
def test_f10_vary_duplicate_rate(benchmark, config, name):
    headers, rows = fig10_tuple_recall(config, "d%")
    emit(f"f10_d_{name}", format_table(
        headers, rows, f"Fig. 10(a/d) ({name}): recall_t vs d%"
    ))
    k1 = [row[1] for row in rows]
    # k=1 recall tracks the duplicate rate: higher d%, higher recall.
    assert k1[-1] > k1[0]
    for (d, *recalls) in rows:
        # ≈ d% plus the tuples whose errors all fell inside the asserted /
        # rule-fixable attributes (a larger share on the narrow DBLP schema).
        assert d - 0.17 <= recalls[0] <= d + 0.35
    _bench_one_stream(benchmark, config)


@pytest.mark.parametrize("config,name", [
    (BENCH_HOSP.with_(input_size=120), "hosp"),
])
def test_f10_vary_master_size(benchmark, config, name):
    headers, rows = fig10_tuple_recall(config, "|Dm|")
    emit(f"f10_dm_{name}", format_table(
        headers, rows, f"Fig. 10(b/e) ({name}): recall_t vs |Dm|"
    ))
    k1 = [row[1] for row in rows]
    # k=1 is governed by d%, not |Dm| (paper: "recall_t is 0.3 when k=1,
    # exactly the same as d%").
    assert max(k1) - min(k1) < 0.2
    _bench_one_stream(benchmark, config)


@pytest.mark.parametrize("config,name", [
    (BENCH_HOSP.with_(input_size=120), "hosp"),
    (BENCH_DBLP.with_(input_size=120), "dblp"),
])
def test_f10_vary_noise_rate(benchmark, config, name):
    headers, rows = fig10_tuple_recall(config, "n%")
    emit(f"f10_n_{name}", format_table(
        headers, rows, f"Fig. 10(c/f) ({name}): recall_t vs n%"
    ))
    final = [row[-1] for row in rows]
    # Insensitive to noise: the k=4 recall stays (near-)complete throughout
    # (a rare 5th hosp round keeps a couple of tuples open at k=4).
    assert all(v >= 0.97 for v in final)
    assert max(final) - min(final) < 0.05
    _bench_one_stream(benchmark, config)


def _bench_one_stream(benchmark, config):
    bundle, data = load_workload(config.with_(input_size=30))
    benchmark.pedantic(
        lambda: run_stream(bundle, data), rounds=2, iterations=1
    )
