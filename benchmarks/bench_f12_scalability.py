"""Fig. 12 — per-round latency: CertainFix vs CertainFix⁺ (BDD cache).

Paper's shapes: (a,b) both scale with |Dm|, the BDD variant substantially
cheaper; (c,d) CertainFix is flat in |D| while CertainFix⁺ amortizes as the
cache warms ("when |D| > 100 ... the average elapsed time remains
unchanged").
"""

import pytest

from benchmarks.conftest import BENCH_DBLP, BENCH_HOSP, emit
from repro.experiments.config import load_workload
from repro.experiments.figures import fig12_scalability
from repro.experiments.runner import run_stream
from repro.experiments.tables import format_table


@pytest.mark.parametrize("config,name", [
    (BENCH_HOSP.with_(input_size=80), "hosp"),
    (BENCH_DBLP.with_(input_size=80), "dblp"),
])
def test_f12_vary_master_size(benchmark, config, name):
    headers, rows = fig12_scalability(config, "|Dm|")
    emit(f"f12_dm_{name}", format_table(
        headers, rows,
        f"Fig. 12(a/b) ({name}): ms per interaction round vs |Dm|",
    ))
    plain = [row[1] for row in rows]
    cached = [row[2] for row in rows]
    # CertainFix latency grows with |Dm| (suggestion recomputation sweeps
    # the master); the BDD cache wins at every size and by a wide margin
    # at the largest.
    assert plain[-1] > plain[0]
    assert all(c <= p for p, c in zip(plain, cached))
    assert cached[-1] < plain[-1] / 3
    _bench_round(benchmark, config, use_bdd=True)


@pytest.mark.parametrize("config,name", [
    (BENCH_HOSP.with_(master_size=1200), "hosp"),
])
def test_f12_vary_input_size(benchmark, config, name):
    headers, rows = fig12_scalability(config, "|D|")
    emit(f"f12_d_{name}", format_table(
        headers, rows,
        f"Fig. 12(c/d) ({name}): ms per interaction round vs |D|",
    ))
    cached = [row[2] for row in rows]
    hit_rates = [row[3] for row in rows]
    # The cache warms: hit rate grows with the stream length.
    assert hit_rates == sorted(hit_rates)
    assert hit_rates[-1] > 0.9
    # Warm-cache latency beats the cold stream's.
    assert cached[-1] <= cached[0] * 1.5
    _bench_round(benchmark, config.with_(input_size=40), use_bdd=False)


def _bench_round(benchmark, config, use_bdd):
    bundle, data = load_workload(config.with_(input_size=30))
    benchmark.pedantic(
        lambda: run_stream(bundle, data, use_bdd=use_bdd),
        rounds=2, iterations=1,
    )
