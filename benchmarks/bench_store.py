#!/usr/bin/env python3
"""MasterStore backends: memory vs sqlite throughput, and invalidation cost.

Seeds ``BENCH_store.json``.  Three questions, per dataset:

1. **backend throughput** — the same batch workload through
   :class:`~repro.engine.store.InMemoryStore` (hash indexes in RAM) and
   :class:`~repro.engine.store.SqliteStore` (out-of-core indexed tables
   behind an LRU probe cache), outputs asserted identical;
2. **warm-cache rerun** — the same workload again on warmed shared caches
   (the steady state of a monitoring service);
3. **post-update rerun** — one master insert between runs bumps the store
   version, so the rerun first rebuilds regions/BDD/memos; the gap between
   (2) and (3) is the price of an incremental master update.

Run:  PYTHONPATH=src python benchmarks/bench_store.py [--quick]

Not a pytest module on purpose: a standalone perf harness whose output
file downstream sessions diff against.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.engine.store import SqliteStore, as_master_store
from repro.experiments.config import ExperimentConfig, load_workload
from repro.repair.batch import BatchRepairEngine

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(engine, data) -> tuple:
    started = time.perf_counter()
    result = engine.run_dirty(data)
    elapsed = time.perf_counter() - started
    return result, elapsed


def _throughput(count: int, elapsed: float) -> float:
    return round(count / elapsed, 2) if elapsed > 0 else 0.0


def _fresh_master_row(bundle):
    """A master tuple with an unseen key, to force real invalidation."""
    donor = bundle.master.row_at(0)
    first_attr = bundle.master.schema.attributes[0]
    return donor.with_values({first_attr: "bench-store-fresh-key"})


def bench_dataset(dataset: str, scale: dict) -> dict:
    config = ExperimentConfig(dataset=dataset, **scale)
    bundle, data = load_workload(config)
    print(f"[{dataset}] |Dm|={len(bundle.master)}  |D|={len(data)}")

    backends = {
        "memory": as_master_store(bundle.master),
        "sqlite": SqliteStore.from_relation(bundle.master),
    }
    out: dict = {
        "master_size": len(bundle.master),
        "input_size": len(data),
        "backends": {},
    }
    finals = {}
    for name, store in backends.items():
        setup_started = time.perf_counter()
        engine = BatchRepairEngine(bundle.rules, store, bundle.schema)
        setup = time.perf_counter() - setup_started

        cold, cold_s = _run(engine, data)
        warm, warm_s = _run(engine, data)

        store.insert(_fresh_master_row(bundle))
        updated, updated_s = _run(engine, data)
        assert updated.report.cache_invalidations == 1, (
            f"{name}: master insert did not invalidate the shared caches"
        )

        finals[name] = [s.final for s in cold.sessions]
        entry = {
            "setup_s": round(setup, 4),
            "cold_run": {
                "elapsed_s": round(cold_s, 4),
                "throughput_tps": _throughput(len(data), cold_s),
            },
            "warm_cache_run": {
                "elapsed_s": round(warm_s, 4),
                "throughput_tps": _throughput(len(data), warm_s),
            },
            "post_update_run": {
                "elapsed_s": round(updated_s, 4),
                "throughput_tps": _throughput(len(data), updated_s),
                "cache_invalidations": updated.report.cache_invalidations,
            },
            "invalidation_overhead_s": round(max(updated_s - warm_s, 0.0), 4),
            "master_version_final": store.version,
        }
        if hasattr(store, "probe_cache_info"):
            entry["probe_cache"] = store.probe_cache_info()
        out["backends"][name] = entry
        print(f"  {name:6s}: cold {entry['cold_run']['throughput_tps']:8.1f} "
              f"tps  warm {entry['warm_cache_run']['throughput_tps']:8.1f} "
              f"tps  post-update "
              f"{entry['post_update_run']['throughput_tps']:8.1f} tps")

    assert finals["memory"] == finals["sqlite"], (
        "backend outputs diverged — memory and sqlite must fix identically"
    )
    mem = out["backends"]["memory"]["cold_run"]["throughput_tps"]
    sql = out["backends"]["sqlite"]["cold_run"]["throughput_tps"]
    out["sqlite_relative_throughput"] = round(sql / mem, 3) if mem else 0.0
    print(f"  outputs identical; sqlite at "
          f"{out['sqlite_relative_throughput']:.0%} of memory throughput")
    return out


def run(quick: bool, output: Path) -> dict:
    scale = (
        {"master_size": 600, "input_size": 100}
        if quick
        else {"master_size": 1500, "input_size": 200}
    )
    results = {
        dataset: bench_dataset(dataset, scale) for dataset in ("hosp", "dblp")
    }
    payload = {
        "benchmark": "master_store_backends",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "results": results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke scale (|Dm|~600, |D|=100)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_store.json")
    args = parser.parse_args(argv)
    run(args.quick, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
