#!/usr/bin/env python3
"""MasterStore backends: memory vs sqlite vs remote, plus invalidation cost.

Seeds ``BENCH_store.json``.  Four questions, per dataset:

1. **backend throughput** — the same batch workload through
   :class:`~repro.engine.store.InMemoryStore` (hash indexes in RAM),
   :class:`~repro.engine.store.SqliteStore` (out-of-core indexed tables
   behind an LRU probe cache) and :class:`~repro.engine.remote.RemoteStore`
   (HTTP read-through client against an in-process
   :class:`~repro.engine.remote.MasterServer`), outputs asserted identical;
2. **warm-cache rerun** — the same workload again on warmed shared caches
   (the steady state of a monitoring service);
3. **post-update rerun** — one master insert between runs bumps the store
   version (over HTTP for the remote backend), so the rerun first rebuilds
   regions/BDD/memos; the gap between (2) and (3) is the price of an
   incremental master update;
4. **sustained mutations** — a series of master inserts, each followed by
   a rerun, the monitoring steady state the delta journal targets: the
   engine must answer every bump with a per-key purge (``delta_purges``
   climbs, ``full_drops`` stays 0) and hold near-warm throughput;
5. **delta-invalidation speedup** — the same post-update rerun through a
   ``delta_invalidation=False`` engine measures the historical full-drop
   cost on the same machine; in full mode the delta path must beat it by
   ``DELTA_SPEEDUP_FLOOR`` (≥5×), the acceptance bar of the journal seam;
6. **probe latency** — raw ``probe()`` microbenchmark per backend, cold
   (first touch per key) vs warm (read-through caches hot).  The remote
   backend's warm-cache probe throughput must stay within 5× of sqlite's —
   both are one LRU hit; the floor catches a broken client cache, which
   would otherwise silently turn every probe into an HTTP round-trip.

7. **sharded fleet series** — the same workload through a
   :class:`~repro.engine.sharded.ShardedStore` coordinator over 1, 2 and
   4 in-process ``serve-master`` shards (hash-partitioned masters behind
   real HTTP), outputs asserted identical to memory; reports batch and
   probe throughput per fleet width plus scatter fan-out accounting —
   the coordination overhead a fleet pays for masters too large for one
   server (``make bench-sharded``).

Run:  PYTHONPATH=src python benchmarks/bench_store.py [--quick]

Not a pytest module on purpose: a standalone perf harness whose output
file downstream sessions diff against.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.engine.relation import Relation
from repro.engine.remote import MasterServer, RemoteStore
from repro.engine.store import InMemoryStore, SqliteStore, as_master_store
from repro.experiments.config import ExperimentConfig, load_workload
from repro.repair.batch import BatchRepairEngine

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The remote warm-probe floor relative to sqlite (see module docstring).
REMOTE_WARM_FACTOR = 5.0

#: Post-update throughput floor of the delta path over the measured
#: full-drop reference (enforced in full mode; quick mode only reports).
DELTA_SPEEDUP_FLOOR = 5.0


def _run(engine, data) -> tuple:
    started = time.perf_counter()
    result = engine.run_dirty(data)
    elapsed = time.perf_counter() - started
    return result, elapsed


def _throughput(count: int, elapsed: float) -> float:
    return round(count / elapsed, 2) if elapsed > 0 else 0.0


def _fresh_master_row(bundle, key: str = "bench-store-fresh-key"):
    """A master tuple with an unseen key, to force real invalidation."""
    donor = bundle.master.row_at(0)
    first_attr = bundle.master.schema.attributes[0]
    return donor.with_values({first_attr: key})


def _make_backends(bundle) -> tuple:
    """(ordered backend dict, cleanup callable).

    All three are loaded from the same initial master before any backend
    mutates (the post-update phase inserts per backend).
    """
    sqlite = SqliteStore.from_relation(bundle.master)
    backing = InMemoryStore(
        Relation(bundle.schema, bundle.master.iter_rows())
    )
    server = MasterServer(backing).start()
    remote = RemoteStore(server.url)
    backends = {
        "memory": as_master_store(bundle.master),
        "sqlite": sqlite,
        "remote": remote,
    }

    def cleanup():
        remote.close()
        server.close()
        sqlite.close()

    return backends, cleanup


def _make_sharded_fleet(bundle, master_rows, n: int) -> tuple:
    """(coordinator, cleanup) over *n* live HTTP shard servers.

    The master snapshot is hash-partitioned on the schema's first
    attribute — exactly what ``serve-master --shard i/N`` does — and each
    partition served by its own in-process :class:`MasterServer`.
    """
    from repro.engine.sharded import ShardedStore, shard_of

    attr = bundle.schema.attributes[0]
    parts = [[] for _ in range(n)]
    for row in master_rows:
        parts[shard_of((row[attr],), n)].append(row)
    servers = [
        MasterServer(InMemoryStore(Relation(bundle.schema, part))).start()
        for part in parts
    ]
    store = ShardedStore(
        [RemoteStore(server.url) for server in servers],
        track_order=False,
    )

    def cleanup():
        store.close()
        for server in servers:
            server.close()

    return store, cleanup


def _bench_sharded_series(bundle, master_rows, data, finals, attr, keys,
                          probe_repeats: int) -> dict:
    """Batch + probe throughput per fleet width (1/2/4 shards)."""
    series = {}
    for n in (1, 2, 4):
        store, cleanup = _make_sharded_fleet(bundle, master_rows, n)
        try:
            engine = BatchRepairEngine(bundle.rules, store, bundle.schema)
            cold, cold_s = _run(engine, data)
            assert [s.final for s in cold.sessions] == finals["memory"], (
                f"sharded({n}) fixes diverged from the memory backend"
            )
            _, warm_s = _run(engine, data)
            store.insert(_fresh_master_row(bundle, f"bench-shard-{n}"))
            updated, updated_s = _run(engine, data)
            assert updated.report.cache_invalidations == 1, (
                f"sharded({n}): coordinator insert did not invalidate"
            )
            probe = _bench_probe_latency(store, attr, keys, probe_repeats)
            started = time.perf_counter()
            many = store.probe_many((attr,), keys)
            many_s = time.perf_counter() - started
            assert len(many) == len(keys)
            info = store.shard_info()
            series[str(n)] = {
                "shards": n,
                "cold_run_tps": _throughput(len(data), cold_s),
                "warm_cache_run_tps": _throughput(len(data), warm_s),
                "post_update_run_tps": _throughput(len(data), updated_s),
                "probe_latency": probe,
                "probe_many_batch_tps": _throughput(len(keys), many_s),
                "fanouts": info["fanouts"],
                "broadcast_probes": info["broadcast_probes"],
            }
            print(f"  sharded({n}): cold "
                  f"{series[str(n)]['cold_run_tps']:8.1f} tps  warm "
                  f"{series[str(n)]['warm_cache_run_tps']:8.1f} tps  "
                  f"post-update "
                  f"{series[str(n)]['post_update_run_tps']:8.1f} tps  "
                  f"probe_many {series[str(n)]['probe_many_batch_tps']:10.1f}"
                  f" keys/s")
        finally:
            cleanup()
    return series


def _bench_probe_latency(store, attr: str, keys: list, repeats: int) -> dict:
    """Raw probe cost: cold (first touch per key) vs warm (caches hot)."""
    store.ensure_index((attr,))
    started = time.perf_counter()
    for key in keys:
        store.probe((attr,), key)
    cold = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(repeats):
        for key in keys:
            store.probe((attr,), key)
    warm = time.perf_counter() - started
    return {
        "keys": len(keys),
        "cold_tps": _throughput(len(keys), cold),
        "warm_tps": _throughput(len(keys) * repeats, warm),
    }


def bench_dataset(dataset: str, scale: dict, probe_repeats: int,
                  mutations: int, enforce_speedup: bool) -> dict:
    config = ExperimentConfig(dataset=dataset, **scale)
    bundle, data = load_workload(config)
    print(f"[{dataset}] |Dm|={len(bundle.master)}  |D|={len(data)}")

    # snapshot before any backend mutates (the memory backend shares the
    # bundle relation); the sharded fleet loads this pristine master
    master_rows = list(bundle.master.iter_rows())
    backends, cleanup = _make_backends(bundle)
    try:
        out: dict = {
            "master_size": len(bundle.master),
            "input_size": len(data),
            "backends": {},
            "probe_latency": {},
        }
        finals = {}
        for name, store in backends.items():
            setup_started = time.perf_counter()
            engine = BatchRepairEngine(bundle.rules, store, bundle.schema)
            setup = time.perf_counter() - setup_started

            cold, cold_s = _run(engine, data)
            warm, warm_s = _run(engine, data)

            store.insert(_fresh_master_row(bundle))
            updated, updated_s = _run(engine, data)
            assert updated.report.cache_invalidations == 1, (
                f"{name}: master insert did not invalidate the shared caches"
            )

            # sustained-mutation series: the monitoring steady state —
            # every insert must resolve through the delta journal, not a
            # full drop, and throughput must hold near the warm level
            series_tps = []
            for i in range(mutations):
                store.insert(
                    _fresh_master_row(bundle, f"bench-store-sustained-{i}")
                )
                _, step_s = _run(engine, data)
                series_tps.append(_throughput(len(data), step_s))
            inner = engine.engine
            assert inner.delta_purges + inner.full_drops == 1 + mutations, (
                f"{name}: {1 + mutations} master inserts must produce "
                f"{1 + mutations} invalidations"
            )

            # full-drop reference on the same machine/backend: what the
            # identical post-update rerun costs without the delta path
            ref_engine = BatchRepairEngine(
                bundle.rules, store, bundle.schema, delta_invalidation=False
            )
            _run(ref_engine, data)  # build the shared caches once
            store.insert(_fresh_master_row(bundle, "bench-store-ref-key"))
            ref_updated, ref_s = _run(ref_engine, data)
            assert ref_updated.report.cache_invalidations == 1
            assert ref_engine.engine.delta_purges == 0, (
                f"{name}: the delta_invalidation=False reference must not "
                f"take the delta path"
            )
            # keep the delta engine in lockstep with the store (the probe
            # microbench below asserts identical rows across backends)
            _, catchup_s = _run(engine, data)
            series_tps.append(_throughput(len(data), catchup_s))
            ref_tps = _throughput(len(data), ref_s)
            delta_tps = _throughput(len(data), updated_s)
            speedup = round(delta_tps / ref_tps, 2) if ref_tps else None
            if enforce_speedup:
                assert speedup is not None and \
                    speedup >= DELTA_SPEEDUP_FLOOR, (
                        f"{name}: delta-path post-update rerun is only "
                        f"{speedup}x the full-drop reference "
                        f"({delta_tps:.0f} vs {ref_tps:.0f} tps); the "
                        f"journal seam requires >= "
                        f"{DELTA_SPEEDUP_FLOOR:.0f}x"
                    )

            finals[name] = [s.final for s in cold.sessions]
            entry = {
                "setup_s": round(setup, 4),
                "cold_run": {
                    "elapsed_s": round(cold_s, 4),
                    "throughput_tps": _throughput(len(data), cold_s),
                },
                "warm_cache_run": {
                    "elapsed_s": round(warm_s, 4),
                    "throughput_tps": _throughput(len(data), warm_s),
                },
                "post_update_run": {
                    "elapsed_s": round(updated_s, 4),
                    "throughput_tps": _throughput(len(data), updated_s),
                    "cache_invalidations": updated.report.cache_invalidations,
                },
                "invalidation_overhead_s": round(
                    max(updated_s - warm_s, 0.0), 4
                ),
                "sustained_mutation_runs": {
                    "mutations": mutations + 1,
                    "throughput_tps": series_tps,
                    "mean_tps": round(
                        sum(series_tps) / len(series_tps), 2
                    ) if series_tps else 0.0,
                    "delta_purges": inner.delta_purges,
                    "full_drops": inner.full_drops,
                },
                "full_drop_reference": {
                    "post_update_tps": ref_tps,
                    "delta_speedup": speedup,
                },
                "master_version_final": store.version,
            }
            if hasattr(store, "probe_cache_info"):
                entry["probe_cache"] = store.probe_cache_info()
            if hasattr(store, "connection_info"):
                entry["connection"] = store.connection_info()
            out["backends"][name] = entry
            print(f"  {name:6s}: cold "
                  f"{entry['cold_run']['throughput_tps']:8.1f} tps  warm "
                  f"{entry['warm_cache_run']['throughput_tps']:8.1f} tps  "
                  f"post-update "
                  f"{entry['post_update_run']['throughput_tps']:8.1f} tps  "
                  f"sustained "
                  f"{entry['sustained_mutation_runs']['mean_tps']:8.1f} tps "
                  f"(purges={inner.delta_purges} drops={inner.full_drops})  "
                  f"full-drop ref {ref_tps:8.1f} tps "
                  f"(speedup {speedup}x)")

        for name in finals:
            assert finals["memory"] == finals[name], (
                f"backend outputs diverged — memory and {name} must fix "
                f"identically"
            )

        # raw probe microbenchmark (all backends hold identical rows here:
        # the same initial master plus each its own fresh-key insert)
        attr = bundle.schema.attributes[0]
        keys = list(dict.fromkeys(
            (row[attr],) for row in bundle.master.iter_rows()
        ))
        for name, store in backends.items():
            probe = _bench_probe_latency(store, attr, keys, probe_repeats)
            out["probe_latency"][name] = probe
            print(f"  {name:6s} probes: cold {probe['cold_tps']:10.1f} tps  "
                  f"warm {probe['warm_tps']:10.1f} tps")

        sqlite_warm = out["probe_latency"]["sqlite"]["warm_tps"]
        remote_warm = out["probe_latency"]["remote"]["warm_tps"]
        assert remote_warm * REMOTE_WARM_FACTOR >= sqlite_warm, (
            f"remote warm-cache probes fell below 1/{REMOTE_WARM_FACTOR:.0f} "
            f"of sqlite ({remote_warm:.0f} vs {sqlite_warm:.0f} tps) — the "
            f"read-through LRU is not serving hits"
        )
        out["remote_warm_within_factor"] = round(
            sqlite_warm / remote_warm, 3
        ) if remote_warm else None

        # the scatter-gather coordinator over 1/2/4 live shard servers
        out["sharded"] = _bench_sharded_series(
            bundle, master_rows, data, finals, attr, keys, probe_repeats
        )
    finally:
        cleanup()

    mem = out["backends"]["memory"]["cold_run"]["throughput_tps"]
    sql = out["backends"]["sqlite"]["cold_run"]["throughput_tps"]
    rem = out["backends"]["remote"]["cold_run"]["throughput_tps"]
    out["sqlite_relative_throughput"] = round(sql / mem, 3) if mem else 0.0
    out["remote_relative_throughput"] = round(rem / mem, 3) if mem else 0.0
    print(f"  outputs identical; sqlite at "
          f"{out['sqlite_relative_throughput']:.0%}, remote at "
          f"{out['remote_relative_throughput']:.0%} of memory throughput")
    return out


def run(quick: bool, output: Path, enforce_speedup: bool = False) -> dict:
    scale = (
        {"master_size": 600, "input_size": 100}
        if quick
        else {"master_size": 1500, "input_size": 200}
    )
    probe_repeats = 3 if quick else 10
    mutations = 3 if quick else 5
    results = {
        dataset: bench_dataset(dataset, scale, probe_repeats, mutations,
                               enforce_speedup=enforce_speedup or not quick)
        for dataset in ("hosp", "dblp")
    }
    payload = {
        "benchmark": "master_store_backends",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "remote_warm_probe_floor": f"within {REMOTE_WARM_FACTOR:.0f}x of "
                                   f"sqlite",
        "delta_speedup_floor": (
            f"post-update rerun >= {DELTA_SPEEDUP_FLOOR:.0f}x the full-drop "
            f"reference (enforced in full mode)"
        ),
        "results": results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke scale (|Dm|~600, |D|=100)")
    parser.add_argument("--enforce-speedup", action="store_true",
                        help="gate the delta-invalidation speedup floor "
                             "even in --quick mode")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_store.json")
    args = parser.parse_args(argv)
    run(args.quick, args.output, enforce_speedup=args.enforce_speedup)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
