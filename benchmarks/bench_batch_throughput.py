#!/usr/bin/env python3
"""Batch repair throughput: naive per-tuple monitoring vs the batch engine.

Seeds the repo's perf trajectory (``BENCH_batch.json``): the baseline is
``CertainFix.fix_stream`` exactly as the experiments run it — a bare
sequential loop with fresh ``Suggest`` calls every round — and the
contender is :class:`repro.repair.batch.BatchRepairEngine` with all shared
caches enabled (precomputed regions, master indexes, the Suggest⁺ BDD and
validated-pattern memoization), sequentially and with a thread fan-out.

An ``obs_overhead`` series re-runs the sequential hosp batch with
``repro.obs`` telemetry enabled and gates the cost (default: within 5%
of the plain sequential throughput) — the observability layer must stay
effectively free on the hot path.

A second series pins the executor decision rule on a **CPU-bound oracle
workload** (:class:`repro.repair.oracle.CpuBoundOracle`: feedback that
computes its answers): the thread fan-out stays GIL-flat there, while the
process pool (``executor="process"``) scales with physical cores.  The
process assertion (>= ``--min-process-speedup`` over sequential) is only
enforced when the machine actually has >= 2 usable cores — on a single
core no executor can beat sequential, and the series then only checks
bit-identical output.

Run:  PYTHONPATH=src python benchmarks/bench_batch_throughput.py [--quick]

Not a pytest module on purpose: this is a standalone perf harness whose
output file downstream sessions diff against.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro import obs
from repro.experiments.config import ExperimentConfig, load_workload
from repro.repair.batch import BatchRepairEngine
from repro.repair.certainfix import CertainFix
from repro.repair.oracle import CpuBoundOracle, SimulatedUser

REPO_ROOT = Path(__file__).resolve().parent.parent


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without CPU affinity
        return os.cpu_count() or 1


def _precompute_regions(bundle) -> tuple:
    """Certain regions are offline infrastructure shared by every engine
    ("computed once and repeatedly used as long as Σ and Dm are
    unchanged") — both contenders get them precomputed, and the one-time
    cost is reported separately."""
    from repro.repair.region_search import comp_c_region

    started = time.perf_counter()
    regions = comp_c_region(bundle.rules, bundle.master, bundle.schema)
    return regions, time.perf_counter() - started


def _time_naive(bundle, data, regions) -> dict:
    """The pre-batch path: per-tuple loop, no suggestion reuse."""
    started = time.perf_counter()
    engine = CertainFix(bundle.rules, bundle.master, bundle.schema,
                        regions=regions, use_bdd=False)
    sessions = engine.fix_stream(
        (dt.dirty, SimulatedUser(dt.clean)) for dt in data
    )
    elapsed = time.perf_counter() - started
    return {
        "elapsed_s": round(elapsed, 4),
        "throughput_tps": round(len(sessions) / elapsed, 2),
        "rounds": sum(s.round_count for s in sessions),
        "completed": sum(1 for s in sessions if s.completed),
    }


def _time_batch(bundle, data, regions, concurrency: int) -> dict:
    started = time.perf_counter()
    engine = BatchRepairEngine(
        bundle.rules, bundle.master, bundle.schema,
        regions=regions, use_bdd=True, memoize=True, concurrency=concurrency,
    )
    result = engine.run_dirty(data)
    elapsed = time.perf_counter() - started  # engine setup included
    out = result.report.to_dict()
    out["elapsed_s"] = round(elapsed, 4)
    out["throughput_tps"] = round(result.report.tuples / elapsed, 2)
    return out


def _time_cpu_bound(bundle, data, regions, executor, workers, cost):
    """One CPU-bound-oracle run; returns (stats dict, fixed rows).

    Timing includes engine construction — for the process executor that
    means pool spawn and per-worker rehydration (regions, indexes, memo
    tables), the real cost a deployment would pay.  ``use_bdd=False`` so
    sessions are bit-identical across executors by construction and the
    identity check below is exact.
    """
    pairs = [
        (dt.dirty, CpuBoundOracle(SimulatedUser(dt.clean), cost=cost))
        for dt in data
    ]
    started = time.perf_counter()
    engine = BatchRepairEngine(
        bundle.rules, bundle.master, bundle.schema,
        regions=regions, use_bdd=False, memoize=True,
        executor=executor, concurrency=workers,
    )
    with engine:
        result = engine.run(pairs)
    elapsed = time.perf_counter() - started
    stats = {
        "executor": executor,
        "workers": workers,
        "elapsed_s": round(elapsed, 4),
        "throughput_tps": round(result.report.tuples / elapsed, 2),
    }
    return stats, result.final_rows


def _measure_obs_overhead(bundle, data, regions, repeats: int = 3) -> dict:
    """Sequential batch throughput with telemetry off vs on (same workload).

    Instrumentation must be effectively free: the gate keeps the
    ``repro.obs``-enabled run within a few percent of the plain one.
    Plain/instrumented repeats are interleaved and compared best-of-N,
    so a sustained machine-wide slowdown (CPU contention, throttling)
    degrades both series instead of masquerading as telemetry cost, and
    the enabled side is cross-checked against its own session counters
    so a silently-disabled registry can't fake a pass.
    """
    best = {"plain": 0.0, "instrumented": 0.0}
    recorded = 0
    for _ in range(repeats):
        out = _time_batch(bundle, data, regions, concurrency=1)
        best["plain"] = max(best["plain"], out["throughput_tps"])
        obs.enable()
        try:
            out = _time_batch(bundle, data, regions, concurrency=1)
            recorded = sum(
                value
                for (name, _), value in obs.snapshot().counters.items()
                if name == "repro_sessions_total"
            )
        finally:
            obs.disable()
        best["instrumented"] = max(
            best["instrumented"], out["throughput_tps"]
        )
    if recorded < len(data):
        raise AssertionError(
            "instrumented series recorded fewer sessions than tuples — "
            "telemetry was not actually enabled during the measurement"
        )
    overhead_pct = 100.0 * (1.0 - best["instrumented"] / best["plain"])
    return {
        "plain_tps": best["plain"],
        "instrumented_tps": best["instrumented"],
        "overhead_pct": round(overhead_pct, 2),
        "repeats": repeats,
    }


def _run_cpu_bound_series(quick: bool, workers: int) -> dict:
    """Sequential vs thread vs process on the CPU-bound oracle workload."""
    cores = _usable_cores()
    # Scaled so the oracle/monitoring compute dominates pool spawn and
    # per-worker rehydration by a wide margin — otherwise the speedup
    # floor would measure fixed costs, not parallelism.
    scale = (
        {"master_size": 600, "input_size": 100}
        if quick
        else {"master_size": 1000, "input_size": 150}
    )
    cost = 8000 if quick else 10000
    config = ExperimentConfig(dataset="hosp", **scale)
    bundle, data = load_workload(config)
    regions, _ = _precompute_regions(bundle)
    print(f"[cpu-bound oracle] |Dm|={len(bundle.master)}  |D|={len(data)}  "
          f"(sha256 chain cost {cost}, {cores} usable core(s))")

    sequential, rows_seq = _time_cpu_bound(
        bundle, data, regions, "thread", 1, cost
    )
    print(f"  sequential       : {sequential['throughput_tps']:8.1f} tuples/s")
    threaded, rows_thr = _time_cpu_bound(
        bundle, data, regions, "thread", workers, cost
    )
    t_speedup = threaded["throughput_tps"] / sequential["throughput_tps"]
    print(f"  thread (x{workers})      : {threaded['throughput_tps']:8.1f} "
          f"tuples/s  ({t_speedup:.2f}x — GIL-bound)")
    process, rows_proc = _time_cpu_bound(
        bundle, data, regions, "process", workers, cost
    )
    p_speedup = process["throughput_tps"] / sequential["throughput_tps"]
    print(f"  process (x{workers})     : {process['throughput_tps']:8.1f} "
          f"tuples/s  ({p_speedup:.2f}x)")

    identical = rows_seq == rows_thr == rows_proc
    if not identical:
        raise AssertionError(
            "executor outputs diverged on the CPU-bound oracle workload"
        )
    return {
        "dataset": "hosp",
        "master_size": len(bundle.master),
        "input_size": len(data),
        "oracle_cost": cost,
        "usable_cores": cores,
        "sequential": sequential,
        f"thread_x{workers}": threaded,
        f"process_x{workers}": process,
        "speedup_thread": round(t_speedup, 2),
        "speedup_process": round(p_speedup, 2),
        "outputs_identical": identical,
    }


def run(quick: bool, concurrency: int, output: Path) -> dict:
    scale = (
        {"master_size": 600, "input_size": 100}
        if quick
        else {"master_size": 1500, "input_size": 200}
    )
    results = {}
    for dataset in ("hosp", "dblp"):
        config = ExperimentConfig(dataset=dataset, **scale)
        bundle, data = load_workload(config)
        regions, region_time = _precompute_regions(bundle)
        print(f"[{dataset}] |Dm|={len(bundle.master)}  |D|={len(data)}  "
              f"(regions precomputed in {region_time:.2f}s)")

        naive = _time_naive(bundle, data, regions)
        print(f"  naive fix_stream : {naive['throughput_tps']:8.1f} tuples/s")

        batch = _time_batch(bundle, data, regions, concurrency=1)
        speedup = batch["throughput_tps"] / naive["throughput_tps"]
        print(f"  batch (seq)      : {batch['throughput_tps']:8.1f} tuples/s"
              f"  ({speedup:.2f}x)")

        threaded = _time_batch(bundle, data, regions, concurrency=concurrency)
        t_speedup = threaded["throughput_tps"] / naive["throughput_tps"]
        print(f"  batch (x{concurrency})       : "
              f"{threaded['throughput_tps']:8.1f} tuples/s  ({t_speedup:.2f}x)")

        results[dataset] = {
            "master_size": len(bundle.master),
            "input_size": len(data),
            "region_precompute_s": round(region_time, 4),
            "naive_fix_stream": naive,
            "batch_sequential": batch,
            f"batch_concurrency_{concurrency}": threaded,
            "speedup_sequential": round(speedup, 2),
            f"speedup_concurrency_{concurrency}": round(t_speedup, 2),
        }

        if dataset == "hosp":
            overhead = _measure_obs_overhead(bundle, data, regions)
            print(f"  obs enabled      : "
                  f"{overhead['instrumented_tps']:8.1f} tuples/s  "
                  f"({overhead['overhead_pct']:+.1f}% vs plain sequential)")
            results[dataset]["obs_overhead"] = overhead

    payload = {
        "benchmark": "batch_repair_throughput",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "usable_cores": _usable_cores(),
        "results": results,
        "cpu_bound_oracle": _run_cpu_bound_series(quick, concurrency),
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke scale (|Dm|~600, |D|=100)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="fan-out width for the thread and process series")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_batch.json")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail unless every dataset's sequential batch "
                             "speedup reaches this factor")
    parser.add_argument("--min-process-speedup", type=float, default=2.0,
                        help="fail unless the process pool reaches this "
                             "factor over sequential on the CPU-bound "
                             "oracle workload (enforced only with >= 2 "
                             "usable cores)")
    parser.add_argument("--max-obs-overhead-pct", type=float, default=5.0,
                        help="fail if enabling repro.obs telemetry costs "
                             "more than this percent of sequential batch "
                             "throughput on hosp")
    args = parser.parse_args(argv)

    payload = run(args.quick, args.concurrency, args.output)
    worst = min(
        entry["speedup_sequential"] for entry in payload["results"].values()
    )
    if worst < args.min_speedup:
        print(f"FAIL: worst sequential speedup {worst:.2f}x "
              f"< required {args.min_speedup:.2f}x")
        return 1
    print(f"OK: worst sequential speedup {worst:.2f}x "
          f">= {args.min_speedup:.2f}x")

    overhead = payload["results"]["hosp"]["obs_overhead"]["overhead_pct"]
    if overhead > args.max_obs_overhead_pct:
        print(f"FAIL: telemetry overhead {overhead:.1f}% "
              f"> allowed {args.max_obs_overhead_pct:.1f}%")
        return 1
    print(f"OK: telemetry overhead {overhead:.1f}% "
          f"<= {args.max_obs_overhead_pct:.1f}%")

    cpu = payload["cpu_bound_oracle"]
    workers = args.concurrency
    # The floor is only meaningful where the hardware can express the
    # parallelism: N workers can never beat sequential by more than
    # min(N, cores), so on narrower machines the series is recorded (and
    # outputs are still verified bit-identical) but the floor is waived.
    if cpu["usable_cores"] >= workers >= 2:
        if cpu["speedup_process"] < args.min_process_speedup:
            print(f"FAIL: process-pool speedup {cpu['speedup_process']:.2f}x "
                  f"< required {args.min_process_speedup:.2f}x on the "
                  f"CPU-bound oracle workload")
            return 1
        print(f"OK: process-pool speedup {cpu['speedup_process']:.2f}x "
              f">= {args.min_process_speedup:.2f}x")
    else:
        print(f"NOTE: {cpu['usable_cores']} usable core(s) for "
              f"{workers} worker(s) — process-pool speedup "
              f"{cpu['speedup_process']:.2f}x recorded but the "
              f"{args.min_process_speedup:.2f}x floor is not enforced; "
              f"outputs verified bit-identical across executors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
