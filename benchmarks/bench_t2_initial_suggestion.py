"""Exp-1(2) — initial-suggestion quality: CRHQ vs CRMQ.

Paper's table: F-measure 0.74 vs 0.70 (HOSP), 0.79 vs 0.69 (DBLP).  The
reproduced shape: the highest-quality region strictly beats the
median-quality one on both datasets.
"""

from benchmarks.conftest import BENCH_DBLP, BENCH_HOSP, emit
from repro.experiments.config import load_workload
from repro.experiments.figures import table2_initial_suggestion
from repro.experiments.tables import format_table
from repro.experiments.runner import run_stream


def test_t2_initial_suggestion(benchmark):
    configs = [
        BENCH_HOSP.with_(input_size=150),
        BENCH_DBLP.with_(input_size=150),
    ]
    headers, rows = table2_initial_suggestion(configs)
    emit("t2_initial_suggestion", format_table(
        headers, rows,
        "Exp-1(2): F-measure, CRHQ vs CRMQ initial region "
        "(paper: 0.74/0.70 hosp, 0.79/0.69 dblp)",
    ))
    for _, f_hq, f_mq in rows:
        assert f_hq >= f_mq

    bundle, data = load_workload(configs[0].with_(input_size=40))
    benchmark.pedantic(
        lambda: run_stream(bundle, data, initial_region_rank=0),
        rounds=3, iterations=1,
    )
