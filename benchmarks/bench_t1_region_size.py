"""Exp-1(1) — certain-region sizes, CompCRegion vs GRegion.

Paper's table: HOSP 2 vs 4, DBLP 5 vs 9.  Reproduced: HOSP 2 vs 4 exactly;
DBLP CompCRegion = 5 exactly, GRegion ≥ 5 (the paper's exact greedy is
unspecified; see DESIGN.md §4.4).
"""

from benchmarks.conftest import BENCH_DBLP, BENCH_HOSP, emit
from repro.experiments.config import load_dataset
from repro.experiments.figures import table1_region_sizes
from repro.experiments.tables import format_table
from repro.repair.region_search import comp_c_region


def test_t1_region_sizes(benchmark):
    headers, rows = table1_region_sizes([BENCH_HOSP, BENCH_DBLP])
    emit("t1_region_sizes", format_table(
        headers, rows,
        "Exp-1(1): certain-region size (paper: hosp 2 vs 4, dblp 5 vs 9)",
    ))
    table = {r[0]: r[1:] for r in rows}
    assert table["hosp"] == (2, 4)
    assert table["dblp"][0] == 5
    assert table["dblp"][1] >= 5

    # Benchmark the region computation itself (run once per master change).
    bundle = load_dataset(BENCH_HOSP)
    benchmark.pedantic(
        lambda: comp_c_region(bundle.rules, bundle.master, bundle.schema),
        rounds=3, iterations=1,
    )
