"""Fig. 9 — recall per interaction round (tuple- and attribute-level).

Paper: at most 4 (HOSP) / 3 (DBLP) rounds; 93%/100% of tuples fixed by round
three; attribute recall ≥ 50% of its final value within two rounds and a
plateau once only rule-irrelevant attributes remain.
"""

import pytest

from benchmarks.conftest import BENCH_DBLP, BENCH_HOSP, emit
from repro.experiments.config import load_workload
from repro.experiments.figures import fig9_interactions
from repro.experiments.runner import run_stream
from repro.experiments.tables import format_table


@pytest.mark.parametrize("config,name,max_rounds", [
    (BENCH_HOSP, "hosp", 5),
    (BENCH_DBLP, "dblp", 4),
])
def test_f9_interaction_rounds(benchmark, config, name, max_rounds):
    headers, rows = fig9_interactions(config, max_round=6)
    emit(f"f9_interactions_{name}", format_table(
        headers, rows,
        f"Fig. 9 ({name}): recall per interaction round "
        f"(paper: all tuples fixed within {'4' if name == 'hosp' else '3'} rounds)",
    ))
    recall_t = [row[1] for row in rows]
    recall_a = [row[2] for row in rows]
    # Monotone curves reaching full tuple recall within few rounds.
    assert recall_t == sorted(recall_t)
    assert recall_t[max_rounds - 1] == 1.0
    # recall_a plateaus (user-only corrections at the tail, Fig. 9b).
    assert recall_a[-1] == recall_a[-2]
    # At least half of the final attribute recall arrives within 2 rounds.
    assert recall_a[1] >= 0.5 * recall_a[-1]

    bundle, data = load_workload(config.with_(input_size=40))
    benchmark.pedantic(
        lambda: run_stream(bundle, data), rounds=3, iterations=1
    )
