#!/usr/bin/env python3
"""End-to-end telemetry smoke: serve-master + batch-repair --progress + /metrics.

Spins up a :class:`repro.engine.remote.MasterServer` over a sqlite-backed
master (so the probe-cache gauges are live), drives the real CLI
``batch-repair`` path against it over the remote backend with
``--progress``, scrapes ``GET /metrics`` *mid-batch* and again after the
run, validates every exposition with the strict Prometheus parser, and
exercises the ``repro metrics`` subcommand in both output formats.

Checks (any failure exits non-zero — ``make metrics-smoke`` and the CI
remote job use this as the live-telemetry gate):

- mid-batch scrape parses cleanly and already carries request series;
- progress heartbeats appeared on stderr (rate + cache hit rates);
- final scrape has probe traffic, latency quantiles (+_sum/_count),
  probe-cache gauges, and store gauges matching the served master;
- ``repro metrics`` prints the same exposition; ``--format json``
  round-trips through :func:`repro.obs.snapshot_from_dict`.

Run:  PYTHONPATH=src python benchmarks/metrics_smoke.py
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro import io as rule_io
from repro.cli import main as cli_main
from repro.engine.csvio import relation_to_csv
from repro.engine.relation import Relation
from repro.engine.remote import MasterServer
from repro.engine.store import SqliteStore
from repro.experiments.config import ExperimentConfig, load_workload
from repro.obs import parse_prometheus_text, snapshot_from_dict

MASTER_SIZE = 300
INPUT_SIZE = 60


def _scrape(url: str) -> dict:
    """Fetch and strictly parse the server's Prometheus exposition."""
    with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
        body = resp.read().decode("utf-8")
    return parse_prometheus_text(body)


def _series_named(parsed: dict, name: str) -> dict:
    return {key: value for key, value in parsed.items() if key[0] == name}


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)
    print(f"  ok: {message}")


def run() -> int:
    config = ExperimentConfig(
        dataset="hosp", master_size=MASTER_SIZE, input_size=INPUT_SIZE
    )
    bundle, data = load_workload(config)

    with tempfile.TemporaryDirectory(prefix="metrics-smoke-") as tmp:
        tmpdir = Path(tmp)
        rules_json = tmpdir / "rules.json"
        dirty_csv = tmpdir / "dirty.csv"
        clean_csv = tmpdir / "clean.csv"
        report_json = tmpdir / "report.json"
        rules_json.write_text(rule_io.dumps(bundle.rules) + "\n")
        relation_to_csv(
            Relation(bundle.schema, (dt.dirty for dt in data)), dirty_csv
        )
        relation_to_csv(
            Relation(bundle.schema, (dt.clean for dt in data)), clean_csv
        )

        store = SqliteStore(bundle.schema, bundle.master)
        with MasterServer(store) as server:
            print(f"[metrics-smoke] serving |Dm|={len(bundle.master)} "
                  f"at {server.url} (sqlite backend)")

            argv = [
                "batch-repair",
                "--rules", str(rules_json),
                "--input", str(dirty_csv),
                "--clean", str(clean_csv),
                "--report", str(report_json),
                "--master-backend", "remote",
                "--master-url", server.url,
                "--progress", "--progress-interval", "0",
                "--chunk-size", "16",
            ]
            stderr_sink = io.StringIO()
            stdout_sink = io.StringIO()
            batch_rc: list = []

            def run_batch() -> None:
                batch_rc.append(cli_main(argv))

            worker = threading.Thread(target=run_batch, daemon=True)
            # redirect_* swap the sys-module globals, so the worker
            # thread's heartbeat/report output lands in the sinks too.
            with contextlib.redirect_stderr(stderr_sink), \
                    contextlib.redirect_stdout(stdout_sink):
                worker.start()
                # Mid-batch scrapes: poll until the server has seen probe
                # traffic from the live run (or the batch finishes first
                # on a fast machine — then the loop just records that).
                mid_parsed = None
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline and worker.is_alive():
                    parsed = _scrape(server.url)
                    requests = _series_named(
                        parsed, "repro_server_requests_total"
                    )
                    if any("probe" in dict(key[1]).get("endpoint", "")
                           for key in requests):
                        mid_parsed = parsed
                        break
                    time.sleep(0.02)
                worker.join(timeout=120.0)
            if worker.is_alive():
                raise AssertionError("batch-repair did not finish in 120s")

            print("[metrics-smoke] batch finished; checking")
            _check(batch_rc == [0],
                   f"batch-repair exited 0 (got {batch_rc})")
            if mid_parsed is not None:
                _check(bool(mid_parsed),
                       "mid-batch /metrics parsed cleanly with live "
                       "probe traffic")
            else:
                print("  note: batch finished before a mid-batch scrape "
                      "landed; relying on the final scrape")

            heartbeats = [line for line in
                          stderr_sink.getvalue().splitlines()
                          if line.startswith("[batch-repair]")]
            _check(len(heartbeats) >= 2,
                   f"progress heartbeats on stderr ({len(heartbeats)} lines)")
            _check(any("tuples/s" in line for line in heartbeats),
                   "heartbeats report a tuples/s rate")
            _check(any("chase" in line for line in heartbeats),
                   "heartbeats report cache hit rates")

            report = json.loads(report_json.read_text())
            _check(report["tuples"] == INPUT_SIZE,
                   f"report covers all {INPUT_SIZE} tuples")
            _check("region_precompute_s" in report["timings"],
                   "report timings carry region_precompute_s")

            final = _scrape(server.url)
            requests = _series_named(final, "repro_server_requests_total")
            probe_hits = sum(
                value for key, value in requests.items()
                if "probe" in dict(key[1]).get("endpoint", "")
                and dict(key[1]).get("status") == "200"
            )
            _check(probe_hits > 0,
                   f"server counted probe requests ({int(probe_hits)})")
            latency = _series_named(final, "repro_server_request_seconds")
            _check(any(dict(key[1]).get("quantile") == "0.95"
                       for key in latency),
                   "request latency summary exposes a p95 quantile")
            _check(any(key[0] == "repro_server_request_seconds_count"
                       for key in final),
                   "request latency summary exposes _count")
            cache_gauges = {
                key[0] for key in final
                if key[0].startswith("repro_server_probe_cache_")
            }
            _check(cache_gauges >= {"repro_server_probe_cache_hits",
                                    "repro_server_probe_cache_misses",
                                    "repro_server_probe_cache_size"},
                   "sqlite probe-cache gauges are exposed")
            rows = final[("repro_server_store_rows", ())]
            _check(rows == len(bundle.master),
                   f"store-rows gauge matches served master ({int(rows)})")

            # The `repro metrics` subcommand against the same server.
            text_sink = io.StringIO()
            with contextlib.redirect_stdout(text_sink):
                rc = cli_main(["metrics", "--master-url", server.url])
            _check(rc == 0, "repro metrics exits 0")
            _check(bool(parse_prometheus_text(text_sink.getvalue())),
                   "repro metrics output parses as Prometheus text")

            json_sink = io.StringIO()
            with contextlib.redirect_stdout(json_sink):
                rc = cli_main(["metrics", "--master-url", server.url,
                               "--format", "json"])
            _check(rc == 0, "repro metrics --format json exits 0")
            snapshot = snapshot_from_dict(json.loads(json_sink.getvalue()))
            _check(snapshot.counter_value(
                       "repro_server_requests_total",
                       endpoint="/metrics", status="200") > 0,
                   "JSON snapshot round-trips and counts /metrics scrapes")

    print("[metrics-smoke] PASS")
    return 0


def main() -> int:
    try:
        return run()
    except AssertionError as exc:
        print(f"[metrics-smoke] FAIL: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
