"""Fig. 11 — attribute-level F-measure under sweeps, vs the IncRep baseline.

Paper's shapes: F rises with d% and |Dm|; our F is noise-insensitive while
IncRep's degrades with n% and falls below ours at high noise ("IncRep
introduces more errors when the noise rate is higher. Our method, in
contrast, ensures that each fix is correct").  CertainFix's precision is
1.0 throughout.
"""

import pytest

from benchmarks.conftest import BENCH_DBLP, BENCH_HOSP, emit
from repro.constraints.increp import IncRep
from repro.experiments.config import load_workload
from repro.experiments.figures import fig11_f_measure
from repro.experiments.tables import format_table


@pytest.mark.parametrize("config,name", [
    (BENCH_HOSP.with_(input_size=120), "hosp"),
    (BENCH_DBLP.with_(input_size=120), "dblp"),
])
def test_f11_vary_duplicate_rate(benchmark, config, name):
    headers, rows = fig11_f_measure(config, "d%")
    emit(f"f11_d_{name}", format_table(
        headers, rows, f"Fig. 11(a/d) ({name}): F-measure vs d% (ours + IncRep)"
    ))
    ours_final = [row[-2] for row in rows]
    assert ours_final[-1] > ours_final[0]  # more master coverage, higher F
    _bench_increp(benchmark, config)


@pytest.mark.parametrize("config,name", [
    (BENCH_HOSP.with_(input_size=120), "hosp"),
])
def test_f11_vary_master_size(benchmark, config, name):
    headers, rows = fig11_f_measure(config, "|Dm|")
    emit(f"f11_dm_{name}", format_table(
        headers, rows, f"Fig. 11(b/e) ({name}): F-measure vs |Dm|"
    ))
    ours_final = [row[-2] for row in rows]
    assert ours_final[-1] >= ours_final[0] - 0.05
    _bench_increp(benchmark, config)


@pytest.mark.parametrize("config,name", [
    (BENCH_HOSP.with_(input_size=120), "hosp"),
    (BENCH_DBLP.with_(input_size=120), "dblp"),
])
def test_f11_vary_noise_rate(benchmark, config, name):
    headers, rows = fig11_f_measure(config, "n%")
    emit(f"f11_n_{name}", format_table(
        headers, rows, f"Fig. 11(c/f) ({name}): F-measure vs n% (ours + IncRep)"
    ))
    ours = [row[-2] for row in rows]
    increp = [row[-1] for row in rows]
    # At the highest noise our F beats IncRep's (the paper's crossover).
    assert ours[-1] > increp[-1]
    # IncRep degrades from light to heavy noise.
    assert increp[-1] < increp[0] + 0.05
    _bench_increp(benchmark, config)


def _bench_increp(benchmark, config):
    bundle, data = load_workload(config.with_(input_size=30))
    increp = IncRep(bundle.rules, bundle.master, bundle.schema)
    rows = [dt.dirty for dt in data]
    benchmark.pedantic(
        lambda: [increp.repair(r) for r in rows], rounds=2, iterations=1
    )
