#!/usr/bin/env python3
"""Regenerate every table and figure of the paper and write EXPERIMENTS.md.

Runs the full experiment battery (Exp-1 tables, Figs. 9-12, ablations) at
benchmark scale and rewrites ``EXPERIMENTS.md`` with the measured numbers
next to the paper's, plus the shape checks that define reproduction success.

Run:  python benchmarks/run_all.py [--quick]
"""

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import BENCH_DBLP, BENCH_HOSP  # noqa: E402
from repro.experiments import figures  # noqa: E402
from repro.experiments.tables import format_table  # noqa: E402

ROOT = pathlib.Path(__file__).resolve().parent.parent

PAPER_NOTES = {
    "T1": "paper: hosp 2 vs 4; dblp 5 vs 9",
    "T2": "paper: hosp 0.74 / 0.70; dblp 0.79 / 0.69",
    "F9": "paper: all tuples fixed within 4 (hosp) / 3 (dblp) rounds; "
          "93%+ by round 3",
    "F10d": "paper: recall_t at k=1 equals d%; rises with d%",
    "F10dm": "paper: k=1 insensitive to |Dm|; later rounds improve",
    "F10n": "paper: recall insensitive to n%",
    "F11d": "paper: F rises with d%; IncRep comparable at k=1",
    "F11dm": "paper: F rises with |Dm|",
    "F11n": "paper: ours flat in n%; IncRep degrades and crosses below",
    "F12dm": "paper: sub-second rounds; BDD cuts latency; ~linear in |Dm|",
    "F12d": "paper: CertainFix flat in |D|; CertainFix+ amortizes, "
            "~0.1s once |D| > 100",
    "A": "ablations (ours): index >> scan; dep-graph == naive on fixes; "
         "uncurated mined rules forfeit the precision guarantee",
}


def _ablation_mined_rules(config):
    from repro.discovery import discover_editing_rules, rules_only
    from repro.experiments.config import load_workload
    from repro.experiments.runner import run_stream
    from repro.repair.region_search import comp_c_region

    bundle, data = load_workload(config.with_(input_size=60))
    mined = rules_only(discover_editing_rules(bundle.master, max_lhs_size=2))
    hand_regions = comp_c_region(bundle.rules, bundle.master, bundle.schema)
    mined_regions = comp_c_region(mined, bundle.master, bundle.schema,
                                  validate_patterns=16)
    hand = run_stream(bundle, data)

    class MinedBundle:
        schema = bundle.schema
        master = bundle.master
        rules = mined

    mined_result = run_stream(MinedBundle, data)
    headers = ("rule set", "|Σ|", "|Z|", "recall_a", "precision")
    rows = [
        ("hand-written", len(bundle.rules),
         len(hand_regions[0].region.attrs),
         hand.final_metrics().recall_a, hand.final_metrics().precision_a),
        ("mined (uncurated)", len(mined),
         len(mined_regions[0].region.attrs),
         mined_result.final_metrics().recall_a,
         mined_result.final_metrics().precision_a),
    ]
    return headers, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (sanity pass)")
    args = parser.parse_args()

    if args.quick:
        hosp = BENCH_HOSP.with_(master_size=600, input_size=60)
        dblp = BENCH_DBLP.with_(master_size=600, input_size=60)
    else:
        hosp, dblp = BENCH_HOSP, BENCH_DBLP

    sections = []

    def section(exp_id, title, headers, rows):
        note = PAPER_NOTES.get(exp_id, "")
        text = format_table(headers, rows)
        sections.append((exp_id, title, note, text))
        print(f"\n== {exp_id}: {title} ({note})")
        print(text)

    started = time.time()

    section("T1", "Certain-region sizes (Exp-1(1))",
            *figures.table1_region_sizes([hosp, dblp]))
    section("T2", "Initial suggestion CRHQ vs CRMQ (Exp-1(2))",
            *figures.table2_initial_suggestion(
                [hosp.with_(input_size=150), dblp.with_(input_size=150)]))

    h9 = figures.fig9_interactions(hosp)
    d9 = figures.fig9_interactions(dblp)
    section("F9", "Recall per interaction round - hosp (Fig. 9)", *h9)
    section("F9", "Recall per interaction round - dblp (Fig. 9)", *d9)

    for config, name in ((hosp, "hosp"), (dblp, "dblp")):
        section("F10d", f"recall_t vs d% - {name} (Fig. 10a/d)",
                *figures.fig10_tuple_recall(config, "d%"))
    section("F10dm", "recall_t vs |Dm| - hosp (Fig. 10b)",
            *figures.fig10_tuple_recall(hosp, "|Dm|"))
    section("F10dm", "recall_t vs |Dm| - dblp (Fig. 10e)",
            *figures.fig10_tuple_recall(dblp, "|Dm|"))
    for config, name in ((hosp, "hosp"), (dblp, "dblp")):
        section("F10n", f"recall_t vs n% - {name} (Fig. 10c/f)",
                *figures.fig10_tuple_recall(config, "n%"))

    for config, name in ((hosp, "hosp"), (dblp, "dblp")):
        section("F11d", f"F-measure vs d% - {name} (Fig. 11a/d)",
                *figures.fig11_f_measure(config, "d%"))
    section("F11dm", "F-measure vs |Dm| - hosp (Fig. 11b)",
            *figures.fig11_f_measure(hosp, "|Dm|"))
    section("F11dm", "F-measure vs |Dm| - dblp (Fig. 11e)",
            *figures.fig11_f_measure(dblp, "|Dm|"))
    for config, name in ((hosp, "hosp"), (dblp, "dblp")):
        section("F11n", f"F-measure vs n% - {name} (Fig. 11c/f)",
                *figures.fig11_f_measure(config, "n%"))

    for config, name in ((hosp.with_(input_size=80), "hosp"),
                         (dblp.with_(input_size=80), "dblp")):
        section("F12dm", f"latency vs |Dm| - {name} (Fig. 12a/b)",
                *figures.fig12_scalability(config, "|Dm|"))
    section("F12d", "latency vs |D| - hosp (Fig. 12c)",
            *figures.fig12_scalability(hosp, "|D|"))
    section("F12d", "latency vs |D| - dblp (Fig. 12d)",
            *figures.fig12_scalability(dblp, "|D|"))

    section("A", "Ablations A1/A2: TransFix variants - hosp",
            *figures.ablation_transfix(hosp.with_(input_size=120)))
    section("A", "Ablation A4: mined vs hand-written rules - hosp",
            *_ablation_mined_rules(hosp))

    elapsed = time.time() - started
    write_experiments_md(sections, hosp, dblp, elapsed, args.quick)
    print(f"\nDone in {elapsed:.0f}s -> EXPERIMENTS.md")


def write_experiments_md(sections, hosp, dblp, elapsed, quick):
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Every table and figure of the evaluation section of *Towards Certain",
        "Fixes with Editing Rules and Master Data* (Fan et al., VLDB 2010 /",
        "VLDBJ 2012), regenerated by this reproduction.  Regenerate with:",
        "",
        "```",
        "python benchmarks/run_all.py          # rewrites this file",
        "pytest benchmarks/ --benchmark-only   # same harness + timing + shape asserts",
        "```",
        "",
        "## Setup",
        "",
        f"- Scale: |Dm| = {hosp.master_size} (hosp: "
        f"{hosp.master_size // 10} hospitals × 10 measures; dblp: "
        f"{dblp.master_size} papers); |D| = {hosp.input_size} input tuples "
        "per configuration"
        + (" (QUICK mode)" if quick else "") + ".",
        "- Defaults follow the paper: d% = 30, n% = 20; sweeps span the",
        "  paper's relative ranges (scaled absolute sizes, DESIGN.md §5).",
        "- User feedback simulated with ground-truth oracles, as in the paper.",
        "- Absolute latencies are pure-Python; the paper used C++.  Only",
        "  *shapes* (who wins, what grows, where curves flatten) are claimed.",
        "",
        "## Shape scorecard (asserted by `pytest benchmarks/`)",
        "",
        "| Claim (paper) | Reproduced? |",
        "|---|---|",
        "| HOSP certain region: CompCRegion 2 vs GRegion 4 | yes — exact |",
        "| DBLP CompCRegion region size 5 | yes — exact |",
        "| DBLP GRegion size 9 | partial — ours finds 5 (the paper's exact greedy is unspecified; ≥ CompCRegion holds) |",
        "| CRHQ initial region beats CRMQ on F-measure | yes |",
        "| All tuples fixed in ≤ 4 (hosp) / ≤ 3 (dblp) rounds | approximate — hosp ≤ 5 (rare 5th round), dblp ≤ 4; >90% within 3 |",
        "| recall_t at k = 1 equals d% | yes |",
        "| recall_t insensitive to n% | yes |",
        "| Ours flat vs n%, IncRep degrades and crosses below | yes |",
        "| 100% precision for CertainFix | yes — exact, by construction |",
        "| Round latency linear in |Dm|; BDD cache large speedup | yes |",
        "| CertainFix+ amortizes over the stream (hit rate → ~1) | yes |",
        "| (ext.) batch repair / mined rules reuse the same guarantees | "
        "yes — see ablation A4 and repro/repair/database_repair.py |",
        "",
        f"Full battery wall-clock: {elapsed:.0f}s.",
        "",
        "## Results",
        "",
    ]
    for exp_id, title, note, text in sections:
        lines.append(f"### {exp_id} — {title}")
        if note:
            lines.append("")
            lines.append(f"*{note}*")
        lines.append("")
        lines.append("```")
        lines.append(text)
        lines.append("```")
        lines.append("")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(lines))


if __name__ == "__main__":
    main()
