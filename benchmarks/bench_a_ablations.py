"""Ablations A1-A4 (design choices called out in Sect. 5, plus extensions).

* A1 — TransFix's dependency-graph worklist vs a naive rescanning fixpoint
  (same fixes; the graph bounds work per fired rule).
* A2 — hash-indexed master lookups vs linear scans (the Sect. 5.1 complexity
  argument: "constant time ... by using a hash table").
* A3 — the Suggest⁺ BDD cache hit rate over a growing tuple stream.
* A4 — rules mined from master data (the paper's future-work item) vs the
  hand-written set: same certain region, same monitoring guarantee.
"""

from benchmarks.conftest import BENCH_HOSP, emit
from repro.analysis.dependency_graph import DependencyGraph
from repro.experiments.config import load_workload
from repro.experiments.figures import ablation_transfix
from repro.experiments.runner import run_stream
from repro.experiments.tables import format_table
from repro.repair.region_search import comp_c_region
from repro.repair.transfix import transfix


def test_a1_a2_transfix_variants(benchmark):
    headers, rows = ablation_transfix(BENCH_HOSP.with_(input_size=120))
    emit("a1_a2_transfix", format_table(
        headers, rows, "Ablations A1/A2: TransFix variants (hosp)"
    ))
    by_name = {row[0]: row[1] for row in rows}
    # Index vs scan is the decisive factor (orders of magnitude at |Dm|=1.5K).
    assert by_name["dep-graph + scan"] > 5 * by_name["dep-graph + index"]
    # All variants fixed the same number of attributes per tuple.
    assert len({row[2] for row in rows}) == 1

    bundle, data = load_workload(BENCH_HOSP.with_(input_size=50))
    graph = DependencyGraph(bundle.rules)
    z0 = comp_c_region(bundle.rules, bundle.master, bundle.schema)[0].region.attrs
    clean_rows = [dt.clean for dt in data]
    benchmark.pedantic(
        lambda: [
            transfix(row, z0, bundle.rules, bundle.master, graph)
            for row in clean_rows
        ],
        rounds=3, iterations=1,
    )


def test_a3_bdd_hit_rate(benchmark):
    bundle, data = load_workload(BENCH_HOSP.with_(input_size=150))
    result = run_stream(bundle, data, use_bdd=True)
    stats = result.engine.cache_stats
    rows = [
        ("hits", stats.hits),
        ("misses", stats.misses),
        ("checks", stats.checks),
        ("hit rate", stats.hit_rate),
    ]
    emit("a3_bdd_hit_rate", format_table(
        ("metric", "value"), rows, "Ablation A3: Suggest+ BDD cache (hosp)"
    ))
    assert stats.hit_rate > 0.8

    benchmark.pedantic(
        lambda: run_stream(bundle, data.tuples[:30], use_bdd=True),
        rounds=2, iterations=1,
    )


def test_a4_mined_rules_vs_handwritten(benchmark):
    from repro.discovery import discover_editing_rules, rules_only
    from repro.experiments.runner import run_stream as _run
    from repro.experiments.config import load_dataset

    config = BENCH_HOSP.with_(input_size=60)
    bundle, data = load_workload(config)
    mined = rules_only(
        discover_editing_rules(bundle.master, max_lhs_size=2)
    )
    hand_regions = comp_c_region(bundle.rules, bundle.master, bundle.schema)
    mined_regions = comp_c_region(mined, bundle.master, bundle.schema,
                                  validate_patterns=16)
    hand = _run(bundle, data)

    class MinedBundle:
        schema = bundle.schema
        master = bundle.master
        rules = mined

    mined_result = _run(MinedBundle, data)
    rows = [
        ("hand-written", len(bundle.rules),
         len(hand_regions[0].region.attrs),
         hand.final_metrics().recall_a, hand.final_metrics().precision_a),
        ("mined", len(mined),
         len(mined_regions[0].region.attrs),
         mined_result.final_metrics().recall_a,
         mined_result.final_metrics().precision_a),
    ]
    emit("a4_mined_rules", format_table(
        ("rule set", "|Σ|", "|Z|", "recall_a", "precision"),
        rows,
        "Ablation A4: mined vs hand-written rules (hosp).\n"
        "Uncurated mining recovers the region structure but admits\n"
        "pseudo-key FDs (near-unique columns) that mis-fire on entities\n"
        "outside the master data - curation is what keeps precision at 1.",
    ))
    assert rows[0][2] == rows[1][2] == 2        # same certain region size
    assert rows[0][4] == 1.0                    # hand-written: certain
    assert rows[1][4] <= 1.0                    # mined: curation needed

    benchmark.pedantic(
        lambda: discover_editing_rules(bundle.master, max_lhs_size=1),
        rounds=2, iterations=1,
    )
