# Developer entry points.  The python toolchain is assumed on PATH; every
# target is pure stdlib + pytest.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke bench example

test:
	$(PYTHON) -m pytest -x -q

# Quick perf smoke: seeds/refreshes BENCH_batch.json at reduced scale and
# fails if the batch engine loses its >=2x margin over naive fix_stream.
smoke:
	$(PYTHON) benchmarks/bench_batch_throughput.py --quick

# Full-scale throughput trajectory (the committed BENCH_batch.json).
bench:
	$(PYTHON) benchmarks/bench_batch_throughput.py

example:
	$(PYTHON) examples/batch_throughput.py
