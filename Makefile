# Developer entry points.  The python toolchain is assumed on PATH; every
# target is pure stdlib + pytest.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test conformance smoke metrics-smoke bench bench-store bench-sharded bench-invalidation example lint lint-rules certify

test:
	$(PYTHON) -m pytest -x -q

# Static analysis over the codebase itself: ruff (pyflakes + pycodestyle
# error families) and mypy (strict-leaning on repro.lint / repro.core).
# Both are CI-only dev deps (requirements-dev.txt), config in
# pyproject.toml.
lint:
	$(PYTHON) -m ruff check src tests
	$(PYTHON) -m mypy -p repro.lint -p repro.core

# The domain analyzer over the shipped rule sets: `repro lint` must report
# zero error-level findings on HOSP and DBLP (warnings are expected —
# both sets legitimately trip W202/W105/I107).  CI uploads the SARIF.
lint-rules:
	$(PYTHON) -m repro.lint.fixtures --out-dir $${LINT_FIXTURES:-/tmp/lint-fixtures}
	$(PYTHON) -m repro lint \
		--rules $${LINT_FIXTURES:-/tmp/lint-fixtures}/hosp.rules.json \
		--master $${LINT_FIXTURES:-/tmp/lint-fixtures}/hosp.master.csv \
		--fail-on error --format sarif \
		--output $${LINT_FIXTURES:-/tmp/lint-fixtures}/hosp.sarif
	$(PYTHON) -m repro lint \
		--rules $${LINT_FIXTURES:-/tmp/lint-fixtures}/dblp.rules.json \
		--master $${LINT_FIXTURES:-/tmp/lint-fixtures}/dblp.master.csv \
		--fail-on error --format sarif \
		--output $${LINT_FIXTURES:-/tmp/lint-fixtures}/dblp.sarif

# Exact certification gate over the shipped rule sets: the full analyzer
# (structural + master-aware + E205/W206/I208) must reproduce the
# committed golden JSON/SARIF byte-for-byte, and a `--fix` pass over the
# already-clean sets must be a no-op (fix-it idempotence).  Runs from
# inside the fixtures dir so artifact URIs in the goldens stay relative.
CERTIFY_DIR ?= /tmp/lint-fixtures
certify:
	$(PYTHON) -m repro.lint.fixtures --out-dir $(CERTIFY_DIR)
	for name in hosp dblp; do \
		cd $(CERTIFY_DIR) && \
		PYTHONPATH=$(CURDIR)/src $(PYTHON) -m repro lint \
			--rules $$name.rules.json --master $$name.master.csv \
			--fail-on error --format json \
			--output $$name.certify.json && \
		PYTHONPATH=$(CURDIR)/src $(PYTHON) -m repro lint \
			--rules $$name.rules.json --master $$name.master.csv \
			--fail-on error --format sarif \
			--output $$name.certify.sarif && \
		cd $(CURDIR) && \
		diff -u tests/golden/$$name.certify.json \
			$(CERTIFY_DIR)/$$name.certify.json && \
		diff -u tests/golden/$$name.certify.sarif \
			$(CERTIFY_DIR)/$$name.certify.sarif && \
		cp $(CERTIFY_DIR)/$$name.rules.json $(CERTIFY_DIR)/$$name.fixed.json && \
		cd $(CERTIFY_DIR) && \
		PYTHONPATH=$(CURDIR)/src $(PYTHON) -m repro lint \
			--rules $$name.fixed.json --master $$name.master.csv \
			--fix > /dev/null && \
		cd $(CURDIR) && \
		cmp $(CERTIFY_DIR)/$$name.rules.json $(CERTIFY_DIR)/$$name.fixed.json \
		|| exit 1; \
	done

# The MasterStore contract suite against every backend (memory, sqlite
# file + :memory:, remote HTTP).  A subset of `test`, but named so a
# backend regression is attributable on its own line (CI runs it as a
# dedicated step).
conformance:
	$(PYTHON) -m pytest tests/test_store_conformance.py -q

# Quick perf smoke: seeds/refreshes BENCH_batch.json at reduced scale and
# fails if the batch engine loses its >=2x margin over naive fix_stream.
# Covers the executor matrix: the CPU-bound oracle series runs the same
# workload sequentially, with a 2-thread fan-out and with a 2-worker
# process pool (the process speedup floor is enforced on >=2-core hosts).
# (2 workers cap the ideal speedup at 2x, so the smoke floor is 1.2x;
# the full bench runs 4 workers against the default 2x floor.)
smoke:
	$(PYTHON) benchmarks/bench_batch_throughput.py --quick --concurrency 2 --min-process-speedup 1.2

# End-to-end telemetry gate: a live MasterServer (sqlite backing) serves
# GET /metrics while the real CLI batch-repair path runs against it over
# the remote backend with --progress; the exposition is scraped mid-batch
# and validated with the strict Prometheus parser, and the `repro
# metrics` subcommand is exercised in both formats.
metrics-smoke:
	$(PYTHON) benchmarks/metrics_smoke.py

# Full-scale throughput trajectory (the committed BENCH_batch.json).
bench:
	$(PYTHON) benchmarks/bench_batch_throughput.py

# Master-store backends: memory vs sqlite vs remote (HTTP read-through)
# throughput, raw probe latency (cold vs warm cache; remote warm must stay
# within 5x of sqlite) and the cost of an incremental master update
# invalidating the shared caches; asserts all backends fix identically and
# regenerates the committed BENCH_store.json.
bench-store:
	$(PYTHON) benchmarks/bench_store.py

# Delta-invalidation gate at smoke scale: a sustained master-mutation
# series must resolve every version bump through per-key purges (no full
# drops) and the post-update rerun must beat a delta_invalidation=False
# reference engine by >=5x on the same machine (the floor the committed
# full-mode BENCH_store.json also enforces).
bench-invalidation:
	$(PYTHON) benchmarks/bench_store.py --quick --enforce-speedup \
		--output $${BENCH_INVALIDATION:-/tmp/BENCH_store_invalidation.json}

# Sharded-fleet series at full scale: the scatter-gather coordinator over
# 1/2/4 live HTTP shard servers (hash-partitioned masters), outputs
# asserted identical to memory; regenerates the committed BENCH_store.json
# (the sharded series rides inside the same file).
bench-sharded:
	$(PYTHON) benchmarks/bench_store.py

example:
	$(PYTHON) examples/batch_throughput.py
