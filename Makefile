# Developer entry points.  The python toolchain is assumed on PATH; every
# target is pure stdlib + pytest.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke bench bench-store example

test:
	$(PYTHON) -m pytest -x -q

# Quick perf smoke: seeds/refreshes BENCH_batch.json at reduced scale and
# fails if the batch engine loses its >=2x margin over naive fix_stream.
# Covers the executor matrix: the CPU-bound oracle series runs the same
# workload sequentially, with a 2-thread fan-out and with a 2-worker
# process pool (the process speedup floor is enforced on >=2-core hosts).
# (2 workers cap the ideal speedup at 2x, so the smoke floor is 1.2x;
# the full bench runs 4 workers against the default 2x floor.)
smoke:
	$(PYTHON) benchmarks/bench_batch_throughput.py --quick --concurrency 2 --min-process-speedup 1.2

# Full-scale throughput trajectory (the committed BENCH_batch.json).
bench:
	$(PYTHON) benchmarks/bench_batch_throughput.py

# Master-store backends: memory vs sqlite throughput plus the cost of an
# incremental master update invalidating the shared caches; asserts both
# backends fix identically and regenerates the committed BENCH_store.json.
bench-store:
	$(PYTHON) benchmarks/bench_store.py

example:
	$(PYTHON) examples/batch_throughput.py
