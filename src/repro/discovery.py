"""Editing-rule discovery from master data (the paper's third future-work
item: "effective algorithms have to be in place for discovering editing
rules from sample inputs and master data, along the same lines as
discovering other data quality rules").

Editing rules of the common same-schema form ``((X, X) → (B, B), nil
guards)`` are sound precisely when the functional dependency ``X → B`` holds
*exactly* on the master data (a near-FD would hand TransFix conflicting
master matches).  Discovery therefore:

1. enumerates candidate keys ``X`` up to ``max_lhs_size`` in apriori order,
   pruning non-minimal ones (if ``X → B`` holds, no superset of ``X`` is
   reported for ``B``);
2. keeps exact FDs whose key is *selective enough* to be a plausible match
   key (``min_key_ratio`` distinct keys per row — constant-ish columns make
   useless and dangerous match keys);
3. emits rules guarded by non-nil patterns on the key, mirroring the
   published HOSP rules.

The discovered set can be vetted exactly like hand-written rules
(``comp_c_region``, ``is_certain_region``), which the tests do: on the
synthetic HOSP master the discovery recovers the dependency structure of
the paper's 21 hand-written rules and yields the same size-2 certain region.

**Curation caveat** (measured by ablation A4): an FD that holds on the
master data need not be a domain invariant — near-unique columns (street
addresses, sample descriptions) form *pseudo-keys* whose mined rules can
mis-fire on entities outside the master data, forfeiting the certainty
guarantee.  Certainty is relative to the rules being *correct*, which
mining alone cannot establish; review mined rules (or restrict ``attrs``
to known identifiers) before deploying them.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.core.patterns import PatternTuple, neq
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.values import NULL


@dataclass(frozen=True)
class DiscoveredRule:
    """A discovered rule with its evidence."""

    rule: EditingRule
    support: int          # distinct key values in the master data
    key_ratio: float      # distinct keys / master rows (selectivity)

    def describe(self) -> str:
        return (
            f"{self.rule.name}: support={self.support}, "
            f"selectivity={self.key_ratio:.2f}"
        )


def _holds_exactly(master: Relation, lhs: tuple, rhs: str):
    """Whether ``lhs → rhs`` holds exactly; returns (holds, distinct_keys)."""
    seen: dict = {}
    for row in master:
        key = row[lhs]
        value = row[rhs]
        previous = seen.get(key)
        if previous is None:
            seen[key] = value
        elif previous != value:
            return False, len(seen)
    return True, len(seen)


def discover_editing_rules(
    master: Relation,
    max_lhs_size: int = 2,
    min_key_ratio: float = 0.01,
    min_support: int = 2,
    attrs: Sequence = None,
) -> list:
    """Mine same-schema editing rules from exact master FDs.

    Parameters
    ----------
    master:
        The master relation (assumed consistent and complete, Sect. 2).
    max_lhs_size:
        Largest candidate key size (apriori enumeration).
    min_key_ratio:
        Minimum distinct-keys/rows selectivity for a usable match key.
    min_support:
        Minimum number of distinct key values witnessing the FD.
    attrs:
        Restrict discovery to these attributes (default: all).
    """
    if len(master) == 0:
        return []
    attrs = tuple(attrs) if attrs is not None else master.schema.attributes
    rows = len(master)

    # Minimality bookkeeping: rhs -> list of minimal keys found so far.
    minimal_keys: dict = {b: [] for b in attrs}
    discovered = []

    for size in range(1, max_lhs_size + 1):
        for lhs in combinations(attrs, size):
            lhs_set = set(lhs)
            for rhs in attrs:
                if rhs in lhs_set:
                    continue
                if any(set(k) <= lhs_set for k in minimal_keys[rhs]):
                    continue  # a subset already determines rhs
                holds, distinct = _holds_exactly(master, lhs, rhs)
                if not holds:
                    continue
                ratio = distinct / rows
                if distinct < min_support or ratio < min_key_ratio:
                    continue
                minimal_keys[rhs].append(lhs)
                rule = EditingRule(
                    lhs,
                    lhs,
                    rhs,
                    rhs,
                    PatternTuple({a: neq(NULL) for a in lhs}),
                    name=f"mined:{','.join(lhs)}->{rhs}",
                )
                discovered.append(
                    DiscoveredRule(rule=rule, support=distinct, key_ratio=ratio)
                )

    discovered.sort(
        key=lambda d: (len(d.rule.lhs), -d.support, d.rule.name)
    )
    return discovered


def rules_only(discovered: Sequence) -> list:
    """Strip the evidence wrappers."""
    return [d.rule for d in discovered]
