"""repro — a reproduction of *Towards Certain Fixes with Editing Rules and
Master Data* (Fan, Li, Ma, Tang, Yu; VLDB 2010 / VLDB Journal 2012).

The library implements the paper end to end:

* the relational substrate (:mod:`repro.engine`);
* editing rules, regions and the certain-fix semantics (:mod:`repro.core`);
* the static analyses — consistency, coverage, direct fixes, the Z-problems
  — with the paper's hardness reductions as test oracles
  (:mod:`repro.analysis`, :mod:`repro.reductions`);
* the interactive monitoring framework — CertainFix / CertainFix⁺ with
  TransFix, Suggest and the BDD cache (:mod:`repro.repair`);
* the CFD substrate and the IncRep repair baseline
  (:mod:`repro.constraints`);
* the HOSP / DBLP dataset generators and the dirty-data generator
  (:mod:`repro.datasets`), plus evaluation metrics (:mod:`repro.metrics`).

Quickstart::

    from repro import make_running_example, chase

    ex = make_running_example()
    outcome = chase(ex.inputs["t1"], ("zip", "phn", "type"),
                    ex.rules, ex.master)
    print(outcome.assignment["FN"])   # 'Robert' — Bob was standardized

See ``examples/`` for end-to-end monitoring sessions and ``benchmarks/``
for the harnesses regenerating every table and figure of the paper.
"""

from repro.engine import (
    Attribute,
    Domain,
    INT,
    InMemoryStore,
    MasterServer,
    MasterStore,
    NULL,
    RemoteStore,
    Relation,
    RelationSchema,
    Row,
    STRING,
    SqliteStore,
    StoreDetachedError,
    StoreError,
    StoreUnavailableError,
    UNKNOWN,
    as_master_store,
    finite_domain,
    natural_join,
)
from repro.core import (
    ANY,
    ChaseOutcome,
    Conflict,
    Const,
    EditingRule,
    NotConst,
    PatternTableau,
    PatternTuple,
    Region,
    Wildcard,
    chase,
    const,
    expand_rule_family,
    neq,
    region_apply,
    wildcard,
)
from repro.analysis import (
    DependencyGraph,
    check_region,
    explore_fixes,
    is_certain_region,
    is_consistent,
    is_direct_certain_region,
    is_direct_consistent,
    z_counting,
    z_minimum_exact,
    z_minimum_greedy,
    z_validating,
)
from repro.repair import (
    BatchRepairEngine,
    BatchReport,
    BatchResult,
    CertainFix,
    FixSession,
    IncompleteFix,
    SimulatedUser,
    comp_c_region,
    g_region,
    suggest,
    transfix,
)
from repro.constraints import CFD, FD, IncRep, cfds_from_rules, levenshtein
from repro.datasets import (
    make_dblp,
    make_dirty_dataset,
    make_hosp,
    make_running_example,
)
from repro.metrics import AggregateMetrics, aggregate, evaluate_repair
from repro.discovery import DiscoveredRule, discover_editing_rules
from repro.repair.database_repair import DatabaseRepairReport, repair_database

__version__ = "1.0.0"

__all__ = [
    "ANY",
    "AggregateMetrics",
    "Attribute",
    "BatchRepairEngine",
    "BatchReport",
    "BatchResult",
    "CFD",
    "CertainFix",
    "ChaseOutcome",
    "Conflict",
    "Const",
    "DatabaseRepairReport",
    "DependencyGraph",
    "DiscoveredRule",
    "Domain",
    "EditingRule",
    "FD",
    "FixSession",
    "INT",
    "InMemoryStore",
    "MasterServer",
    "IncRep",
    "IncompleteFix",
    "MasterStore",
    "RemoteStore",
    "NULL",
    "NotConst",
    "PatternTableau",
    "PatternTuple",
    "Region",
    "Relation",
    "RelationSchema",
    "Row",
    "STRING",
    "SimulatedUser",
    "SqliteStore",
    "StoreDetachedError",
    "StoreError",
    "StoreUnavailableError",
    "UNKNOWN",
    "Wildcard",
    "aggregate",
    "as_master_store",
    "cfds_from_rules",
    "chase",
    "check_region",
    "comp_c_region",
    "discover_editing_rules",
    "const",
    "evaluate_repair",
    "expand_rule_family",
    "explore_fixes",
    "finite_domain",
    "g_region",
    "is_certain_region",
    "is_consistent",
    "is_direct_certain_region",
    "is_direct_consistent",
    "levenshtein",
    "make_dblp",
    "make_dirty_dataset",
    "make_hosp",
    "make_running_example",
    "natural_join",
    "neq",
    "region_apply",
    "repair_database",
    "suggest",
    "transfix",
    "wildcard",
    "z_counting",
    "z_minimum_exact",
    "z_minimum_greedy",
    "z_validating",
]
