"""Sharded master data: hash-partitioned ``Dm`` behind scatter-gather probes.

A master relation with hundreds of millions of tuples does not fit one
``serve-master`` process; ROADMAP Open item 1 calls for a *fleet*.  This
module supplies the coordinator: :class:`ShardedStore` is a full
:class:`~repro.engine.store.MasterStore` that hash-partitions the master
rows across N backend stores — typically
:class:`~repro.engine.remote.RemoteStore` clients against N
``serve-master --shard i/N`` processes, though any mix of backends with
one schema works — and answers every probe by routing or scatter-gather.
The repair engines see one ordinary store; the fleet is invisible.

Key routing
-----------
Every row lives on exactly one shard, chosen by a **stable** hash of its
routing key (Python's own ``hash()`` is salted per process and would
scatter the same row differently in every worker):

====================  =======================================================
quantity              definition
====================  =======================================================
routing attributes    ``route_attrs`` (default: the schema's first
                      attribute); every shard and every client must agree
routing key of a row  ``row[route_attrs]``
wire form             each value through the tagged codec
                      :func:`repro.engine.store._encode`, joined with
                      ``"\\x1f"`` (unit separator), UTF-8 encoded
shard index           ``zlib.crc32(wire form) % n_shards``
unstorable values     a routing key the codec refuses cannot be stored on
                      any shard: probes resolve to "no match" locally,
                      ``insert`` raises ``TypeError``
====================  =======================================================

The codec reproduces Python's equality semantics (``2 == 2.0 == True``
encode identically, ``87`` never collides with ``"87"``), so routing
agrees with the hash-bucket semantics every backend probes by.

A probe ``(attrs, key)`` whose attribute list covers every routing
attribute is **routable**: all rows it could match share one routing key,
so exactly one shard is asked and shard-local result order *is* global
insertion order.  Any other probe **broadcasts** to all shards and the
per-shard results concatenate in shard order.  Choose ``route_attrs`` as
(a subset of) the rule keys so the repair hot path stays single-shard.

Scatter-gather protocol
-----------------------
``probe_many`` buckets its keys per shard (broadcast keys go to every
bucket), fans the buckets out concurrently on a thread pool, and
**strictly reconciles** each shard's answer before merging: a shard must
echo exactly the key set it was asked — anything else raises
:class:`~repro.engine.store.StoreProtocolError` and nothing is merged.
This is the ``RemoteStore`` ``/probe_many`` count-validation bugfix
generalized: once partial responses are a routine failure mode, silent
truncation anywhere in the fan-out corrupts fixes.

Failures & health
-----------------
Per-shard health is tracked (consecutive/total failures, retries, last
error; see :meth:`ShardedStore.shard_info`).  Idempotent reads retry with
exponential backoff up to ``retries`` times; mutations are never replayed
by the coordinator (the shard backend already replays the provably-unsent
cases — an ``/insert`` replay could double-insert).  When a shard stays
down the coordinator raises :class:`ShardUnavailableError` carrying the
shard index and the probe keys whose answers are now **undecidable** —
never a silent ``()``.

Versioning & deltas
-------------------
The composite version is the sum of the shard versions (the shard-version
vector collapsed to its L1 norm): every single-shard mutation moves it by
exactly 1, so the repair layer's version-stamped caches behave exactly as
over one store.  ``deltas_since`` merges the per-shard journals into one
composite-stamped journal and returns ``None`` on any gap — preserving
the unconditional full-drop fallback.  Mutations made *directly* on a
shard (not through this coordinator) are folded in on the next
reconciliation, ordered shard-major within one reconcile step.

Iteration order
---------------
With ``track_order=True`` (the default) the coordinator keeps a layout
(one shard index per row, global insertion order) plus a per-shard mirror
of row values, so ``iter``/``iter_from`` reproduce exact global insertion
order across the fleet — including through deletes replayed from shard
journals.  The mirror costs one value tuple per master row in the
coordinator; fleets too large for that pass ``track_order=False`` and get
the deterministic shard-major order instead (equal rows co-locate, so
repair semantics are unaffected either way).  A journal gap degrades
order tracking to shard-major until the next ``reset_rows``.

Telemetry (see the :mod:`repro.obs` metric table): per-shard scatter-leg
latency ``repro_shard_probe_seconds{shard=..}``, fan-out width
``repro_shard_fanout_width``, and ``repro_shard_retries_total`` /
``repro_shard_failures_total``.
"""

from __future__ import annotations

import itertools
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro import obs
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.store import (
    DEFAULT_DELTA_WINDOW,
    MasterStore,
    StoreProtocolError,
    StoreUnavailableError,
    _DeltaJournal,
    _encode,
)
from repro.engine.tuples import Row


class ShardUnavailableError(StoreUnavailableError):
    """One shard of a :class:`ShardedStore` stayed down through retries.

    Carries which shard failed (``.shard``) and, for probe paths, the
    probe keys whose answers are now undecidable (``.keys``) — the
    coordinator never resolves an unanswerable key as "no match".
    """

    def __init__(self, message: str, shard: int, keys: Iterable = ()):
        super().__init__(message)
        self.shard = shard
        self.keys = tuple(keys)


@dataclass
class ShardHealth:
    """Mutable per-shard failure accounting (see ``shard_info()``)."""

    failures: int = 0        # consecutive, reset on any success
    total_failures: int = 0
    retries: int = 0
    last_error: str = None

    def as_dict(self) -> dict:
        return {
            "failures": self.failures,
            "total_failures": self.total_failures,
            "retries": self.retries,
            "last_error": self.last_error,
        }


def shard_of(values: Iterable, n_shards: int):
    """The owning shard of a routing-key value tuple, or ``None``.

    ``None`` when any value is unstorable under the wire codec — such a
    key can never equal a stored master cell on any shard.
    """
    try:
        blob = "\x1f".join(_encode(v) for v in values).encode("utf-8")
    except TypeError:
        return None
    return zlib.crc32(blob) % n_shards


class ShardedStore(MasterStore):
    """Hash-partitioned master data across N backend stores.

    Parameters
    ----------
    shards:
        The backend stores (>= 1), all over the same schema.  Pre-loaded
        shards are adopted as-is; rows must already sit on their hash
        shard (the ``serve-master --shard i/N`` filter guarantees it).
    route_attrs:
        The routing attributes (default: the schema's first attribute).
        Every coordinator of the same fleet must agree, and must match
        whatever partitioned pre-loaded shards.
    rows:
        Seed rows, routed and inserted through the coordinator.
    track_order:
        Keep exact global insertion order across the fleet (costs one
        value-tuple mirror per row in this coordinator; see the module
        docstring).  ``False`` iterates shard-major.
    retries / backoff / max_backoff:
        Bounded-retry policy for idempotent shard calls: up to *retries*
        replays, sleeping ``backoff * 2**attempt`` (capped at
        *max_backoff*) between attempts.
    """

    #: Scatter-gather amortizes per-shard round-trips exactly like the
    #: remote client's batched probes do.
    supports_batched_probes = True

    def __init__(
        self,
        shards: Iterable,
        route_attrs: Iterable = None,
        *,
        rows: Iterable = (),
        track_order: bool = True,
        delta_window: int = DEFAULT_DELTA_WINDOW,
        retries: int = 3,
        backoff: float = 0.25,
        max_backoff: float = 2.0,
    ):
        self._shards = tuple(shards)
        if not self._shards:
            raise ValueError("ShardedStore needs at least one shard")
        schema = self._shards[0].schema
        for shard in self._shards[1:]:
            if shard.schema.attributes != schema.attributes:
                raise ValueError(
                    f"shard schemas disagree: {schema.attributes} vs "
                    f"{shard.schema.attributes}"
                )
        self._schema = schema
        if route_attrs is None:
            route_attrs = (schema.attributes[0],)
        self._route_attrs = tuple(route_attrs)
        if not self._route_attrs:
            raise ValueError("route_attrs must name at least one attribute")
        self._route_pos = [schema.index_of(a) for a in self._route_attrs]
        self._retries = retries
        self._backoff = backoff
        self._max_backoff = max_backoff
        self._lock = threading.RLock()
        self._pool = None
        self._closed = False
        self.health = tuple(ShardHealth() for _ in self._shards)
        self.probe_ref_calls = 0
        self.fanouts = 0          # scatter-gather dispatches
        self.broadcast_probes = 0  # probes that could not be routed
        # Version/journal state: composite = sum of shard versions; the
        # journal re-stamps per-shard deltas onto the composite stream.
        self._seen = [shard.version for shard in self._shards]
        self._composite = sum(self._seen)
        self._journal = _DeltaJournal(delta_window)
        self._journal.reset(self._composite)
        # Order state (see the module docstring): _layout is one shard
        # index per row in global insertion order, _mirror[i] the value
        # tuples of shard i in its local order.  Both None when order
        # tracking is off or has degraded (journal gap).
        self._layout = None
        self._mirror = None
        if track_order:
            self._layout = []
            self._mirror = []
            for index, shard in enumerate(self._shards):
                local = [tuple(row.values) for row in shard]
                self._mirror.append(local)
                self._layout.extend([index] * len(local))
        for row in rows:
            self.insert(row)

    # -- plumbing ------------------------------------------------------------

    @property
    def shards(self) -> tuple:
        return self._shards

    @property
    def route_attrs(self) -> tuple:
        return self._route_attrs

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def shares_storage_across_processes(self) -> bool:  # type: ignore[override]
        return all(
            shard.shares_storage_across_processes for shard in self._shards
        )

    def _executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=len(self._shards),
                    thread_name_prefix="shard-probe",
                )
            return self._pool

    def _route_row(self, row: Row):
        return shard_of(
            (row.values[p] for p in self._route_pos), len(self._shards)
        )

    def _probe_route(self, attrs: tuple):
        """Positions of the routing attributes inside a probe attribute
        list, or ``None`` when the probe does not cover them (broadcast)."""
        positions = []
        for name in self._route_attrs:
            try:
                positions.append(attrs.index(name))
            except ValueError:
                return None
        return positions

    def _check_key(self, attrs: tuple, key) -> tuple:
        key = tuple(key)
        if len(attrs) != len(key):
            raise ValueError(
                f"probe key {key} does not match attribute list {attrs}"
            )
        return key

    def _call(self, index: int, method: str, args: tuple,
              idempotent: bool = True, keys: Iterable = ()):
        """One shard call under the bounded-retry/health policy.

        Mutations (*idempotent* False) are never replayed here: the shard
        backend itself replays the provably-unsent cases, and a blind
        coordinator replay could double-apply.
        """
        shard = self._shards[index]
        health = self.health[index]
        attempts = (self._retries + 1) if idempotent else 1
        delay = self._backoff
        for attempt in range(attempts):
            try:
                result = getattr(shard, method)(*args)
            except StoreUnavailableError as exc:
                health.failures += 1
                health.total_failures += 1
                health.last_error = str(exc)
                obs.inc("repro_shard_failures_total", shard=str(index))
                if attempt + 1 >= attempts:
                    raise ShardUnavailableError(
                        f"shard {index}/{len(self._shards)} "
                        f"({type(shard).__name__}) is unavailable after "
                        f"{attempt + 1} attempt(s) on {method}: {exc}",
                        shard=index,
                        keys=keys,
                    ) from exc
                health.retries += 1
                obs.inc("repro_shard_retries_total", shard=str(index))
                time.sleep(min(delay, self._max_backoff))
                delay *= 2
            else:
                health.failures = 0
                return result

    def _timed_call(self, index: int, method: str, args: tuple,
                    keys: Iterable = ()):
        with obs.time_block("repro_shard_probe_seconds", shard=str(index)):
            return self._call(index, method, args, keys=keys)

    # -- version / journal reconciliation ------------------------------------

    def _reconcile_locked(self) -> None:
        """Fold every shard's new deltas into the composite journal.

        Caller holds ``self._lock``.  A shard whose journal cannot vouch
        for its own movement gaps the composite journal too (consumers
        full-drop) and degrades order tracking: the unwitnessed mutations
        may include deletes at unknowable positions.
        """
        gapped = False
        for index, shard in enumerate(self._shards):
            current = shard.version
            seen = self._seen[index]
            if current == seen:
                continue
            deltas = shard.deltas_since(seen) if current > seen else None
            if deltas is None or len(deltas) != current - seen:
                gapped = True
                self._composite += current - seen
                self._seen[index] = current
                continue
            for delta in deltas:
                self._composite += 1
                self._journal.record(
                    self._composite, delta.op, delta.values
                )
                self._apply_order(index, delta.op, delta.values)
            self._seen[index] = current
        if gapped:
            self._journal.reset(self._composite)
            self._layout = None
            self._mirror = None

    def _apply_order(self, index: int, op: str, values: tuple) -> None:
        """Maintain layout + mirror for one witnessed shard mutation."""
        if self._layout is None:
            return
        values = tuple(values)
        if op == "insert":
            # The shard appended at its end; globally the row is the
            # newest (exact for coordinator mutations, reconciliation
            # order for foreign ones).
            self._mirror[index].append(values)
            self._layout.append(index)
            return
        # Every backend's delete removes the shard's *first* occurrence
        # equal to the row; the mirror knows which local position that
        # was, and the matching layout slot is that occurrence of the
        # shard index.
        local = None
        for position, candidate in enumerate(self._mirror[index]):
            if candidate == values:
                local = position
                break
        if local is None:
            # A delete the mirror cannot place: state diverged.
            self._layout = None
            self._mirror = None
            return
        del self._mirror[index][local]
        occurrence = -1
        for position, shard_index in enumerate(self._layout):
            if shard_index == index:
                occurrence += 1
                if occurrence == local:
                    del self._layout[position]
                    return

    @property
    def version(self) -> int:
        with self._lock:
            self._reconcile_locked()
            return self._composite

    def deltas_since(self, version: int):
        with self._lock:
            self._reconcile_locked()
            return self._journal.since(version, self._composite)

    def adopt_deltas(self, deltas, version: int) -> bool:
        if deltas is None:
            return False
        with self._lock:
            if self.shares_storage_across_processes:
                # The rows already moved shard-side (shared storage);
                # adopting means observing, as for RemoteStore.
                self.sync_version(version)
                return self._composite >= version
            self._reconcile_locked()
            deltas = tuple(deltas)
            if len(deltas) != version - self._composite:
                return False
            for offset, delta in enumerate(deltas):
                if delta.version != self._composite + 1 + offset:
                    return False
            for delta in deltas:
                row = Row(self._schema, delta.values)
                if delta.op == "insert":
                    self.insert(row)
                elif delta.op == "delete":
                    if not self.delete(row):
                        return False
                else:
                    return False
            return self._composite == version

    def sync_version(self, version: int) -> None:
        """Observe shard-side movement (process-pool resync hook).

        The composite cannot be split back into per-shard stamps, so the
        coordinator polls each shard that can be polled and reconciles;
        with shared-storage shards the fleet is the source of truth and
        the composite lands at (or past) the parent's stamp.
        """
        for index in range(len(self._shards)):
            poll = getattr(self._shards[index], "poll_version", None)
            if poll is not None:
                self._call(index, "poll_version", ())
        with self._lock:
            self._reconcile_locked()

    def reset_rows(self, rows: Iterable, version: int) -> None:
        """Replace the fleet's contents and land on the parent's stamp.

        The snapshot half of the process resync protocol: rows re-route
        by hash, and *version* splits deterministically across the shard
        stamps (``version // n`` each, remainder on the lowest indexes)
        so every worker lands on identical shard-version vectors.
        Requires shards with a ``reset_rows`` of their own (the in-memory
        backend; shared-storage fleets resync through the storage).
        """
        partitions = [[] for _ in self._shards]
        layout = []
        for row in rows:
            row = self._coerce(row)
            target = self._route_row(row)
            if target is None:
                raise TypeError(
                    f"row {tuple(row.values)!r} has an unstorable routing "
                    f"key over {self._route_attrs} and cannot be placed on "
                    f"any shard"
                )
            partitions[target].append(row)
            layout.append(target)
        with self._lock:
            count = len(self._shards)
            base, remainder = divmod(version, count)
            stamps = [
                base + (1 if index < remainder else 0)
                for index in range(count)
            ]
            for index, shard in enumerate(self._shards):
                shard.reset_rows(partitions[index], stamps[index])
            self._seen = stamps
            self._composite = version
            self._journal.reset(version)
            self._layout = layout
            self._mirror = [
                [tuple(row.values) for row in partition]
                for partition in partitions
            ]

    # -- reads ---------------------------------------------------------------

    def __len__(self) -> int:
        return sum(
            self._call(index, "__len__", ())
            for index in range(len(self._shards))
        )

    def __iter__(self) -> Iterator[Row]:
        return self.iter_from(0)

    def iter_from(self, start: int) -> Iterator[Row]:
        with self._lock:
            self._reconcile_locked()
            layout = None if self._layout is None else tuple(self._layout)
        start = max(start, 0)
        if layout is None:
            # Deterministic fallback: shards in index order, each in its
            # own insertion order.
            merged = itertools.chain.from_iterable(self._shards)
            return itertools.islice(merged, start, None)
        offsets = [0] * len(self._shards)
        for shard_index in layout[:start]:
            offsets[shard_index] += 1
        iterators = [
            shard.iter_from(offsets[index])
            for index, shard in enumerate(self._shards)
        ]

        def merge() -> Iterator[Row]:
            for shard_index in layout[start:]:
                yield next(iterators[shard_index])

        return merge()

    def ensure_index(self, attrs: Iterable) -> None:
        attrs = tuple(attrs)
        for index in range(len(self._shards)):
            self._call(index, "ensure_index", (attrs,))

    def active_values(self, attr: str) -> set:
        values: set = set()
        for index in range(len(self._shards)):
            values |= set(self._call(index, "active_values", (attr,)))
        return values

    def probe(self, attrs: Iterable, key) -> tuple:
        with obs.time_block(
            "repro_store_probe_seconds", backend="sharded", op="probe"
        ):
            return self._probe_impl(attrs, key)

    def probe_ref(self, attrs: Iterable, key) -> tuple:
        self.probe_ref_calls += 1
        return self._probe_impl(attrs, key)

    def _probe_impl(self, attrs: Iterable, key) -> tuple:
        attrs = tuple(attrs)
        key = self._check_key(attrs, key)
        positions = self._probe_route(attrs)
        if positions is not None:
            target = shard_of(
                (key[p] for p in positions), len(self._shards)
            )
            if target is None:
                return ()  # unstorable routing value matches nothing
            return tuple(self._timed_call(
                target, "probe", (attrs, key), keys=(key,)
            ))
        self.broadcast_probes += 1
        parts = self._scatter(
            [(index, "probe", (attrs, key), (key,))
             for index in range(len(self._shards))]
        )
        return tuple(itertools.chain.from_iterable(parts))

    def probe_many(self, attrs: Iterable, keys: Iterable) -> dict:
        with obs.time_block(
            "repro_store_probe_seconds", backend="sharded", op="many"
        ):
            return self._probe_many_impl(attrs, keys)

    def _probe_many_impl(self, attrs: Iterable, keys: Iterable) -> dict:
        attrs = tuple(attrs)
        positions = self._probe_route(attrs)
        out: dict = {}
        buckets: dict = {}       # shard index -> [routable keys]
        broadcast: list = []     # keys every shard must answer
        for key in keys:
            key = self._check_key(attrs, key)
            if key in out:
                continue
            out[key] = ()
            if positions is None:
                broadcast.append(key)
                continue
            target = shard_of((key[p] for p in positions),
                              len(self._shards))
            if target is None:
                continue  # unstorable key matches nothing; stays ()
            buckets.setdefault(target, []).append(key)
        if broadcast:
            self.broadcast_probes += 1
            for index in range(len(self._shards)):
                buckets.setdefault(index, [])
        tasks = [
            (index, "probe_many", (attrs, routed + broadcast),
             routed + broadcast)
            for index, routed in sorted(buckets.items())
        ]
        if not tasks:
            return out
        answers = dict(zip(
            [task[0] for task in tasks], self._scatter(tasks)
        ))
        for index, _, _, shard_keys in tasks:
            answer = answers[index]
            # Strict reconciliation, the truncation bugfix generalized:
            # a shard must echo exactly the key set it was asked.
            if set(answer) != set(shard_keys):
                unanswered = [k for k in shard_keys if k not in answer]
                raise StoreProtocolError(
                    f"shard {index}/{len(self._shards)} answered "
                    f"{len(answer)} keys for {len(set(shard_keys))} "
                    f"asked in probe_many ({len(unanswered)} unanswered"
                    + (f", e.g. {unanswered[0]!r}" if unanswered else
                       "; extra keys present")
                    + "); refusing to merge a mismatched scatter response"
                )
        for index, routed in sorted(buckets.items()):
            for key in routed:
                out[key] = answers[index][key]
        for key in broadcast:
            out[key] = tuple(itertools.chain.from_iterable(
                answers[index][key] for index in range(len(self._shards))
            ))
        return out

    def _scatter(self, tasks: list) -> list:
        """Run ``(index, method, args, keys)`` shard calls concurrently.

        Results come back in task order.  Every future is drained before
        any failure propagates (no call left running against a store the
        caller may immediately close); the first failing shard's error
        wins.
        """
        self.fanouts += 1
        obs.observe("repro_shard_fanout_width", float(len(tasks)))
        if len(tasks) == 1:
            index, method, args, keys = tasks[0]
            return [self._timed_call(index, method, args, keys=keys)]
        pool = self._executor()
        futures = [
            pool.submit(self._timed_call, index, method, args, keys=keys)
            for index, method, args, keys in tasks
        ]
        results, first_error = [], None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 — re-raised below
                results.append(None)
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    # -- mutation ------------------------------------------------------------

    def _coerce(self, row) -> Row:
        if isinstance(row, Row):
            return row
        return Row(self._schema, row)

    def insert(self, row) -> None:
        row = self._coerce(row)
        target = self._route_row(row)
        if target is None:
            raise TypeError(
                f"row {tuple(row.values)!r} has an unstorable routing key "
                f"over {self._route_attrs} and cannot be placed on any "
                f"shard"
            )
        with self._lock:
            self._reconcile_locked()
            self._call(target, "insert", (row,), idempotent=False)
            self._reconcile_locked()

    def delete(self, row) -> bool:
        row = self._coerce(row)
        target = self._route_row(row)
        if target is None:
            return False  # never stored, nothing to delete
        with self._lock:
            self._reconcile_locked()
            deleted = self._call(target, "delete", (row,),
                                 idempotent=False)
            self._reconcile_locked()
            return bool(deleted)

    # -- process-boundary protocol -------------------------------------------

    def detach(self) -> "ShardedStoreHandle":
        """Per-shard handles plus the routing/order state, picklable."""
        with self._lock:
            self._reconcile_locked()
            return ShardedStoreHandle(
                handles=tuple(
                    shard.detach() for shard in self._shards
                ),
                route_attrs=self._route_attrs,
                delta_window=self._journal.window,
                retries=self._retries,
                backoff=self._backoff,
                max_backoff=self._max_backoff,
                version=self._composite,
                layout=(
                    None if self._layout is None else tuple(self._layout)
                ),
            )

    def close(self) -> None:
        """Shut the scatter pool down and close every closeable shard."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for shard in self._shards:
            close = getattr(shard, "close", None)
            if close is not None:
                close()

    # -- introspection -------------------------------------------------------

    def shard_info(self) -> dict:
        """Fleet accounting: routing, fan-out counters, per-shard health."""
        return {
            "shards": len(self._shards),
            "route_attrs": list(self._route_attrs),
            "fanouts": self.fanouts,
            "broadcast_probes": self.broadcast_probes,
            "health": [h.as_dict() for h in self.health],
        }

    def connection_info(self) -> dict:
        """Per-shard transport accounting (the CLI report hook).

        Mirrors :meth:`RemoteStore.connection_info` one level up: the
        fleet summary plus each shard's own connection info when the
        backend keeps any.
        """
        info = self.shard_info()
        info["version"] = self._composite
        info["per_shard"] = [
            shard.connection_info()
            if hasattr(shard, "connection_info") else None
            for shard in self._shards
        ]
        return info

    def probe_cache_info(self) -> dict:
        """Summed per-shard LRU accounting (benchmark-layer shape)."""
        info = {"hits": 0, "misses": 0, "size": 0, "maxsize": 0,
                "evictions": 0, "purged": 0}
        for shard in self._shards:
            shard_info = getattr(shard, "probe_cache_info", None)
            if shard_info is None:
                continue
            for key, value in shard_info().items():
                if key in info:
                    info[key] += value
        info["probe_ref_calls"] = self.probe_ref_calls
        return info

    def __repr__(self) -> str:
        return (
            f"ShardedStore({self._schema.name!r}, "
            f"{len(self._shards)} shards by {self._route_attrs}, "
            f"version={self._composite})"
        )


@dataclass(frozen=True)
class ShardedStoreHandle:
    """Picklable reference to a :class:`ShardedStore` (process hops)."""

    handles: tuple
    route_attrs: tuple
    delta_window: int
    retries: int
    backoff: float
    max_backoff: float
    version: int
    layout: tuple

    def reattach(self) -> ShardedStore:
        """Rebuild the coordinator over reattached shards.

        Snapshot shards (memory) reattach at their detach-time stamps, so
        the composite lands exactly on ``version``; shared-storage shards
        (remote, sqlite-file) may already be newer — the store reconciles
        forward on first use, exactly like a reattached single store.
        The shipped layout restores exact global iteration order when the
        reattached shard contents still line up with it.
        """
        store = ShardedStore(
            tuple(handle.reattach() for handle in self.handles),
            route_attrs=self.route_attrs,
            track_order=self.layout is not None,
            delta_window=self.delta_window,
            retries=self.retries,
            backoff=self.backoff,
            max_backoff=self.max_backoff,
        )
        if self.layout is not None and store._layout is not None \
                and len(self.layout) == len(store._layout):
            store._layout = list(self.layout)
        return store


def reshard(
    source,
    destinations: Iterable,
    route_attrs: Iterable = None,
) -> ShardedStore:
    """Offline rebalance: rehash every row of *source* into *destinations*.

    *source* is a :class:`ShardedStore` (its global iteration order is
    preserved), any other :class:`MasterStore`, a
    :class:`~repro.engine.relation.Relation`, or a plain row iterable;
    *destinations* are **empty** stores over the same schema — split a
    fleet by handing more of them, merge it by handing fewer (one
    destination collapses the fleet back into a single store behind a
    trivial coordinator).  Returns the coordinator over the new fleet.

    Offline means what it says: run it while no client mutates the
    source; rows stream through this process once.
    """
    destinations = tuple(destinations)
    for destination in destinations:
        if len(destination) != 0:
            raise ValueError(
                "reshard destinations must be empty stores (got "
                f"{destination!r})"
            )
    if route_attrs is None and isinstance(source, ShardedStore):
        route_attrs = source.route_attrs
    coordinator = ShardedStore(destinations, route_attrs=route_attrs)
    if isinstance(source, MasterStore):
        rows: Iterable = iter(source)
    elif isinstance(source, Relation):
        rows = source.iter_rows()
    else:
        rows = source
    for row in rows:
        coordinator.insert(row)
    return coordinator
