"""CSV loading/saving for relations.

Master data usually arrives as files; these helpers move relations in and
out of CSV with the library's NULL convention (empty cells are NULL).
All values load as strings — matching keys across columns is string-based,
which is what the paper's schemas use; callers needing typed columns can
post-process.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema, STRING
from repro.engine.values import NULL


def relation_from_csv(path, name: str = None,
                      schema: RelationSchema = None) -> Relation:
    """Load a relation from a header-first CSV file.

    Empty cells become ``NULL``.  When *schema* is given the header must
    match its attributes exactly; otherwise a string schema is derived from
    the header.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty (no header row)") from None
        if schema is None:
            schema = RelationSchema(
                name or path.stem, [(h, STRING) for h in header]
            )
        elif tuple(header) != schema.attributes:
            raise ValueError(
                f"CSV header {header} does not match schema attributes "
                f"{list(schema.attributes)}"
            )
        relation = Relation(schema)
        for line_number, cells in enumerate(reader, start=2):
            if len(cells) != len(schema):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(schema)} cells, "
                    f"got {len(cells)}"
                )
            relation.insert(
                [NULL if cell == "" else cell for cell in cells]
            )
    return relation


def relation_to_csv(relation: Relation, path) -> None:
    """Write a relation as CSV (NULL renders as an empty cell)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.attributes)
        for row in relation:
            writer.writerow(
                ["" if value is NULL else value for value in row]
            )
