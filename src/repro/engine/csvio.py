"""CSV loading/saving for relations.

Master data usually arrives as files; these helpers move relations in and
out of CSV with the library's NULL convention (empty cells are NULL).
Without an explicit schema all values load as strings — matching keys
across columns is string-based, which is what the paper's schemas use.
With a typed schema, ``int``-domain cells are coerced back to ``int`` so a
CSV round trip composes with in-memory masters (whose generated rows carry
real ints) instead of silently breaking key matches on ``87 != "87"``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator

from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema, STRING
from repro.engine.tuples import Row
from repro.engine.values import NULL


def _cell_loaders(schema: RelationSchema) -> list:
    """Per-column converters: the NULL convention plus int-domain coercion."""

    def _string(cell: str):
        return NULL if cell == "" else cell

    def _int(cell: str):
        if cell == "":
            return NULL
        try:
            return int(cell)
        except ValueError:
            return cell  # defensively keep unparseable cells as-is

    return [
        _int if attribute.domain == INT else _string
        for attribute in schema.attribute_objects
    ]


class CsvRowStream:
    """Lazy, re-iterable row stream over a header-first CSV file.

    Bulk ingestion (the batch repair engine, chunked loaders) must not
    materialize a whole relation up front; this stream opens the file anew
    on every iteration and yields one :class:`Row` at a time with the same
    NULL convention as :func:`relation_from_csv`.  The schema is resolved
    eagerly from the header (or checked against a supplied one) so callers
    can build engines before touching the data.
    """

    def __init__(self, path, name: str = None, schema: RelationSchema = None):
        self.path = Path(path)
        with self.path.open(newline="", encoding="utf-8") as handle:
            header = self._header_from(csv.reader(handle))
        if schema is None:
            schema = RelationSchema(
                name or self.path.stem, [(h, STRING) for h in header]
            )
        self.schema = schema
        self._check_header(header)

    def _header_from(self, reader) -> list:
        try:
            return next(reader)
        except StopIteration:
            raise ValueError(f"{self.path} is empty (no header row)") from None

    def _check_header(self, header) -> None:
        if tuple(header) != self.schema.attributes:
            raise ValueError(
                f"CSV header {header} does not match schema attributes "
                f"{list(self.schema.attributes)}"
            )

    def __iter__(self) -> Iterator[Row]:
        schema = self.schema
        loaders = _cell_loaders(schema)
        with self.path.open(newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            # Re-validate the header: the file is reopened per iteration
            # and may have been rewritten since construction.
            self._check_header(self._header_from(reader))
            for line_number, cells in enumerate(reader, start=2):
                if len(cells) != len(schema):
                    raise ValueError(
                        f"{self.path}:{line_number}: expected {len(schema)} "
                        f"cells, got {len(cells)}"
                    )
                yield Row(
                    schema,
                    [load(cell) for load, cell in zip(loaders, cells)],
                )


def stream_rows_from_csv(path, name: str = None,
                         schema: RelationSchema = None) -> CsvRowStream:
    """A :class:`CsvRowStream` over *path* (constant-memory ingestion)."""
    return CsvRowStream(path, name=name, schema=schema)


def relation_from_csv(path, name: str = None,
                      schema: RelationSchema = None) -> Relation:
    """Load a relation from a header-first CSV file.

    Empty cells become ``NULL``.  When *schema* is given the header must
    match its attributes exactly; otherwise a string schema is derived from
    the header.  This is the materializing counterpart of
    :class:`CsvRowStream`, which it is built on.
    """
    stream = CsvRowStream(path, name=name, schema=schema)
    relation = Relation(stream.schema)
    for row in stream:
        relation.insert(row)
    return relation


def relation_to_csv(relation: Relation, path) -> None:
    """Write a relation as CSV (NULL renders as an empty cell)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.attributes)
        for row in relation:
            writer.writerow(
                ["" if value is NULL else value for value in row]
            )
