"""Hash indexes over relations.

Sect. 5.1 argues TransFix's complexity by noting "it takes constant time to
check whether there exists a master tuple that is applicable to t with an eR,
by using a hash table that stores tm[Xm] as a key".  :class:`HashIndex` is
exactly that hash table; :class:`repro.engine.relation.Relation` caches one
index per attribute list (ablation A2 measures what it buys).
"""

from __future__ import annotations

from typing import Iterable, Iterator


class HashIndex:
    """A multimap from key tuples ``row[attrs]`` to the rows carrying them."""

    __slots__ = ("attrs", "_buckets")

    def __init__(self, attrs: Iterable, rows: Iterable):
        self.attrs = tuple(attrs)
        buckets: dict = {}
        for row in rows:
            buckets.setdefault(row[self.attrs], []).append(row)
        self._buckets = buckets

    def get(self, key) -> list:
        """Rows whose ``row[attrs]`` equals *key* (a tuple of values).

        Returns a fresh list: callers may sort/filter/extend the result
        without corrupting the index (the bucket itself is never exposed).
        """
        bucket = self._buckets.get(tuple(key))
        return list(bucket) if bucket else []

    def get_ref(self, key) -> list:
        """No-copy variant of :meth:`get` for read-only hot paths.

        On a hit the returned list aliases the internal bucket and MUST NOT
        be mutated; the repair engines route every master probe through
        here.  Misses return a fresh empty list, so accidental mutation of
        a no-match result stays harmless.
        """
        bucket = self._buckets.get(tuple(key))
        return bucket if bucket is not None else []

    def contains(self, key) -> bool:
        return tuple(key) in self._buckets

    def keys(self) -> Iterator[tuple]:
        return iter(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)

    def add(self, row) -> None:
        """Insert *row* into the index (used by incremental relation loads)."""
        self._buckets.setdefault(row[self.attrs], []).append(row)

    def remove(self, row) -> bool:
        """Remove one occurrence of *row*; True iff something was removed.

        Empty buckets are dropped so ``contains`` stays accurate after
        master-store deletions.
        """
        key = row[self.attrs]
        bucket = self._buckets.get(key)
        if not bucket:
            return False
        try:
            bucket.remove(row)
        except ValueError:
            return False
        if not bucket:
            del self._buckets[key]
        return True

    def __repr__(self) -> str:
        return f"HashIndex(on={list(self.attrs)}, keys={len(self._buckets)})"
