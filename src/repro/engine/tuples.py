"""Immutable rows bound to a relation schema.

A :class:`Row` is the library's tuple representation (the paper's ``t``,
``tm``, ``s1``...).  Rows are immutable; the editing-rule semantics
``t -> t'`` produces *new* rows via :meth:`Row.with_values`, which keeps fix
sequences (Sect. 3) easy to reason about and cheap to trace.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.engine.schema import RelationSchema


class Row:
    """An immutable tuple over a :class:`RelationSchema`.

    Values are stored positionally; attribute access is by name.  ``t[A]``
    returns a single value; ``t[list_of_attrs]`` returns a tuple of values,
    mirroring the paper's ``t[X]`` notation for attribute lists.
    """

    __slots__ = ("schema", "_values", "_hash")

    def __init__(self, schema: RelationSchema, values):
        if isinstance(values, Mapping):
            try:
                values = tuple(values[a] for a in schema.attributes)
            except KeyError as exc:
                raise KeyError(
                    f"missing value for attribute {exc.args[0]!r} of schema "
                    f"{schema.name!r}"
                ) from None
        else:
            values = tuple(values)
            if len(values) != len(schema):
                raise ValueError(
                    f"schema {schema.name!r} has {len(schema)} attributes, "
                    f"got {len(values)} values"
                )
        self.schema = schema
        self._values = values
        self._hash = None

    # -- access ------------------------------------------------------------

    @property
    def values(self) -> tuple:
        return self._values

    def __getitem__(self, attrs):
        """``t[A]`` for one attribute; ``t[[A, B]]`` for a list (the paper's t[X])."""
        if isinstance(attrs, str):
            return self._values[self.schema.index_of(attrs)]
        return tuple(self._values[self.schema.index_of(a)] for a in attrs)

    def get(self, attr: str, default=None):
        if attr in self.schema:
            return self._values[self.schema.index_of(attr)]
        return default

    def to_dict(self) -> dict:
        return dict(zip(self.schema.attributes, self._values))

    def __iter__(self) -> Iterator:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- derivation ----------------------------------------------------------

    def with_values(self, updates: Mapping) -> "Row":
        """A new row with the attributes in *updates* replaced.

        This is the update primitive behind rule application:
        ``t' = t.with_values({B: tm[Bm]})`` realizes ``t[B] := tm[Bm]``.
        """
        positions = {self.schema.index_of(a): v for a, v in updates.items()}
        new_values = tuple(
            positions.get(i, v) for i, v in enumerate(self._values)
        )
        return Row(self.schema, new_values)

    def project(self, attrs: Iterable) -> "Row":
        """The sub-row over *attrs*, bound to the projected schema."""
        attrs = tuple(attrs)
        return Row(self.schema.project(attrs), self[attrs])

    def rebind(self, schema: RelationSchema) -> "Row":
        """The same values bound to an equally-long *schema* (for renames)."""
        if len(schema) != len(self._values):
            raise ValueError(
                f"cannot rebind {len(self._values)} values to schema "
                f"{schema.name!r} with {len(schema)} attributes"
            )
        return Row(schema, self._values)

    # -- comparison ----------------------------------------------------------

    def agrees_with(self, other: "Row", attrs: Iterable, other_attrs=None) -> bool:
        """True iff ``self[attrs] == other[other_attrs or attrs]``.

        Implements the paper's ``t[X] = tm[Xm]`` comparison between an input
        tuple and a master tuple over corresponding attribute lists.
        """
        attrs = tuple(attrs)
        other_attrs = attrs if other_attrs is None else tuple(other_attrs)
        return self[attrs] == other[other_attrs]

    def diff(self, other: "Row") -> tuple:
        """Attribute names on which the two rows (same schema) disagree."""
        if other.schema.attributes != self.schema.attributes:
            raise ValueError("diff requires rows over the same attributes")
        return tuple(
            a
            for a, v, w in zip(self.schema.attributes, self._values, other._values)
            if v != w
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return (
            self.schema.attributes == other.schema.attributes
            and self._values == other._values
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.schema.attributes, self._values))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{a}={v!r}" for a, v in zip(self.schema.attributes, self._values)
        )
        return f"Row({inner})"
