"""MasterStore: pluggable backends for master-data access.

Every certain-fix guarantee in the paper flows from probes against the
master relation ``Dm``: Sect. 5.1 argues TransFix's complexity by noting
"it takes constant time to check whether there exists a master tuple that
is applicable to t with an eR, by using a hash table that stores tm[Xm] as
a key".  :meth:`MasterStore.probe` is that hash-table lookup lifted to an
interface, so the repair layer no longer assumes masters are in-memory
:class:`~repro.engine.relation.Relation` objects:

* :class:`InMemoryStore` wraps the existing ``Relation`` + cached
  :class:`~repro.engine.index.HashIndex` machinery (the paper's setting);
* :class:`SqliteStore` serves out-of-core masters from indexed sqlite
  tables with an LRU probe cache in front, so ``Dm`` no longer has to fit
  in RAM.

Both expose a monotonic :attr:`MasterStore.version` counter bumped by every
``insert`` / ``delete`` / ``update`` of a master tuple.  The repair engines
stamp their shared caches (certain regions, Suggest⁺ BDD, validated-pattern
memos) with the version they were built against and rebuild lazily when it
moves — incremental master updates therefore invalidate exactly the state
the paper says is reusable only "as long as Σ and Dm are unchanged".

Mutation contract: route every master mutation through the store (or, for
:class:`InMemoryStore`, through the wrapped relation's ``insert`` /
``delete``, which feed the same counter).  ``update`` is delete-then-insert
in every backend, so a replaced tuple moves to iteration end identically
everywhere — keeping fix output bit-identical per backend.

Process boundaries: sqlite connections (and, for that matter, a worker's
private copy of an in-memory master) cannot cross a ``fork``/``spawn``
boundary, so stores that can be rehydrated in another process implement
:meth:`MasterStore.detach`, returning a picklable handle whose
``reattach()`` re-opens the backend there — carrying the parent's version
stamp so the worker's derived caches line up with the parent's version
stream.  The batch engine's process pool ships one handle per worker via
the pool initializer and re-syncs per chunk with
:meth:`InMemoryStore.reset_rows` / :meth:`SqliteStore.sync_version`.

Delta protocol: dropping *every* derived cache per mutation is correct
but costs 0.6–1.7s per master update at bench scale, so each local
backend keeps a bounded **delta journal** — the last
``DEFAULT_DELTA_WINDOW`` mutations as :class:`StoreDelta` records
``(version, op, values)``, where ``op`` is ``"insert"`` or ``"delete"``
and an ``update`` appears as its delete+insert pair over two version
bumps.  :meth:`MasterStore.deltas_since` returns the records strictly
after a consumer's stamp, or ``None`` whenever it cannot *prove* the
list is complete: the stamp fell out of the window, the journal saw a
version gap (bulk loads, ``replace_all``, mutations applied directly to
a wrapped relation, reattach stamps), or the backend keeps no journal at
all (the base class).  ``None`` means "fall back to today's full drop",
so every consumer remains correct unconditionally — the journal only
ever *narrows* invalidation, never skips it.  Window sizing trades
memory (one record per mutation) against how far a consumer may lag
before it pays a full rebuild; the default 256 covers any realistic
batch-engine lag (consumers resync on the next fix, i.e. within a
chunk).  :meth:`MasterStore.adopt_deltas` is the worker-side converse:
apply a parent's delta list instead of reloading a full snapshot,
returning False when the deltas cannot be applied cleanly (the caller
then falls back to the snapshot path).
"""

from __future__ import annotations

import itertools
import os
import sqlite3
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro import obs
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row
from repro.engine.values import NULL, UNKNOWN


class StoreError(RuntimeError):
    """A master-store *infrastructure* failure (not a data error).

    Data-shape problems (mismatched probe keys, foreign schemas) stay
    ``ValueError``/``TypeError``; :class:`StoreError` subclasses mean the
    backend itself is gone — a closed connection, a vanished database
    file, an unreachable master server.  Every instance carries remedy
    text, and the batch engine surfaces them in
    :class:`~repro.repair.batch.BatchReport` (``store_errors``) so a
    failed run names the infrastructure cause instead of a bare
    ``RuntimeError``.
    """


class StoreDetachedError(StoreError):
    """An operation hit a store whose backend connection was closed.

    Raised by backends after :meth:`MasterStore` consumers call ``close()``
    (or use a handle whose owner went away); the message names how to
    re-open.
    """


class StoreUnavailableError(StoreError):
    """The store's backing service or file cannot be reached.

    Raised by :meth:`SqliteStoreHandle.reattach` when the shared database
    file no longer exists, and by the remote backend when the master
    server is unreachable; the message names the missing resource and the
    remedy.
    """


class StoreProtocolError(StoreError):
    """A backend answered, but the answer violates the store protocol.

    Raised when a response cannot be reconciled with the request that
    produced it — e.g. a ``probe_many`` reply carrying fewer (or more)
    result lists than probe keys sent, or results keyed on keys that were
    never asked for.  A short reply used to be silently ``zip``-truncated
    and the missing keys resolved (and cached!) as "no match", corrupting
    fixes; the typed error makes the lying backend loud instead, and
    nothing from such a response may land in any cache.  The message
    names both counts and the offending endpoint/backend.
    """


#: Default journal window: how many of the latest mutations a backend
#: keeps as deltas before a lagging consumer must pay a full cache drop.
DEFAULT_DELTA_WINDOW = 256


@dataclass(frozen=True)
class StoreDelta:
    """One journaled master mutation.

    ``op`` is ``"insert"`` or ``"delete"`` (an ``update`` journals as a
    delete+insert pair over two consecutive versions); ``values`` is the
    full tuple of the affected row — the row *is* its own key, matching
    the store write API, and carries everything a consumer needs to
    project the delta onto any probe key or rule pattern.
    """

    version: int
    op: str
    values: tuple


class _DeltaJournal:
    """Bounded, gap-aware log of the latest mutations of one store.

    Records cover the contiguous version range ``(_floor, last]``.  Any
    version bump the journal did not witness (bulk loads, direct
    relation mutations, reattach stamps) shows up as a gap; the journal
    then discards its history so :meth:`since` degrades to ``None`` —
    the unconditional full-drop fallback — rather than ever returning an
    incomplete delta list.  Not thread-safe; callers hold the store
    lock, exactly as for the surrounding version bookkeeping.
    """

    __slots__ = ("window", "_records", "_floor")

    def __init__(self, window: int = DEFAULT_DELTA_WINDOW):
        if window < 1:
            raise ValueError(f"delta_window must be >= 1, got {window}")
        self.window = window
        self._records: deque = deque()
        self._floor = 0

    def record(self, version: int, op: str, values: tuple) -> None:
        """Append one mutation; a non-consecutive *version* clears history."""
        expected = (
            self._records[-1].version if self._records else self._floor
        ) + 1
        if version != expected:
            self._records.clear()
            self._floor = version - 1
        self._records.append(StoreDelta(version, op, tuple(values)))
        while len(self._records) > self.window:
            dropped = self._records.popleft()
            self._floor = dropped.version

    def reset(self, version: int) -> None:
        """Drop history and restart the contiguous range at *version*.

        Called after any bulk mutation (loads, ``replace_all``,
        full-path resyncs): consumers stamped before *version* fall back
        to a full drop, consumers stamped at it see an empty delta list.
        """
        self._records.clear()
        self._floor = version

    def since(self, start: int, current: int):
        """Deltas strictly after *start* up to *current*, or ``None``.

        ``None`` whenever completeness cannot be proven: *start* is out
        of the window, the journal's head does not reach *current* (a
        bump bypassed the journal), or *start* is from the future.
        """
        if start > current:
            return None
        if start == current:
            return ()
        if not self._records:
            return None
        if self._records[-1].version != current:
            return None
        if start < self._floor:
            return None
        return tuple(r for r in self._records if r.version > start)


class MasterStore(ABC):
    """Abstract master-data backend.

    The read API mirrors how the repair layer touches ``Dm``: keyed probes
    (:meth:`probe`, :meth:`contains_key`), full iteration (region search and
    witness sweeps), size, and per-column active values.  The write API
    (:meth:`insert` / :meth:`delete` / :meth:`update`) bumps
    :attr:`version`.  A few ``Relation``-compatible aliases (``lookup``,
    ``scan_lookup``, ``rows``) keep older call sites and external code
    working unchanged when handed a store.
    """

    # -- read API ------------------------------------------------------------

    @property
    @abstractmethod
    def schema(self) -> RelationSchema:
        """The master schema ``Rm``."""

    @property
    @abstractmethod
    def version(self) -> int:
        """Monotonic counter; moves iff the master data changed."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of master tuples."""

    @abstractmethod
    def __iter__(self) -> Iterator[Row]:
        """Iterate master tuples in insertion order."""

    def iter_from(self, start: int) -> Iterator[Row]:
        """Insertion-order iteration beginning at position *start*.

        The paging primitive behind the remote ``/rows`` endpoint: a
        server answering windowed row requests calls this per window, so
        backends that can *seek* (sqlite, via one ``OFFSET`` query)
        override it to keep paged iteration O(n) overall instead of
        re-iterating and discarding ``start`` rows per window.  The
        default iterates and discards.
        """
        return itertools.islice(iter(self), start, None)

    @abstractmethod
    def probe(self, attrs: Iterable, key) -> tuple:
        """Master tuples ``tm`` with ``tm[attrs] == key`` (Sect. 5.1).

        The hot path of every repair probe.  Returns an immutable tuple:
        callers can never corrupt an internal bucket or cache entry by
        mutating the result (backends used to hand out aliases of their
        cache lines under a doc-only "read-only" contract; now the type
        system enforces it).  Hot paths that want to skip even the
        cache-miss copy can use :meth:`probe_ref`.
        """

    def probe_ref(self, attrs: Iterable, key):
        """No-copy variant of :meth:`probe` for read-only hot paths.

        Mirrors the ``HashIndex.get`` / ``get_ref`` split: the result may
        alias internal state (a hash bucket, a cache entry) and MUST NOT
        be mutated.  The default simply forwards to :meth:`probe` (already
        alias-free); backends override when they have a cheaper aliasing
        path.
        """
        return self.probe(attrs, key)

    def probe_many(self, attrs: Iterable, keys: Iterable) -> dict:
        """Batched probe: ``{tuple(key): self.probe(attrs, key)}`` per key.

        Backends with per-probe round-trip cost (sqlite, and any future
        remote store) override this with a single batched plan; the
        default loops over :meth:`probe`.  Duplicate keys collapse onto
        one entry.  The batch engine's process-pool chunk warm-up calls
        this with every rule key of a chunk to amortize round-trips.
        """
        attrs = tuple(attrs)
        out: dict = {}
        for key in keys:
            key = tuple(key)
            if len(key) != len(attrs):
                raise ValueError(
                    f"probe key {key} does not match attribute list {attrs}"
                )
            if key not in out:
                out[key] = self.probe(attrs, key)
        return out

    @abstractmethod
    def ensure_index(self, attrs: Iterable) -> None:
        """Force the probe index over *attrs* so later probes are O(1)."""

    @abstractmethod
    def active_values(self, attr: str) -> set:
        """The set of values appearing in master column *attr*."""

    def contains_key(self, attrs: Iterable, key) -> bool:
        """Whether any master tuple matches ``tm[attrs] == key``."""
        return bool(self.probe_ref(attrs, key))

    def scan_probe(self, attrs: Iterable, key) -> tuple:
        """Index-free probe (the ablation A2 baseline)."""
        attrs = tuple(attrs)
        key = tuple(key)
        return tuple(tm for tm in self if tm[attrs] == key)

    # -- process-boundary protocol -------------------------------------------

    #: Whether worker processes reattached from a handle observe this
    #: store's mutations through shared storage (a database file).  False
    #: means a resync must ship the rows themselves (see the batch
    #: engine's per-chunk snapshot protocol).
    shares_storage_across_processes = False

    #: Whether :meth:`probe_many` is cheaper than a probe loop here (drives
    #: the batch engine's chunk warm-up; pure-RAM backends gain nothing).
    supports_batched_probes = False

    def detach(self):
        """A picklable handle that rehydrates this store in another process.

        Returns an object with a ``reattach() -> MasterStore`` method and a
        ``version`` attribute equal to this store's version at detach time
        (the reattached store starts at that stamp, so version-stamped
        caches built against it compare correctly with the parent's
        version stream).  Backends that cannot cross a process boundary
        raise ``ValueError`` with a remedy.
        """
        raise ValueError(
            f"{type(self).__name__} does not support crossing a "
            f"fork/spawn boundary (no detach() implementation)"
        )

    # -- delta protocol ------------------------------------------------------

    def deltas_since(self, version: int):
        """Mutations strictly after *version*, or ``None`` if unknowable.

        Returns a tuple of :class:`StoreDelta` records covering every
        version bump in ``(version, self.version]`` — possibly empty
        when the stamps already match — or ``None`` when the backend
        cannot prove the list is complete (stamp out of the journal
        window, version bumps that bypassed the journal, or no journal
        at all).  ``None`` instructs consumers to fall back to a full
        cache drop, so correctness never depends on the journal.
        """
        return None

    def adopt_deltas(self, deltas, version: int) -> bool:
        """Apply a parent's delta list and land on its *version* stamp.

        The incremental counterpart of the snapshot resync protocol:
        returns True iff the store's contents now equal the parent's at
        *version*.  False (the default) means the deltas could not be
        applied cleanly here; the caller must fall back to the full
        resync path (``reset_rows`` / ``sync_version``).
        """
        return False

    # -- write API -----------------------------------------------------------

    @abstractmethod
    def insert(self, row) -> None:
        """Append a master tuple; bumps :attr:`version`."""

    @abstractmethod
    def delete(self, row) -> bool:
        """Remove one master tuple equal to *row*; True iff removed.

        A successful delete bumps :attr:`version`; a miss does not.
        """

    def update(self, old, new) -> bool:
        """Replace *old* with *new* (delete-then-insert in every backend).

        Returns False (and mutates nothing) when *old* is absent.  The
        replacement lands at iteration end in all backends, which keeps
        backend outputs bit-identical after updates.
        """
        if not self.delete(old):
            return False
        self.insert(new)
        return True

    # -- Relation-compatible aliases -----------------------------------------

    def lookup(self, attrs: Iterable, key) -> tuple:
        """Alias of :meth:`probe` (``Relation``-compatible spelling)."""
        return self.probe(attrs, key)

    def scan_lookup(self, attrs: Iterable, key) -> tuple:
        """Alias of :meth:`scan_probe` (``Relation``-compatible spelling)."""
        return self.scan_probe(attrs, key)

    @property
    def rows(self) -> list:
        """A materialized copy of all master tuples (external callers only)."""
        return list(self)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.schema.name!r}, {len(self)} rows, "
            f"version={self.version})"
        )


class InMemoryStore(MasterStore):
    """The paper's setting: ``Dm`` in RAM behind cached hash indexes.

    A thin adapter over :class:`~repro.engine.relation.Relation`; probes
    reuse the relation's per-attribute-list :class:`HashIndex` cache, and
    ``version`` is the relation's mutation counter, so mutations made
    directly on the wrapped relation are noticed too.
    """

    def __init__(
        self, relation: Relation, delta_window: int = DEFAULT_DELTA_WINDOW
    ):
        self._relation = relation
        self._journal = _DeltaJournal(delta_window)
        self._journal.reset(relation.mutation_count)
        self.probe_ref_calls = 0

    @classmethod
    def from_rows(
        cls,
        schema: RelationSchema,
        rows: Iterable = (),
        delta_window: int = DEFAULT_DELTA_WINDOW,
    ) -> "InMemoryStore":
        return cls(Relation(schema, rows), delta_window=delta_window)

    @property
    def relation(self) -> Relation:
        """The wrapped relation (escape hatch for algebra operations)."""
        return self._relation

    @property
    def schema(self) -> RelationSchema:
        return self._relation.schema

    @property
    def version(self) -> int:
        return self._relation.mutation_count

    def __len__(self) -> int:
        return len(self._relation)

    def __iter__(self) -> Iterator[Row]:
        return self._relation.iter_rows()

    def iter_from(self, start: int) -> Iterator[Row]:
        # O(1) seek into the backing list (the default would re-iterate
        # and discard `start` rows per /rows window when this store backs
        # a MasterServer, turning paged iteration quadratic).
        relation = self._relation
        index = max(start, 0)
        while index < len(relation):
            yield relation.row_at(index)
            index += 1

    def probe(self, attrs: Iterable, key) -> tuple:
        # The relation's lookup aliases the live index bucket (it shrinks
        # under deletes and grows under inserts); the public probe hands
        # out an immutable snapshot instead.  Only this copying entry point
        # carries the probe span: the chase/TransFix hot loops go through
        # probe_ref, which must stay bare.
        with obs.time_block(
            "repro_store_probe_seconds", backend="memory", op="probe"
        ):
            return tuple(self.probe_ref(attrs, key))

    def probe_ref(self, attrs: Iterable, key):
        # A plain-int counter is the only telemetry this path can afford
        # (an obs span per call would dominate the chase hot loop).
        self.probe_ref_calls += 1
        attrs = tuple(attrs)
        key = tuple(key)
        if len(attrs) != len(key):
            raise ValueError(
                f"probe key {key} does not match attribute list {attrs}"
            )
        return self._relation.lookup(attrs, key)

    def ensure_index(self, attrs: Iterable) -> None:
        self._relation.index_on(attrs)

    def active_values(self, attr: str) -> set:
        return self._relation.active_values(attr)

    def scan_probe(self, attrs: Iterable, key) -> tuple:
        return tuple(self._relation.scan_lookup(attrs, key))

    def insert(self, row) -> None:
        self._relation.insert(row)
        # The journal's gap detection handles mutations made directly on
        # the wrapped relation (they bump the counter without a record):
        # the next deltas_since over such a gap degrades to None.
        row = self._relation.row_at(len(self._relation) - 1)
        self._journal.record(
            self._relation.mutation_count, "insert", tuple(row.values)
        )

    def delete(self, row) -> bool:
        values = tuple(
            row.values if isinstance(row, Row) else Row(self.schema, row).values
        )
        if not self._relation.delete(row):
            return False
        self._journal.record(
            self._relation.mutation_count, "delete", values
        )
        return True

    # -- delta protocol ------------------------------------------------------

    def deltas_since(self, version: int):
        return self._journal.since(version, self._relation.mutation_count)

    def adopt_deltas(self, deltas, version: int) -> bool:
        """Replay a parent's delta list onto this snapshot copy.

        Validates the list is exactly the contiguous range from this
        store's stamp to *version* before touching anything; a delete
        that misses mid-replay returns False (contents diverged — the
        caller's snapshot fallback replaces everything, so a partial
        replay is harmless).
        """
        if deltas is None:
            return False
        current = self._relation.mutation_count
        deltas = tuple(deltas)
        if len(deltas) != version - current:
            return False
        for offset, delta in enumerate(deltas):
            if delta.version != current + 1 + offset:
                return False
        for delta in deltas:
            row = Row(self.schema, delta.values)
            if delta.op == "insert":
                self.insert(row)
            elif delta.op == "delete":
                if not self.delete(row):
                    return False
            else:
                return False
        return self._relation.mutation_count == version

    # -- process-boundary protocol -------------------------------------------

    def detach(self) -> "MemoryStoreHandle":
        """Snapshot (schema, rows, version) into a picklable handle.

        The snapshot is by value: a worker's reattached copy does NOT see
        later parent mutations — after a version move the batch engine
        ships a fresh snapshot with every dispatched chunk until all
        workers have acknowledged the new stamp (each worker applies it
        at most once; see ``BatchRepairEngine._task_for``).
        """
        return MemoryStoreHandle(
            schema=self.schema,
            rows=tuple(self._relation.iter_rows()),
            version=self.version,
        )

    def reset_rows(self, rows: Iterable, version: int) -> None:
        """Replace the master contents and jump to the parent's *version*.

        The worker-side half of the snapshot resync protocol: indexes and
        the store wrapper survive (rebuilt lazily), and the version stamp
        is taken verbatim from the parent so every derived cache stamped
        with an older version invalidates on the next compare.

        The journal restarts at *version*: the replacement is a bulk
        mutation with no per-row deltas, so consumers stamped earlier
        must full-drop, while deltas recorded after this point replay
        normally (the reattach + adopt_deltas path relies on that).
        """
        self._relation.replace_all(rows, mutation_count=version)
        self._journal.reset(version)


class _ProbeLRU:
    """Bounded LRU of ``(attrs, key) -> immutable probe tuple`` lines.

    Shared by every backend fronting a slow medium (sqlite, HTTP): one
    implementation of the hit/miss accounting, recency bumping and
    eviction, so cache fixes cannot silently diverge per backend.  Not
    itself thread-safe — callers hold their own lock around ``get``/
    ``put``, exactly as they must around the surrounding bookkeeping.
    """

    __slots__ = ("_data", "maxsize", "hits", "misses", "evictions", "purged")

    def __init__(self, maxsize: int):
        if maxsize < 0:
            raise ValueError(f"probe_cache_size must be >= 0, got {maxsize}")
        self._data: OrderedDict = OrderedDict()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0  # capacity evictions (LRU tail dropped)
        self.purged = 0     # delta-targeted removals (purge_row)

    def get(self, key):
        """The cached line (bumped most-recent) or None; counts hit/miss."""
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return entry

    def put(self, key, value) -> None:
        if not self.maxsize:
            return
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def pop(self, key) -> None:
        """Drop one line without touching the hit/miss accounting."""
        if self._data.pop(key, None) is not None:
            self.purged += 1

    def purge_row(self, schema, values) -> int:
        """Evict exactly the lines a mutated master row can affect.

        A probe ``(attrs, key)`` changes iff the row projects onto the
        key: ``row[attrs] == key``.  Lines keyed on attribute lists the
        row cannot project onto (unstorable values never enter the
        cache, so projection always succeeds) stay valid — this is the
        per-key purge that replaces a full ``clear()`` on the delta
        path.  Returns the number of lines dropped.
        """
        positions: dict = {}
        doomed = []
        for attrs, key in self._data:
            pos = positions.get(attrs)
            if pos is None:
                pos = positions[attrs] = [schema.index_of(a) for a in attrs]
            if tuple(values[p] for p in pos) == key:
                doomed.append((attrs, key))
        for line in doomed:
            del self._data[line]
        self.purged += len(doomed)
        return len(doomed)

    def __len__(self) -> int:
        return len(self._data)

    def info(self) -> dict:
        """Accounting snapshot (the benchmark layer's shape)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "maxsize": self.maxsize,
            "evictions": self.evictions,
            "purged": self.purged,
        }


# -- sqlite value codec --------------------------------------------------------
#
# The codec must reproduce Python's equality semantics, because that is what
# the in-memory backend's dict-keyed hash buckets match by:
#
# * cross-type string/number matches must FAIL (the csv loaders deliberately
#   coerce int-domain cells so 87 != "87") — hence tagged TEXT cells rather
#   than sqlite's own affinity rules;
# * cross-type numeric matches must SUCCEED (2 == 2.0 == True in every dict
#   lookup) — hence bools and integral floats collapse onto the integer
#   encoding.  Decoding such a value yields the int, which is ``==`` (and
#   hashes identically) to whatever numeric spelling was stored, keeping
#   probe/chase/suggest behaviour bit-identical across backends.

_TAG_NULL = "\x00N"
_TAG_UNKNOWN = "\x00U"


def _encode(value) -> str:
    if value is NULL:
        return _TAG_NULL
    if value is UNKNOWN:
        return _TAG_UNKNOWN
    if isinstance(value, (bool, int)):
        return f"i{int(value)}"
    if isinstance(value, float):
        if value.is_integer():
            return f"i{int(value)}"
        return f"f{value!r}"
    if isinstance(value, str):
        return "s" + value
    raise TypeError(
        f"SqliteStore cannot store a {type(value).__name__} value "
        f"({value!r}); supported: str, int, float, bool, NULL, UNKNOWN"
    )


def _decode(cell: str):
    if cell == _TAG_NULL:
        return NULL
    if cell == _TAG_UNKNOWN:
        return UNKNOWN
    tag, body = cell[0], cell[1:]
    if tag == "s":
        return body
    if tag == "i":
        return int(body)
    if tag == "f":
        return float(body)
    raise ValueError(f"corrupt SqliteStore cell {cell!r}")


class SqliteStore(MasterStore):
    """Out-of-core master data behind indexed sqlite tables.

    Rows live in one table (``rid`` preserving insertion order, one tagged
    TEXT column per attribute).  :meth:`probe` creates the matching sqlite
    index on first use and fronts it with a bounded LRU cache keyed on
    ``(attrs, key)``; every mutation bumps :attr:`version` and drops the
    probe / active-value caches, so a stale hit can never survive a master
    update.  The connection is shared across threads behind a lock (the
    batch engine's thread fan-out probes concurrently).
    """

    _ITER_BATCH = 1024

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable = (),
        path=None,
        probe_cache_size: int = 4096,
        fresh: bool = False,
        delta_window: int = DEFAULT_DELTA_WINDOW,
    ):
        """Open (or create) the store and append *rows*.

        An existing database at *path* keeps its rows — reopening a
        previously-loaded master is the out-of-core workflow — so loaders
        that treat their row source as the full truth (e.g. the CLI
        re-streaming a master CSV into the same file) must pass
        ``fresh=True`` to clear the table first instead of duplicating it.
        """
        self._probe_cache = _ProbeLRU(probe_cache_size)
        self._schema = schema
        self._path = None if path is None else str(path)
        self._columns = [f"c{i}" for i in range(len(schema))]
        self._closed = False
        self._lock = threading.RLock()
        # Autocommit: every mutation is durable immediately (a closed
        # on-disk store reopens with its rows), matching the one-statement
        # granularity of the write API.
        self._db = sqlite3.connect(
            ":memory:" if path is None else str(path),
            check_same_thread=False,
            isolation_level=None,
        )
        column_defs = ", ".join(f"{c} TEXT NOT NULL" for c in self._columns)
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS master "
            f"(rid INTEGER PRIMARY KEY AUTOINCREMENT, {column_defs})"
        )
        if fresh:
            self._db.execute("DELETE FROM master")
        self._count = self._db.execute(
            "SELECT COUNT(*) FROM master"
        ).fetchone()[0]
        self._version = 0
        self._indexed: set = set()
        self._probe_plans: dict = {}  # attrs tuple -> prepared SELECT
        self._active_cache: dict = {}
        self._journal = _DeltaJournal(delta_window)
        self.probe_ref_calls = 0
        self._insert_many(rows)

    @classmethod
    def from_relation(cls, relation: Relation, path=None, **kwargs) -> "SqliteStore":
        """Load an in-memory relation into a (possibly on-disk) sqlite store."""
        return cls(relation.schema, relation.iter_rows(), path=path, **kwargs)

    # -- introspection -------------------------------------------------------

    def _guard(self) -> None:
        """Typed failure for use-after-close (sqlite's own is a bare
        ``ProgrammingError`` with no remedy)."""
        if self._closed:
            raise StoreDetachedError(
                f"this SqliteStore ({self._path or ':memory:'}) has been "
                f"closed; re-open it with SqliteStore(schema, path=...) "
                f"or reattach() a handle detached from a live store"
            )

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def version(self) -> int:
        return self._version

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Row]:
        # Window over rid rather than holding one cursor open: robust to
        # interleaved mutations and never materializes the whole table.
        self._guard()
        return self._iter_after_rid(-1)

    def iter_from(self, start: int) -> Iterator[Row]:
        """Seek with one ``OFFSET`` query, then window by rid as usual —
        the remote ``/rows`` pager stays O(n) over a full iteration."""
        self._guard()
        if start <= 0:
            return self._iter_after_rid(-1)
        with self._lock:
            record = self._db.execute(
                "SELECT rid FROM master ORDER BY rid LIMIT 1 OFFSET ?",
                (start,),
            ).fetchone()
        if record is None:
            return iter(())
        return self._iter_after_rid(record[0] - 1)

    def _iter_after_rid(self, last: int) -> Iterator[Row]:
        schema = self._schema
        select = f"SELECT rid, {', '.join(self._columns)} FROM master"
        while True:
            with self._lock:
                batch = self._db.execute(
                    f"{select} WHERE rid > ? ORDER BY rid LIMIT ?",
                    (last, self._ITER_BATCH),
                ).fetchall()
            if not batch:
                return
            last = batch[-1][0]
            for record in batch:
                yield Row(schema, [_decode(cell) for cell in record[1:]])

    # -- probes --------------------------------------------------------------

    def _column_of(self, attr: str) -> str:
        return self._columns[self._schema.index_of(attr)]

    def ensure_index(self, attrs: Iterable) -> None:
        # Deduplicate (rule match lists may repeat one master column); the
        # WHERE clause still constrains every position of the probe key.
        self._guard()
        columns = list(dict.fromkeys(self._column_of(a) for a in attrs))
        name = "idx_" + "_".join(columns)
        if name in self._indexed:
            return
        with self._lock:
            self._db.execute(
                f"CREATE INDEX IF NOT EXISTS {name} ON master "
                f"({', '.join(columns)})"
            )
            self._indexed.add(name)

    def probe(self, attrs: Iterable, key) -> tuple:
        # The span covers cache hits and misses alike: the hit/miss mix is
        # exactly what the latency distribution is supposed to show.
        with obs.time_block(
            "repro_store_probe_seconds", backend="sqlite", op="probe"
        ):
            return self._probe_impl(attrs, key)

    def probe_ref(self, attrs: Iterable, key):
        # Same result as probe (already alias-free); the override exists
        # only to count the hot path, which cannot afford an obs span.
        self.probe_ref_calls += 1
        return self.probe(attrs, key)

    def _probe_impl(self, attrs: Iterable, key) -> tuple:
        self._guard()
        attrs = tuple(attrs)
        key = tuple(key)
        if len(attrs) != len(key):
            raise ValueError(
                f"probe key {key} does not match attribute list {attrs}"
            )
        cache_key = (attrs, key)
        with self._lock:
            cached = self._probe_cache.get(cache_key)
            if cached is not None:
                # Cache lines are tuples, so handing out the cached object
                # itself is safe: no caller can corrupt the cache by
                # mutating a probe result (they used to be shared lists).
                return cached
        select = self._probe_plans.get(attrs)
        if select is None:
            self.ensure_index(attrs)
            where = " AND ".join(f"{self._column_of(a)} = ?" for a in attrs)
            select = (
                f"SELECT {', '.join(self._columns)} FROM master "
                f"WHERE {where} ORDER BY rid"
            )
            self._probe_plans[attrs] = select
        try:
            encoded = [_encode(v) for v in key]
        except TypeError:
            return ()  # unstorable value (e.g. FreshValue) matches nothing
        with self._lock:
            records = self._db.execute(select, encoded).fetchall()
            result = tuple(
                Row(self._schema, [_decode(cell) for cell in record])
                for record in records
            )
            self._probe_cache.put(cache_key, result)
        return result

    #: How many probe keys one batched ``IN``-clause statement may carry;
    #: bounded so ``len(attrs) * _PROBE_BATCH`` stays far below sqlite's
    #: host-parameter limit (999 in older builds).
    _PROBE_BATCH = 200

    def probe_many(self, attrs: Iterable, keys: Iterable) -> dict:
        """Batched probe with one ``IN``-clause round-trip per key block.

        Semantically identical to a :meth:`probe` loop (results land in the
        LRU cache too, which is what the batch engine's chunk warm-up is
        after), but misses are fetched with
        ``WHERE (c1, ..., ck) IN (VALUES ...)`` over blocks of keys instead
        of one SELECT per key.
        """
        with obs.time_block(
            "repro_store_probe_seconds", backend="sqlite", op="many"
        ):
            return self._probe_many_impl(attrs, keys)

    def _probe_many_impl(self, attrs: Iterable, keys: Iterable) -> dict:
        self._guard()
        attrs = tuple(attrs)
        out: dict = {}
        pending: list = []  # (original key, encoded key) cache misses
        with self._lock:
            for key in keys:
                key = tuple(key)
                if len(attrs) != len(key):
                    raise ValueError(
                        f"probe key {key} does not match attribute list "
                        f"{attrs}"
                    )
                if key in out:
                    continue
                cached = self._probe_cache.get((attrs, key))
                if cached is not None:
                    out[key] = cached
                    continue
                try:
                    out[key] = ()  # filled below when rows come back
                    pending.append((key, tuple(_encode(v) for v in key)))
                except TypeError:
                    pass  # unstorable key matches nothing; stays ()
        if not pending:
            return out
        self.ensure_index(attrs)
        columns = [self._column_of(a) for a in attrs]
        key_expr = (
            f"({', '.join(columns)})" if len(columns) > 1 else columns[0]
        )
        placeholder = (
            "(" + ", ".join("?" for _ in columns) + ")"
            if len(columns) > 1
            else "?"
        )
        # Group returned records by their encoded key positions; a key that
        # repeats one column with two different values can never come back
        # (the IN row-value constrains every position), so positional
        # grouping is exact even for repeated attrs.
        positions = [self._schema.index_of(a) for a in attrs]
        with self._lock:
            for start in range(0, len(pending), self._PROBE_BATCH):
                block = pending[start:start + self._PROBE_BATCH]
                select = (
                    f"SELECT {', '.join(self._columns)} FROM master "
                    f"WHERE {key_expr} IN "
                    f"({', '.join(placeholder for _ in block)}) "
                    f"ORDER BY rid"
                )
                params = [cell for _, encoded in block for cell in encoded]
                grouped: dict = {}  # encoded key -> list of Rows
                for record in self._db.execute(select, params).fetchall():
                    enc = tuple(record[p] for p in positions)
                    grouped.setdefault(enc, []).append(
                        Row(self._schema, [_decode(c) for c in record])
                    )
                for key, encoded in block:
                    rows = tuple(grouped.get(encoded, ()))
                    out[key] = rows
                    self._probe_cache.put((attrs, key), rows)
        return out

    def active_values(self, attr: str) -> set:
        self._guard()
        with self._lock:
            cached = self._active_cache.get(attr)
            if cached is None:
                records = self._db.execute(
                    f"SELECT DISTINCT {self._column_of(attr)} FROM master"
                ).fetchall()
                cached = {_decode(record[0]) for record in records}
                self._active_cache[attr] = cached
        # Copy: the in-memory backend hands out a fresh set per call, and a
        # caller mutating the cached set must not poison later calls.
        return set(cached)

    def probe_cache_info(self) -> dict:
        """LRU accounting for the benchmark layer."""
        with self._lock:
            info = self._probe_cache.info()
            info["probe_ref_calls"] = self.probe_ref_calls
            return info

    # -- process-boundary protocol -------------------------------------------

    supports_batched_probes = True

    @property
    def shares_storage_across_processes(self) -> bool:
        return self._path is not None

    def detach(self) -> "SqliteStoreHandle":
        """A picklable handle re-opening this database in another process.

        Only file-backed stores can cross the boundary: a private
        ``:memory:`` database exists in exactly one connection, so there is
        nothing a worker could re-open.
        """
        self._guard()
        if self._path is None:
            raise ValueError(
                "an in-memory SqliteStore cannot cross a fork/spawn "
                "boundary: give the store a database file (path=... / "
                "--sqlite-path) so workers can re-open it"
            )
        return SqliteStoreHandle(
            schema=self._schema,
            path=self._path,
            probe_cache_size=self._probe_cache.maxsize,
            version=self._version,
        )

    def sync_version(self, version: int, deltas=None) -> None:
        """Adopt the parent's *version* after it mutated the shared file.

        The worker-side half of the resync protocol for file-backed
        stores: the data itself arrives through the database file (every
        parent mutation is autocommitted), so the worker only needs to
        refresh its connection-local caches.  When the parent also ships
        the *deltas* covering the version gap, the refresh is surgical —
        per-row probe-cache purges and active-set patches instead of a
        wholesale drop + recount; otherwise (or when the delta list does
        not bridge the gap) the full drop runs as before.  A no-op when
        the stamp already matches.
        """
        self._guard()
        with self._lock:
            if version == self._version:
                return
            if deltas is not None and self._sync_deltas(deltas, version):
                return
            self._version = version
            self._probe_cache.clear()
            self._active_cache.clear()
            self._journal.reset(version)
            self._count = self._db.execute(
                "SELECT COUNT(*) FROM master"
            ).fetchone()[0]

    def _sync_deltas(self, deltas, version: int) -> bool:
        """Apply a parent's delta list under the lock; False on any gap."""
        pending = [d for d in deltas if d.version > self._version]
        if len(pending) != version - self._version:
            return False
        for offset, delta in enumerate(pending):
            if delta.version != self._version + 1 + offset:
                return False
            if delta.op not in ("insert", "delete"):
                return False
        for delta in pending:
            self._count += 1 if delta.op == "insert" else -1
            self._bump_delta(delta.op, delta.values)
        return True

    # -- delta protocol ------------------------------------------------------

    def deltas_since(self, version: int):
        with self._lock:
            return self._journal.since(version, self._version)

    def adopt_deltas(self, deltas, version: int) -> bool:
        """Resync to the parent's *version*, surgically when possible.

        Always succeeds for this backend: the row data lives in the
        shared database file, so even an unusable delta list just means
        the full-drop path of :meth:`sync_version` runs instead.
        """
        self.sync_version(version, deltas)
        return True

    # -- mutation ------------------------------------------------------------

    def _bump_bulk(self) -> None:
        """Version bump for a bulk mutation: no per-row deltas exist, so
        every connection-local cache drops and the journal restarts."""
        self._version += 1
        self._probe_cache.clear()
        self._active_cache.clear()
        self._journal.reset(self._version)

    def _bump_delta(self, op: str, values: tuple) -> None:
        """Per-key version bump: journal the delta and purge exactly the
        probe-cache lines the mutated row projects onto, keeping the rest
        of the LRU warm across the mutation."""
        self._version += 1
        self._journal.record(self._version, op, values)
        self._probe_cache.purge_row(self._schema, values)
        if op == "insert":
            # An insert can only *add* to a column's active set; patch the
            # cached sets in place (active_values hands out copies, so no
            # caller aliases them).
            for attr, cached in self._active_cache.items():
                cached.add(values[self._schema.index_of(attr)])
        else:
            # Whether a deleted value survives in other rows needs a
            # recount; recompute lazily.
            self._active_cache.clear()

    def _coerce(self, row) -> Row:
        if not isinstance(row, Row):
            return Row(self._schema, row)
        if row.schema.attributes != self._schema.attributes:
            raise ValueError(
                f"row schema {row.schema.name!r} does not match store "
                f"schema {self._schema.name!r}"
            )
        return row

    def _insert_sql(self) -> str:
        placeholders = ", ".join("?" for _ in self._columns)
        return (
            f"INSERT INTO master ({', '.join(self._columns)}) "
            f"VALUES ({placeholders})"
        )

    def _insert_many(self, rows: Iterable, chunk: int = 10_000) -> None:
        """Bulk load inside explicit transactions.

        Autocommit pays one journal sync per row, which would turn a large
        on-disk load into minutes; batching commits keeps the streaming
        CSV path (the whole point of the out-of-core backend) fast.  One
        version bump at the end — the load is a single logical mutation.
        """
        sql = self._insert_sql()
        inserted = 0
        rows = iter(rows)
        with self._lock:
            while True:
                batch = [
                    [_encode(v) for v in self._coerce(row).values]
                    for row in itertools.islice(rows, chunk)
                ]
                if not batch:
                    break
                self._db.execute("BEGIN")
                try:
                    self._db.executemany(sql, batch)
                    self._db.execute("COMMIT")
                except BaseException:
                    self._db.execute("ROLLBACK")
                    raise
                inserted += len(batch)
            if inserted:
                self._count += inserted
                self._bump_bulk()

    def insert(self, row) -> None:
        self._guard()
        row = self._coerce(row)
        encoded = [_encode(v) for v in row.values]
        with self._lock:
            self._db.execute(self._insert_sql(), encoded)
            self._count += 1
            # Journal the codec-canonical values (what probes/iteration
            # decode back), not the caller's spelling of them.
            self._bump_delta("insert", tuple(_decode(c) for c in encoded))

    def delete(self, row) -> bool:
        self._guard()
        row = self._coerce(row)
        try:
            encoded = [_encode(v) for v in row.values]
        except TypeError:
            return False
        where = " AND ".join(f"{c} = ?" for c in self._columns)
        with self._lock:
            record = self._db.execute(
                f"SELECT rid FROM master WHERE {where} ORDER BY rid LIMIT 1",
                encoded,
            ).fetchone()
            if record is None:
                return False
            self._db.execute("DELETE FROM master WHERE rid = ?", record)
            self._count -= 1
            self._bump_delta("delete", tuple(_decode(c) for c in encoded))
        return True

    def close(self) -> None:
        """Release the connection; later operations raise
        :class:`StoreDetachedError` (with a remedy) instead of sqlite's
        bare ``ProgrammingError``."""
        with self._lock:
            self._closed = True
            self._db.close()


# -- picklable store handles ---------------------------------------------------


@dataclass(frozen=True)
class MemoryStoreHandle:
    """By-value snapshot of an :class:`InMemoryStore` for worker rehydration."""

    schema: RelationSchema
    rows: tuple
    version: int

    def reattach(self) -> InMemoryStore:
        """Rebuild the store in this process, stamped at the parent version.

        ``replace_all`` (rather than per-row inserts) so the relation's
        mutation counter lands exactly on the parent's stamp and
        version-stamped caches compare against the parent's version
        stream, not the reload's.
        """
        store = InMemoryStore.from_rows(self.schema)
        store.reset_rows(self.rows, self.version)
        return store


@dataclass(frozen=True)
class SqliteStoreHandle:
    """Connection-free reference to a file-backed :class:`SqliteStore`."""

    schema: RelationSchema
    path: str
    probe_cache_size: int
    version: int

    def reattach(self) -> SqliteStore:
        """Open a fresh connection to the shared database file.

        The reattached store starts at the parent's version stamp;
        :meth:`SqliteStore.sync_version` moves it when the parent mutates
        the file mid-batch.  A handle whose database file has vanished
        raises :class:`StoreUnavailableError` — opening the path anyway
        would silently hand the worker an *empty* master and turn every
        certain fix into a user question.
        """
        if not os.path.exists(self.path):
            raise StoreUnavailableError(
                f"cannot reattach SqliteStore: database file {self.path!r} "
                f"no longer exists (deleted after detach?); re-create the "
                f"master with SqliteStore(schema, rows, path=...) and "
                f"detach() a fresh handle"
            )
        store = SqliteStore(
            self.schema, path=self.path,
            probe_cache_size=self.probe_cache_size,
        )
        store._version = self.version
        store._journal.reset(self.version)
        return store


def as_master_store(master) -> MasterStore:
    """Adapt *master* to the :class:`MasterStore` interface.

    Stores pass through unchanged.  A :class:`Relation` is wrapped in an
    ``InMemoryStore`` that is cached on the relation, so repeated
    adaptation is O(1) and every consumer shares one version stream.
    """
    if isinstance(master, MasterStore):
        return master
    if isinstance(master, Relation):
        wrapper = master._store_wrapper
        if wrapper is None:
            wrapper = InMemoryStore(master)
            master._store_wrapper = wrapper
        return wrapper
    raise TypeError(
        f"expected a MasterStore or Relation, got {type(master).__name__}"
    )
