"""SQL rendering for the direct-fix analyses.

The proof of Theorem 5 phrases the direct-fix consistency check as SQL over
the master relation: a query ``Qφ`` per rule (master tuples matching both the
rule's pattern and the region's pattern) and a join query ``Qφ1,φ2`` per rule
pair sharing a target ("(Σ, Dm) is consistent relative to (Z, Tc) iff all the
queries return an empty set").  :mod:`repro.analysis.direct_fixes` evaluates
the same plan in-memory; this module renders the equivalent SQL text so the
two can be compared, logged and documented.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.patterns import PatternTuple, PatternValue


def sql_literal(value) -> str:
    """Render a Python value as a SQL literal."""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return str(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def condition_sql(column: str, condition: PatternValue) -> str:
    """One pattern condition as a SQL predicate (wildcards render as TRUE)."""
    if condition.is_wildcard:
        return "TRUE"
    if condition.is_constant:
        return f"{column} = {sql_literal(condition.value)}"
    return f"{column} <> {sql_literal(condition.value)}"


def pattern_where(
    columns: Iterable,
    pattern: PatternTuple,
    attrs: Iterable,
    table: str = "Rm",
) -> list:
    """Predicates for ``table.columns ≈ pattern[attrs]`` (skipping wildcards)."""
    predicates = []
    for column, attr in zip(columns, attrs):
        condition = pattern.get(attr)
        if condition is None or condition.is_wildcard:
            continue
        predicates.append(condition_sql(f"{table}.{column}", condition))
    return predicates


def render_q_phi(rule, region_pattern: PatternTuple, master_name: str = "Rm") -> str:
    """The paper's ``Qφ``: master tuples matching ``tp[Xp]`` and ``tc[X]``.

    Output columns are aliased to the *R*-side attribute names, as in the
    paper's ``select distinct (Xm, Bm) as (X, B)``.
    """
    select_parts = [
        f"{master_name}.{m} AS {a}" for a, m in zip(rule.lhs, rule.lhs_m)
    ]
    select_parts.append(f"{master_name}.{rule.rhs_m} AS {rule.rhs}")
    where = []
    # Rm.Xpm ≈ tp[Xp]  (direct fixes guarantee Xp ⊆ X).
    pattern_columns = [rule.master_attr_of(a) for a in rule.pattern.attrs]
    where.extend(
        pattern_where(pattern_columns, rule.pattern, rule.pattern.attrs, master_name)
    )
    # Rm.Xm ≈ tc[X].
    where.extend(
        pattern_where(rule.lhs_m, region_pattern, rule.lhs, master_name)
    )
    # Master-side guard (multi-master encoding, Sect. 2 remark (3)).
    for attr, condition in rule.master_guard.items():
        if not condition.is_wildcard:
            where.append(condition_sql(f"{master_name}.{attr}", condition))
    where_sql = " AND ".join(where) if where else "TRUE"
    return (
        f"SELECT DISTINCT {', '.join(select_parts)}\n"
        f"FROM {master_name}\n"
        f"WHERE {where_sql}"
    )


def render_q_pair(rule1, rule2, region_pattern: PatternTuple,
                  master_name: str = "Rm") -> str:
    """The paper's ``Qφ1,φ2``: witnesses of a direct-fix conflict.

    Joins ``Qφ1`` and ``Qφ2`` on the shared lhs attributes and keeps rows
    whose target values *differ* (the conflict condition; the paper's
    ``R1.B = R2.B`` is a typo for ``<>`` — equal values cannot conflict).
    """
    shared = [a for a in rule1.lhs if a in rule2.lhs]
    q1 = render_q_phi(rule1, region_pattern, master_name).replace("\n", " ")
    q2 = render_q_phi(rule2, region_pattern, master_name).replace("\n", " ")
    join = [f"R1.{a} = R2.{a}" for a in shared]
    join.append(f"R1.{rule1.rhs} <> R2.{rule2.rhs}")
    only1 = [a for a in rule1.lhs if a not in shared]
    only2 = [a for a in rule2.lhs if a not in shared]
    select_parts = (
        [f"R1.{a}" for a in only1]
        + [f"R1.{a}" for a in shared]
        + [f"R2.{a}" for a in only2]
    )
    return (
        f"SELECT {', '.join(select_parts) if select_parts else '1'}\n"
        f"FROM ({q1}) AS R1, ({q2}) AS R2\n"
        f"WHERE {' AND '.join(join)}"
    )
