"""Remote master data: an HTTP/JSON master server and a read-through client.

The paper's certain-fix guarantee assumes cheap hash probes into the master
relation ``Dm`` (Sect. 5.1), but production masters rarely live in the
repairing process: reference data is a shared service consulted by many
cleaning sessions at once (Guided Data Repair and Parker both model trusted
sources this way — see PAPERS.md).  This module makes that deployment real
over the :class:`~repro.engine.store.MasterStore` seam, pure stdlib:

* :class:`MasterServer` exposes *any* existing store (memory or sqlite)
  over HTTP/JSON — ``/probe``, ``/probe_many``, ``/active_values``,
  ``/rows``, ``/version`` plus versioned ``/insert`` / ``/delete`` /
  ``/update`` — via ``python -m repro serve-master``;
* :class:`RemoteStore` implements the full ``MasterStore`` ABC as a
  read-through client: an LRU probe cache stamped with the server's
  version, batched ``probe_many`` to amortize round-trips, and
  ``detach()`` / ``reattach()`` so process-pool workers each open their
  own connection.

**Invalidation** piggybacks on every request: each server response carries
an ``X-Master-Version`` header, and the moment the client observes a newer
stamp it reconciles — it fetches ``GET /deltas?since=<stamp>`` (the
server's delta journal) and purges exactly the probe/active/len cache
lines the changed rows project onto, falling back to the historical full
cache drop whenever the journal cannot prove the list complete.  A
server-side mutation therefore invalidates client caches exactly like a
local mutation does, and the client re-exports the journal through its
own ``deltas_since`` mirror so the repair engines' per-key purge path
works across the network boundary too.  A client that only ever hits
its own warm cache would never observe anything, so ``poll_interval``
optionally re-polls ``/version`` on :attr:`RemoteStore.version` reads
(``0.0`` = every read; ``None`` = piggyback only, the default — right when
all mutations flow through this client or between-run staleness is
acceptable).

**Wire format**: values cross the wire in the sqlite backend's tagged
codec (`repro.engine.store._encode`), which reproduces Python's equality
semantics exactly — ``87`` never collides with ``"87"``, ``2 == 2.0 ==
True`` collapse, and the ``NULL`` / ``UNKNOWN`` sentinels survive — so
fixes computed against a remote master stay bit-identical to the
in-process backends.

**Failure model**: an unreachable server raises
:class:`~repro.engine.store.StoreUnavailableError` with remedy text; a
closed client raises :class:`~repro.engine.store.StoreDetachedError`.
Reads are retried once over a fresh connection (a keep-alive the server
timed out is indistinguishable from a dead server until the second try);
mutations are retried only when the request provably never reached the
server (connect/send failures), never after a half-delivered exchange —
an ``/insert`` replay could double-insert.
"""

from __future__ import annotations

import itertools
import json
import socket
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from http import client as http_client
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterable, Iterator
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.engine.schema import Domain, RelationSchema
from repro.engine.store import (
    DEFAULT_DELTA_WINDOW,
    MasterStore,
    StoreDelta,
    StoreDetachedError,
    StoreError,
    StoreProtocolError,
    StoreUnavailableError,
    _decode,
    _encode,
    _ProbeLRU,
)
from repro.engine.tuples import Row
from repro.obs import MetricsRegistry, render_prometheus, snapshot_to_dict

#: Every response carries the store version here, so any exchange doubles
#: as a version poll (the read-through invalidation signal).
VERSION_HEADER = "X-Master-Version"


# -- wire codec ----------------------------------------------------------------


def _encode_values(values: Iterable) -> list:
    return [_encode(v) for v in values]


def _wire_key(key: tuple):
    """Encode a probe key for the wire, or ``None`` when unstorable.

    The single chokepoint for the unstorable-key rule on *both* probe
    paths (singular and batched): a key holding a value the codec
    refuses (an engine-internal placeholder, say) can never equal a
    stored master cell, so it resolves to "no match" locally — and must
    never enter the LRU, because no server ever vouched for the verdict.
    Keeping the rule in one helper is what stops the two paths from
    drifting apart again.
    """
    try:
        return _encode_values(key)
    except TypeError:
        return None


def _decode_row(schema: RelationSchema, cells: list) -> Row:
    return Row(schema, [_decode(c) for c in cells])


def schema_to_payload(schema: RelationSchema) -> dict:
    """JSON-serializable form of a relation schema (``GET /schema``)."""
    return {
        "name": schema.name,
        "attributes": [
            {
                "name": attr.name,
                "domain": {
                    "name": attr.domain.name,
                    "finite": attr.domain.finite,
                    "values": (
                        sorted(_encode(v) for v in attr.domain.values)
                        if attr.domain.finite else None
                    ),
                },
            }
            for attr in schema.attribute_objects
        ],
    }


def schema_from_payload(payload: dict) -> RelationSchema:
    """Rebuild a schema equal (``==``) to the server's from its payload."""
    attributes = []
    for attr in payload["attributes"]:
        dom = attr["domain"]
        domain = Domain(
            dom["name"],
            finite=dom["finite"],
            values=(
                frozenset(_decode(v) for v in dom["values"])
                if dom["finite"] else None
            ),
        )
        attributes.append((attr["name"], domain))
    return RelationSchema(payload["name"], attributes)


# -- server --------------------------------------------------------------------


class _MasterHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, store: MasterStore):
        super().__init__(address, handler)
        self.store = store
        # The server's own always-on registry (never the process-global
        # one): ``GET /metrics`` must work without any client-side
        # ``obs.enable()``, and the per-request cost is noise next to the
        # HTTP exchange it measures.
        self.metrics = MetricsRegistry()
        # One lock around every store access: the wrapped backends are not
        # all thread-safe (InMemoryStore's Relation is not), and the
        # threading server handles each client connection on its own
        # thread.  Mutations and probes serialize here; the client-side
        # LRU is what makes the hot path cheap, not server parallelism.
        self.store_lock = threading.RLock()
        # Live keep-alive sockets, so close() can sever them: shutting the
        # listener alone would leave handler threads serving established
        # connections forever (clients would never observe the shutdown).
        self._client_sockets: set = set()
        self._client_lock = threading.Lock()

    def process_request(self, request, client_address):
        with self._client_lock:
            self._client_sockets.add(request)
        super().process_request(request, client_address)

    def handle_error(self, request, client_address):
        # Routine disconnects — a client killed mid-request, or our own
        # close() severing keep-alives — are not server errors; the
        # default would dump a full traceback to stderr for each.
        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError)):
            return
        super().handle_error(request, client_address)

    def shutdown_request(self, request):
        with self._client_lock:
            self._client_sockets.discard(request)
        super().shutdown_request(request)

    def close_client_connections(self) -> None:
        with self._client_lock:
            sockets = list(self._client_sockets)
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


class _MasterRequestHandler(BaseHTTPRequestHandler):
    """One route per MasterStore method; JSON bodies, codec-tagged values."""

    #: Keep-alive matters: the client holds one persistent connection and
    #: pays a TCP handshake only on reconnect, not per probe.
    protocol_version = "HTTP/1.1"
    server_version = "repro-master"
    #: Responses go out as two segments (headers, then body); with Nagle
    #: on, the second waits ~40ms for the client's delayed ACK — which
    #: turns every cold probe into a 40ms round-trip.
    disable_nagle_algorithm = True
    #: Per-socket timeout: a client that stalls mid-request (or an idle
    #: keep-alive) is disconnected instead of pinning a handler thread
    #: forever.  Clients reconnect transparently; they also preemptively
    #: re-open connections idle longer than half of this (see
    #: ``RemoteStore._IDLE_RECONNECT_S``) so a mutation never rides a
    #: connection the server is about to reap.
    timeout = 60

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass  # stay quiet; the CLI prints its own serving banner

    # -- plumbing ------------------------------------------------------------

    def _reply(self, payload: dict, status: int = 200,
               version: int = None) -> None:
        self._reply_raw(
            json.dumps(payload).encode("utf-8"), "application/json",
            status=status, version=version,
        )

    def _reply_raw(self, body: bytes, content_type: str,
                   status: int = 200, version: int = None) -> None:
        # Every response funnels through here, so the per-endpoint status
        # counter covers errors and 404s as well as the happy path.
        self.server.metrics.inc(
            "repro_server_requests_total",
            endpoint=urlsplit(self.path).path, status=str(status),
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if version is None:
            version = self.server.store.version
        self.send_header(VERSION_HEADER, str(version))
        self.end_headers()
        self.wfile.write(body)

    def _fail(self, status: int, message: str) -> None:
        self._reply({"error": message}, status=status)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if not length:
            return {}
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def _dispatch(self, routes: dict) -> None:
        parts = urlsplit(self.path)
        handler = routes.get(parts.path)
        if handler is None:
            self._fail(404, f"unknown endpoint {parts.path!r}")
            return
        try:
            # Socket I/O stays OUTSIDE the store lock: a client stalling
            # mid-body (or a slow reply drain) must not wedge every other
            # client's probes behind the globally-held lock.  The store
            # work and the version stamp happen atomically inside it —
            # the piggybacked version always matches the result's read
            # point, so clients never cache a stale line under a newer
            # stamp.  The span brackets the store work, not the socket
            # drain: it measures what the server did, not the client's
            # network.
            payload = self._read_json() if self.command == "POST" else {}
            with self.server.metrics.time_block(
                "repro_server_request_seconds", endpoint=parts.path
            ):
                with self.server.store_lock:
                    result = handler(parse_qs(parts.query), payload)
                    version = self.server.store.version
        except (ValueError, TypeError, KeyError) as exc:
            # Bad request shape / probe key mismatch: the client re-raises
            # these as ValueError with the server's message.
            self._fail(400, str(exc))
            return
        except StoreError as exc:
            # The server's own backing store failed (or lied — see the
            # /probe_many strict accounting): the fault is on this side
            # of the wire, so answer 500, not 400.
            self._fail(500, str(exc))
            return
        self._reply(result, version=version)

    # -- GET routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        parts = urlsplit(self.path)
        if parts.path == "/metrics":
            # Outside _dispatch: the body is Prometheus text, not JSON,
            # and a scrape should not contaminate its own request span.
            self._get_metrics(parse_qs(parts.query))
            return
        self._dispatch({
            "/version": self._get_version,
            "/schema": self._get_schema,
            "/len": self._get_len,
            "/rows": self._get_rows,
            "/deltas": self._get_deltas,
        })

    def _get_metrics(self, query: dict) -> None:
        """``GET /metrics``: Prometheus text (``?format=json`` for JSON).

        Store gauges (size, version, probe-cache accounting) are refreshed
        at scrape time so the scrape always reflects the live store, not
        the last mutation.
        """
        registry = self.server.metrics
        store = self.server.store
        with self.server.store_lock:
            registry.set_gauge("repro_server_store_rows", len(store))
            registry.set_gauge("repro_server_store_version", store.version)
            probe_ref_calls = getattr(store, "probe_ref_calls", None)
            if probe_ref_calls is not None:
                registry.set_gauge(
                    "repro_server_store_probe_ref_calls", probe_ref_calls
                )
            cache_info = getattr(store, "probe_cache_info", None)
            if cache_info is not None:
                info = cache_info()
                registry.set_gauge(
                    "repro_server_probe_cache_hits", info["hits"]
                )
                registry.set_gauge(
                    "repro_server_probe_cache_misses", info["misses"]
                )
                registry.set_gauge(
                    "repro_server_probe_cache_size", info["size"]
                )
                registry.set_gauge(
                    "repro_server_probe_cache_evictions", info["evictions"]
                )
                registry.set_gauge(
                    "repro_server_probe_cache_purged", info["purged"]
                )
        snapshot = registry.snapshot()
        if query.get("format", ["text"])[0] == "json":
            self._reply({"metrics": snapshot_to_dict(snapshot)})
            return
        self._reply_raw(
            render_prometheus(snapshot).encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _get_version(self, query, payload) -> dict:
        return {"version": self.server.store.version}

    def _get_schema(self, query, payload) -> dict:
        return {"schema": schema_to_payload(self.server.store.schema)}

    def _get_len(self, query, payload) -> dict:
        return {"len": len(self.server.store)}

    def _get_deltas(self, query, payload) -> dict:
        """``GET /deltas?since=V``: the wrapped store's delta journal.

        ``null`` whenever the store cannot prove the list complete (stamp
        out of the journal window, bulk loads, no journal) — the client
        then falls back to a full cache drop, exactly like a local
        consumer.  Runs under the store lock with the piggybacked version
        stamp, so the list is always consistent with the header.
        """
        since = int(query.get("since", ["0"])[0])
        deltas = self.server.store.deltas_since(since)
        if deltas is None:
            return {"deltas": None}
        return {
            "deltas": [
                [d.version, d.op, _encode_values(d.values)] for d in deltas
            ],
        }

    def _get_rows(self, query, payload) -> dict:
        start = int(query.get("start", ["0"])[0])
        limit = int(query.get("limit", ["512"])[0])
        # iter_from keeps paged iteration O(n) overall: backends seek to
        # *start* natively (sqlite: one OFFSET query) instead of this
        # handler re-iterating and discarding `start` rows per window.
        window = itertools.islice(self.server.store.iter_from(start), limit)
        return {
            "rows": [_encode_values(row.values) for row in window],
            "start": start,
        }

    # -- POST routes ---------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        self._dispatch({
            "/probe": self._post_probe,
            "/probe_many": self._post_probe_many,
            "/active_values": self._post_active_values,
            "/ensure_index": self._post_ensure_index,
            "/insert": self._post_insert,
            "/delete": self._post_delete,
            "/update": self._post_update,
        })

    def _decode_key(self, cells: list) -> tuple:
        return tuple(_decode(c) for c in cells)

    def _row_from(self, cells: list) -> Row:
        return _decode_row(self.server.store.schema, cells)

    def _post_probe(self, query, payload) -> dict:
        rows = self.server.store.probe(
            tuple(payload["attrs"]), self._decode_key(payload["key"])
        )
        return {"rows": [_encode_values(r.values) for r in rows]}

    def _post_probe_many(self, query, payload) -> dict:
        attrs = tuple(payload["attrs"])
        keys = [self._decode_key(k) for k in payload["keys"]]
        out = self.server.store.probe_many(attrs, keys)
        # Strict accounting before anything goes on the wire: the backing
        # store must answer exactly the requested key set — a lying store
        # fails the exchange loudly (HTTP 500) instead of shipping a
        # response the client would have to zip-truncate.
        missing = [key for key in keys if key not in out]
        if missing:
            raise StoreProtocolError(
                f"backing {type(self.server.store).__name__}.probe_many "
                f"answered {len(out)} keys for {len(set(keys))} requested "
                f"({len(missing)} unanswered, e.g. {missing[0]!r}); "
                f"refusing to serve a truncated /probe_many response"
            )
        # Aligned with request order; duplicates collapse server-side too.
        # The count echo lets clients cross-check the pairing even when a
        # middlebox rewrites the results array length.
        return {
            "count": len(keys),
            "results": [
                [_encode_values(r.values) for r in out[key]] for key in keys
            ],
        }

    def _post_active_values(self, query, payload) -> dict:
        values = self.server.store.active_values(payload["attr"])
        return {"values": sorted(_encode(v) for v in values)}

    def _post_ensure_index(self, query, payload) -> dict:
        self.server.store.ensure_index(tuple(payload["attrs"]))
        return {}

    def _post_insert(self, query, payload) -> dict:
        self.server.store.insert(self._row_from(payload["row"]))
        return {}

    def _post_delete(self, query, payload) -> dict:
        deleted = self.server.store.delete(self._row_from(payload["row"]))
        return {"deleted": deleted}

    def _post_update(self, query, payload) -> dict:
        # One round-trip, atomic under the server's store lock (the
        # default client-side delete-then-insert would let another client
        # observe the gap between the two).
        updated = self.server.store.update(
            self._row_from(payload["old"]), self._row_from(payload["new"])
        )
        return {"updated": updated}


class MasterServer:
    """Serve a :class:`MasterStore` over HTTP (``serve-master`` CLI).

    Wraps the stdlib threading HTTP server with a background-thread
    lifecycle for tests and embedded use::

        with MasterServer(store) as server:      # port=0 → ephemeral
            remote = RemoteStore(server.url)

    or ``serve_forever()`` in the foreground for the CLI.
    """

    def __init__(self, store: MasterStore, host: str = "127.0.0.1",
                 port: int = 0):
        self._http = _MasterHTTPServer((host, port), _MasterRequestHandler,
                                       store)
        self._thread = None

    @property
    def store(self) -> MasterStore:
        return self._http.store

    @property
    def metrics(self) -> MetricsRegistry:
        """The server's always-on registry (what ``GET /metrics`` renders)."""
        return self._http.metrics

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` — the real port even for ``port=0``."""
        return self._http.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MasterServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._http.serve_forever, name="repro-master-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI foreground path)."""
        self._http.serve_forever()

    def close(self) -> None:
        """Stop serving and sever live keep-alive connections.

        Clients observe the shutdown immediately (their next request
        raises ``StoreUnavailableError``) instead of riding an
        established connection into a half-dead server.
        """
        self._http.shutdown()
        self._http.close_client_connections()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MasterServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MasterServer({self.store!r} at {self.url})"


# -- client --------------------------------------------------------------------


#: Transport failures the client maps to StoreUnavailableError; whether a
#: retry is safe depends on when they struck (see ``_request``).
_TRANSPORT_ERRORS = (http_client.HTTPException, OSError)


class RemoteStore(MasterStore):
    """Read-through :class:`MasterStore` client for a :class:`MasterServer`.

    Probes are served from a bounded LRU keyed on ``(attrs, key)`` and
    stamped with the server version; every response's ``X-Master-Version``
    header is compared against the stamp and a newer value drops the
    probe / active-value / length caches before anything is returned — a
    server-side mutation invalidates this client exactly like a local
    mutation invalidates the in-process backends.  ``probe_many`` ships
    cache misses in one request.  The single keep-alive connection is
    serialized behind a lock (the batch engine's thread fan-out probes
    concurrently); workers of a process pool each reattach their own
    connection from a :class:`RemoteStoreHandle`.

    Parameters
    ----------
    url:
        The server's base URL (``http://host:port``).
    schema:
        The master schema; fetched from ``GET /schema`` when omitted.
    probe_cache_size:
        LRU bound (0 disables client-side probe caching).
    timeout:
        Socket timeout per request, seconds.
    poll_interval:
        ``None`` (default): observe the server version only through
        response headers.  A float: additionally re-poll ``GET /version``
        on :attr:`version` reads at most every that-many seconds (``0.0``
        = every read) — needed when *other* clients mutate the master and
        this one must notice between its own requests.
    """

    supports_batched_probes = True
    #: Workers talk to the same server, so parent mutations reach them
    #: without row snapshots (the sqlite-file model, over HTTP).
    shares_storage_across_processes = True

    _ITER_BATCH = 512
    #: Preemptively re-open a connection idle longer than this before the
    #: next request: the server reaps sockets idle past its handler
    #: timeout (60s), and a mutation riding a half-dead keep-alive would
    #: fail non-retriably.  Kept below half the server's reap window.
    _IDLE_RECONNECT_S = 25.0

    def __init__(
        self,
        url: str,
        schema: RelationSchema = None,
        probe_cache_size: int = 4096,
        timeout: float = 10.0,
        poll_interval: float = None,
    ):
        self._probe_cache = _ProbeLRU(probe_cache_size)
        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"RemoteStore needs an http://host:port URL, got {url!r}"
            )
        self._url = url.rstrip("/")
        self._host = parts.hostname
        self._port = parts.port or 80
        self._timeout = timeout
        self._poll_interval = poll_interval
        self._closed = False
        self._conn = None
        self._last_request = 0.0
        self._conn_lock = threading.RLock()
        self._cache_lock = threading.RLock()
        self._version = -1  # before the first observation
        self._last_poll = 0.0
        self._active_cache: dict = {}
        self._len_cache = None
        self._requests = 0
        self._reconnects = 0
        self._invalidations = 0
        # Delta reconciliation state: a local mirror of the server's
        # journal (so engines stacked on this client can read
        # ``deltas_since`` without a round-trip), the contiguous floor it
        # covers from, and the re-entrancy flag that keeps the nested
        # ``/deltas`` fetch from re-triggering itself off its own
        # response header.
        self._mirror: deque = deque()
        self._mirror_floor = -1
        self._delta_fetch_active = False
        self.delta_purges = 0
        self.full_drops = 0
        self.probe_ref_calls = 0
        if schema is None:
            payload, _ = self._request("GET", "/schema")
            schema = schema_from_payload(payload["schema"])
        else:
            # Validate reachability eagerly (and observe the version) so a
            # bad --master-url fails at construction with a remedy, not on
            # the first mid-batch probe.
            self._request("GET", "/version")
        self._schema = schema

    # -- transport -----------------------------------------------------------

    def _connect(self) -> http_client.HTTPConnection:
        conn = http_client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        conn.connect()
        # Requests are written as separate header/body segments; without
        # TCP_NODELAY the body segment can sit behind the server's delayed
        # ACK (~40ms), dwarfing the actual probe cost.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
            self._reconnects += 1
            obs.inc("repro_remote_reconnects_total")

    def _unavailable(self, exc: Exception) -> StoreUnavailableError:
        return StoreUnavailableError(
            f"master server at {self._url} is unreachable ({exc}); start "
            f"one with `python -m repro serve-master --master ... --port "
            f"...` or fix --master-url"
        )

    def _request(self, method: str, path: str, payload: dict = None,
                 idempotent: bool = True) -> tuple:
        """One JSON exchange; returns ``(body_dict, observed_version)``.

        Retries once over a fresh connection when the failure happened
        before the request could have been processed — always for
        idempotent reads, only on connect/send errors for mutations.
        """
        endpoint = path.split("?", 1)[0]
        with obs.time_block("repro_remote_request_seconds",
                            endpoint=endpoint):
            try:
                result = self._request_impl(method, path, payload, idempotent)
            except Exception:
                # Transport failures AND server-rejected requests: any
                # exchange that produced no usable result counts as error.
                obs.inc("repro_remote_requests_total",
                        endpoint=endpoint, status="error")
                raise
        obs.inc("repro_remote_requests_total",
                endpoint=endpoint, status="ok")
        return result

    def _request_impl(self, method: str, path: str, payload: dict,
                      idempotent: bool) -> tuple:
        if self._closed:
            raise StoreDetachedError(
                f"this RemoteStore ({self._url}) has been closed; build a "
                f"new RemoteStore(url) or reattach() a detached handle"
            )
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        with self._conn_lock:
            if (
                self._conn is not None
                and time.monotonic() - self._last_request
                >= self._IDLE_RECONNECT_S
            ):
                self._drop_connection()
            for attempt in (0, 1):
                sent = False
                try:
                    if self._conn is None:
                        self._conn = self._connect()
                    self._conn.request(method, path, body=body,
                                       headers=headers)
                    sent = True
                    response = self._conn.getresponse()
                    data = response.read()
                    break
                except _TRANSPORT_ERRORS as exc:
                    self._drop_connection()
                    # A failure during connect/send means the server never
                    # saw a complete request — safe to replay even for
                    # mutations.  After the request went out, only
                    # idempotent exchanges may retry (an /insert replay
                    # could double-insert).
                    retriable = (not sent) or idempotent
                    if attempt or not retriable:
                        raise self._unavailable(exc) from exc
            self._requests += 1
            self._last_request = time.monotonic()
        version = response.getheader(VERSION_HEADER)
        observed = int(version) if version is not None else self._version
        self._observe_version(observed)
        if response.status == 400:
            raise ValueError(json.loads(data.decode("utf-8"))["error"])
        if response.status != 200:
            raise self._unavailable(
                Exception(f"HTTP {response.status} on {path}")
            )
        return json.loads(data.decode("utf-8")), observed

    def _observe_version(self, version: int) -> None:
        """Adopt a piggybacked server version, surgically when possible.

        The first observation adopts silently (nothing is cached yet).
        Later bumps fetch ``GET /deltas?since=<stamp>`` and purge exactly
        the cache lines the changed rows project onto; a ``null`` journal
        answer, a transport failure, or a gapped list falls back to the
        historical full cache drop.  Either way the client lands on the
        server's stamp before the triggering caller returns.
        """
        with self._cache_lock:
            self._last_poll = time.monotonic()
            if version <= self._version:
                return
            if self._delta_fetch_active:
                # The nested /deltas fetch observing its own response
                # header (or a concurrent request racing it): version
                # adoption happens when the fetch completes.
                return
            if self._version < 0:
                self._version = version
                self._mirror_floor = version
                return
            since = self._version
            self._delta_fetch_active = True
        fetched = None
        try:
            fetched = self._fetch_deltas(since)
        finally:
            with self._cache_lock:
                self._delta_fetch_active = False
                self._reconcile(version, since, fetched)

    def _fetch_deltas(self, since: int):
        """``(records, version_at_fetch)`` from the server, or ``None``."""
        try:
            payload, observed = self._request("GET", f"/deltas?since={since}")
        except (StoreUnavailableError, ValueError):
            return None
        wire = payload.get("deltas")
        if wire is None:
            return None
        records = tuple(
            StoreDelta(v, op, tuple(_decode(c) for c in cells))
            for v, op, cells in wire
        )
        return records, observed

    def _reconcile(self, version: int, since: int, fetched) -> None:
        """Apply a fetched delta list, or fall back to the full drop.

        Runs under the cache lock with ``_version == since`` (the fetch
        flag blocks every other adoption path meanwhile).
        """
        self._invalidations += 1
        if fetched is not None:
            records, observed = fetched
            # One record per version bump; anything else means a gap.
            if len(records) == observed - since:
                for delta in records:
                    self._apply_delta(delta)
                self._version = observed
                self.delta_purges += 1
                return
        self.full_drops += 1
        self._probe_cache.clear()
        self._active_cache.clear()
        self._len_cache = None
        self._version = max(version, since)
        self._mirror.clear()
        self._mirror_floor = self._version

    def _apply_delta(self, delta: StoreDelta) -> None:
        """Patch the read-through caches for one journaled mutation."""
        self._probe_cache.purge_row(self._schema, delta.values)
        row = Row(self._schema, delta.values)
        if delta.op == "insert":
            for attr, values in self._active_cache.items():
                values.add(row[attr])
            if self._len_cache is not None:
                self._len_cache += 1
        else:
            # A deleted value may or may not survive in other rows; drop
            # just the affected attribute entries (recomputed lazily).
            for attr in list(self._active_cache):
                if row[attr] in self._active_cache[attr]:
                    del self._active_cache[attr]
            if self._len_cache is not None:
                self._len_cache -= 1
        self._mirror.append(delta)
        while len(self._mirror) > DEFAULT_DELTA_WINDOW:
            self._mirror_floor = self._mirror.popleft().version

    # -- introspection -------------------------------------------------------

    @property
    def url(self) -> str:
        return self._url

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def version(self) -> int:
        if self._poll_interval is not None and not self._closed:
            if time.monotonic() - self._last_poll >= self._poll_interval:
                self.poll_version()
        return self._version

    def poll_version(self) -> int:
        """Force one ``GET /version`` round-trip; returns the fresh stamp."""
        self._request("GET", "/version")
        return self._version

    def sync_version(self, version: int) -> None:
        """Adopt the parent's *version* stamp (process-pool resync hook).

        Data already lives server-side, so — exactly like the sqlite
        file-backed path — the worker reconciles only its
        connection-local caches (per-key via ``/deltas`` when the server
        journal covers the gap); a no-op when the stamp already matches.
        """
        self._observe_version(version)

    def deltas_since(self, version: int):
        """Mutations strictly after *version*, from the local mirror.

        Served without a round-trip: every observed bump lands in the
        mirror as it is reconciled (full drops clear it), so engines
        stacked on this client get the same delta contract as the
        in-process backends.  Reads the raw stamp — no poll: callers ask
        about versions they already observed.
        """
        with self._cache_lock:
            current = self._version
            if version > current:
                return None
            if version == current:
                return ()
            if version < self._mirror_floor:
                return None
            records = tuple(
                d for d in self._mirror if d.version > version
            )
            if len(records) != current - version:
                return None
            return records

    def adopt_deltas(self, deltas, version: int) -> bool:
        """Resync to the parent's *version*; the row data is server-side.

        The shipped list is advisory here — :meth:`sync_version` runs
        the same fetch-or-drop reconciliation against the server's own
        journal, which is the source of truth this client mirrors.
        """
        self.sync_version(version)
        return True

    def __len__(self) -> int:
        with self._cache_lock:
            if self._len_cache is not None:
                return self._len_cache
        payload, observed = self._request("GET", "/len")
        count = payload["len"]
        with self._cache_lock:
            if self._version == observed:
                self._len_cache = count
        return count

    def __iter__(self) -> Iterator[Row]:
        return self.iter_from(0)

    def iter_from(self, start: int) -> Iterator[Row]:
        # Windowed like SqliteStore.__iter__; offsets (not rids) are the
        # cursor, so rows inserted/deleted behind the current offset can
        # shift the window — iterate-under-mutation sees a best-effort
        # snapshot, as documented for every out-of-core backend.
        start = max(start, 0)
        while True:
            payload, _ = self._request(
                "GET", f"/rows?start={start}&limit={self._ITER_BATCH}"
            )
            rows = payload["rows"]
            if not rows:
                return
            for cells in rows:
                yield _decode_row(self._schema, cells)
            start += len(rows)

    # -- probes --------------------------------------------------------------

    def ensure_index(self, attrs: Iterable) -> None:
        self._request("POST", "/ensure_index",
                      {"attrs": list(tuple(attrs))})

    def _check_key(self, attrs: tuple, key) -> tuple:
        key = tuple(key)
        if len(attrs) != len(key):
            raise ValueError(
                f"probe key {key} does not match attribute list {attrs}"
            )
        return key

    def probe(self, attrs: Iterable, key) -> tuple:
        # Cache hits and round-trips share one span: the latency
        # distribution is supposed to show the hit/miss mix.
        with obs.time_block(
            "repro_store_probe_seconds", backend="remote", op="probe"
        ):
            return self._probe_impl(attrs, key)

    def probe_ref(self, attrs: Iterable, key) -> tuple:
        self.probe_ref_calls += 1
        return self.probe(attrs, key)

    def _probe_impl(self, attrs: Iterable, key) -> tuple:
        attrs = tuple(attrs)
        key = self._check_key(attrs, key)
        cache_key = (attrs, key)
        with self._cache_lock:
            cached = self._probe_cache.get(cache_key)
            if cached is not None:
                return cached
        encoded = _wire_key(key)
        if encoded is None:
            return ()  # unstorable value matches nothing; never cached
        payload, observed = self._request(
            "POST", "/probe", {"attrs": list(attrs), "key": encoded}
        )
        result = tuple(
            _decode_row(self._schema, cells) for cells in payload["rows"]
        )
        self._cache_probe(cache_key, result, observed)
        return result

    def _cache_probe(self, cache_key: tuple, result: tuple,
                     observed: int) -> None:
        """Insert one LRU line, but only under the stamp it was read at —
        a concurrent observation of a newer version means *result* may be
        stale and must not outlive the invalidation that just happened."""
        with self._cache_lock:
            if self._version == observed:
                self._probe_cache.put(cache_key, result)

    def probe_many(self, attrs: Iterable, keys: Iterable) -> dict:
        """Batched probe: cache misses travel in one ``/probe_many`` body.

        Semantically a :meth:`probe` loop (results land in the LRU too —
        the batch engine's chunk warm-up is exactly this); the round-trip
        count drops from one per key to one per call.
        """
        with obs.time_block(
            "repro_store_probe_seconds", backend="remote", op="many"
        ):
            return self._probe_many_impl(attrs, keys)

    def _probe_many_impl(self, attrs: Iterable, keys: Iterable) -> dict:
        attrs = tuple(attrs)
        out: dict = {}
        pending: list = []  # (key, encoded) cache misses
        with self._cache_lock:
            for key in keys:
                key = self._check_key(attrs, key)
                if key in out:
                    continue
                cached = self._probe_cache.get((attrs, key))
                if cached is not None:
                    out[key] = cached
                    continue
                out[key] = ()  # filled below when rows come back
                encoded = _wire_key(key)
                if encoded is not None:
                    pending.append((key, encoded))
                # else: unstorable key matches nothing; stays (), uncached
        if not pending:
            return out
        payload, observed = self._request(
            "POST", "/probe_many",
            {"attrs": list(attrs), "keys": [enc for _, enc in pending]},
        )
        results = payload["results"]
        echoed = payload.get("count", len(results))
        if len(results) != len(pending) or echoed != len(pending):
            # NEVER zip-truncate: a short (or padded) reply silently
            # resolved — and LRU-cached — the unpaired keys as "no
            # match", corrupting fixes.  Nothing from this response may
            # be returned or cached.
            raise StoreProtocolError(
                f"{self._url}/probe_many answered {len(results)} result "
                f"lists (count echo {echoed}) for {len(pending)} probe "
                f"keys; refusing to pair them up — no result was cached "
                f"or resolved.  The server and client disagree about the "
                f"request: check for a proxy mangling request bodies or "
                f"a server/client version skew"
            )
        for (key, _), cells_list in zip(pending, results):
            rows = tuple(
                _decode_row(self._schema, cells) for cells in cells_list
            )
            out[key] = rows
            self._cache_probe((attrs, key), rows, observed)
        return out

    def active_values(self, attr: str) -> set:
        self._schema.index_of(attr)  # KeyError for foreign attrs, as local
        with self._cache_lock:
            cached = self._active_cache.get(attr)
            if cached is not None:
                return set(cached)
        payload, observed = self._request(
            "POST", "/active_values", {"attr": attr}
        )
        values = {_decode(v) for v in payload["values"]}
        with self._cache_lock:
            if self._version == observed:
                self._active_cache[attr] = values
        return set(values)

    def probe_cache_info(self) -> dict:
        """LRU accounting for the benchmark layer (sqlite-compatible)."""
        with self._cache_lock:
            info = self._probe_cache.info()
            info["probe_ref_calls"] = self.probe_ref_calls
            return info

    def connection_info(self) -> dict:
        """Transport accounting: requests, reconnects, observed version."""
        with self._cache_lock:
            return {
                "url": self._url,
                "requests": self._requests,
                "reconnects": self._reconnects,
                "invalidations_observed": self._invalidations,
                "delta_purges": self.delta_purges,
                "full_drops": self.full_drops,
                "version": self._version,
            }

    # -- mutation ------------------------------------------------------------

    def insert(self, row) -> None:
        row = self._coerce(row)
        self._request("POST", "/insert",
                      {"row": _encode_values(row.values)}, idempotent=False)

    def delete(self, row) -> bool:
        row = self._coerce(row)
        try:
            encoded = _encode_values(row.values)
        except TypeError:
            return False  # unstorable values match nothing
        payload, _ = self._request("POST", "/delete", {"row": encoded},
                                   idempotent=False)
        return payload["deleted"]

    def update(self, old, new) -> bool:
        """Server-side delete-then-insert: one round-trip, atomic under
        the server's store lock (no other client can observe the gap)."""
        old, new = self._coerce(old), self._coerce(new)
        try:
            encoded_old = _encode_values(old.values)
        except TypeError:
            return False
        payload, _ = self._request(
            "POST", "/update",
            {"old": encoded_old, "new": _encode_values(new.values)},
            idempotent=False,
        )
        return payload["updated"]

    def _coerce(self, row) -> Row:
        if not isinstance(row, Row):
            return Row(self._schema, row)
        if row.schema.attributes != self._schema.attributes:
            raise ValueError(
                f"row schema {row.schema.name!r} does not match store "
                f"schema {self._schema.name!r}"
            )
        return row

    # -- process-boundary protocol -------------------------------------------

    def detach(self) -> "RemoteStoreHandle":
        """A picklable handle reconnecting to the same server elsewhere.

        Carries the URL (the server is the shared storage), the schema by
        value (workers skip the ``/schema`` fetch) and this client's
        version stamp.
        """
        if self._closed:
            raise StoreDetachedError(
                f"this RemoteStore ({self._url}) has been closed; build a "
                f"new RemoteStore(url) or reattach() a detached handle"
            )
        return RemoteStoreHandle(
            url=self._url,
            schema=self._schema,
            probe_cache_size=self._probe_cache.maxsize,
            timeout=self._timeout,
            poll_interval=self._poll_interval,
            version=self._version,
        )

    def close(self) -> None:
        """Drop the connection; later operations raise
        :class:`StoreDetachedError` with a remedy."""
        with self._conn_lock:
            self._closed = True
            if self._conn is not None:
                try:
                    self._conn.close()
                except OSError:
                    pass
                self._conn = None

    def __repr__(self) -> str:
        if self._closed:
            return f"RemoteStore({self._url}, closed)"
        return (
            f"RemoteStore({self._url}, schema={self._schema.name!r}, "
            f"version={self._version})"
        )


@dataclass(frozen=True)
class RemoteStoreHandle:
    """Connection-free reference to a :class:`RemoteStore` (process hops)."""

    url: str
    schema: RelationSchema
    probe_cache_size: int
    timeout: float
    poll_interval: float
    version: int

    def reattach(self) -> RemoteStore:
        """Open a fresh connection in this process.

        Raises :class:`StoreUnavailableError` (with the serve-master
        remedy) when the server has gone away.  The reattached client
        starts at the *newest* of the handle's stamp and the server's
        current version — the server is the single source of truth, so a
        mutation that happened after detach is adopted immediately rather
        than discovered one probe late.
        """
        store = RemoteStore(
            self.url,
            schema=self.schema,
            probe_cache_size=self.probe_cache_size,
            timeout=self.timeout,
            poll_interval=self.poll_interval,
        )
        store.sync_version(self.version)
        return store
