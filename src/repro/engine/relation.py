"""Relation instances: a schema plus a bag of rows, with cached hash indexes.

The master relation ``Dm`` of the paper is a :class:`Relation`; so are the
base tables the HOSP dataset is joined from.  Algebraic operations return
new relations, which keeps the semantics of the analyses (which treat ``Dm``
as fixed for the duration of one computation) honest.  In-place mutation is
limited to ``insert`` / ``delete``, both of which keep the cached hash
indexes consistent and bump :attr:`mutation_count` — the signal
:class:`repro.engine.store.InMemoryStore` exposes as its ``version`` so the
repair layer's shared caches can notice incremental master updates.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.engine.index import HashIndex
from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row


class Relation:
    """A named instance of a :class:`RelationSchema`."""

    def __init__(self, schema: RelationSchema, rows: Iterable = ()):
        self.schema = schema
        self._rows: list = []
        self._indexes: dict = {}
        self._mutations = 0
        self._store_wrapper = None  # cached InMemoryStore (engine.store)
        for row in rows:
            self.insert(row)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dicts(cls, schema: RelationSchema, dicts: Iterable) -> "Relation":
        return cls(schema, (Row(schema, d) for d in dicts))

    def insert(self, row) -> None:
        """Append a row (a :class:`Row`, mapping, or value sequence)."""
        if not isinstance(row, Row):
            row = Row(self.schema, row)
        elif row.schema.attributes != self.schema.attributes:
            raise ValueError(
                f"row schema {row.schema.name!r} does not match relation "
                f"schema {self.schema.name!r}"
            )
        self._rows.append(row)
        self._mutations += 1
        for index in self._indexes.values():
            index.add(row)

    def delete(self, row) -> bool:
        """Remove the first row equal to *row*; True iff one was removed.

        Cached hash indexes are updated in place, so existing probe paths
        stay consistent without a rebuild.
        """
        if not isinstance(row, Row):
            row = Row(self.schema, row)
        try:
            self._rows.remove(row)
        except ValueError:
            return False
        self._mutations += 1
        for index in self._indexes.values():
            index.remove(row)
        return True

    def replace_all(self, rows: Iterable, mutation_count: int = None) -> None:
        """Swap in a whole new row list (and optionally the mutation counter).

        The bulk counterpart of ``insert``/``delete`` used by the
        process-pool resync protocol: cached hash indexes are dropped
        (rebuilt lazily on the next lookup) and the mutation counter either
        advances by one (the default — a replace is one logical mutation)
        or jumps to *mutation_count* verbatim, which is how a worker's
        rebuilt master adopts the parent process's version stamp.
        """
        new_rows = []
        for row in rows:
            if not isinstance(row, Row):
                row = Row(self.schema, row)
            elif row.schema.attributes != self.schema.attributes:
                raise ValueError(
                    f"row schema {row.schema.name!r} does not match relation "
                    f"schema {self.schema.name!r}"
                )
            new_rows.append(row)
        self._rows = new_rows
        self._indexes = {}
        if mutation_count is None:
            self._mutations += 1
        else:
            self._mutations = mutation_count

    # -- access ----------------------------------------------------------------

    @property
    def rows(self) -> list:
        """A defensive copy of the row list.

        External callers may mutate the result freely; hot paths (repair
        loops, index builds, batch chunking) must use :meth:`iter_rows` /
        ``__iter__`` / :meth:`row_at` instead, which never copy.
        """
        return list(self._rows)

    @property
    def mutation_count(self) -> int:
        """Monotonic counter bumped by every ``insert`` / ``delete``."""
        return self._mutations

    def iter_rows(self) -> Iterator[Row]:
        """No-copy iteration over the stored rows (read-only hot path)."""
        return iter(self._rows)

    def row_at(self, index: int) -> Row:
        """The row at *index* without copying the row list."""
        return self._rows[index]

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: Row) -> bool:
        return row in self._rows

    def first(self) -> Row:
        if not self._rows:
            raise LookupError(f"relation {self.schema.name!r} is empty")
        return self._rows[0]

    # -- indexing ----------------------------------------------------------------

    def index_on(self, attrs: Iterable) -> HashIndex:
        """The (cached) hash index over *attrs*.

        The attribute list may repeat columns: keys are positional, and rule
        match lists may reuse one master column (see Theorem 12's reduction).
        """
        key = tuple(attrs)
        for a in key:
            self.schema.index_of(a)
        index = self._indexes.get(key)
        if index is None:
            index = HashIndex(key, self._rows)
            self._indexes[key] = index
        return index

    def lookup(self, attrs: Iterable, key_values) -> list:
        """Rows with ``row[attrs] == key_values`` via the hash index.

        Hot path for every master probe of the repair engines: the result
        aliases the index bucket and must be treated as read-only.  Use
        ``index_on(attrs).get(key)`` for a mutable copy.
        """
        return self.index_on(attrs).get_ref(tuple(key_values))

    def scan_lookup(self, attrs: Iterable, key_values) -> list:
        """Index-free variant of :meth:`lookup` (the ablation A2 baseline)."""
        attrs = tuple(attrs)
        key = tuple(key_values)
        return [row for row in self._rows if row[attrs] == key]

    # -- algebra (thin wrappers; the operators live in engine.query) -----------

    def select(self, predicate: Callable) -> "Relation":
        out = Relation(self.schema)
        for row in self._rows:
            if predicate(row):
                out.insert(row)
        return out

    def project(self, attrs: Iterable, distinct: bool = False) -> "Relation":
        attrs = tuple(attrs)
        sub = self.schema.project(attrs)
        out = Relation(sub)
        seen = set()
        for row in self._rows:
            values = row[attrs]
            if distinct:
                if values in seen:
                    continue
                seen.add(values)
            out.insert(Row(sub, values))
        return out

    def distinct(self) -> "Relation":
        out = Relation(self.schema)
        seen = set()
        for row in self._rows:
            if row.values not in seen:
                seen.add(row.values)
                out.insert(row)
        return out

    def active_values(self, attr: str) -> set:
        """The set of values appearing in column *attr*."""
        position = self.schema.index_of(attr)
        return {row.values[position] for row in self._rows}

    def sample(self, count: int, rng) -> list:
        """*count* rows drawn without replacement using the caller's RNG."""
        if count >= len(self._rows):
            return list(self._rows)
        return rng.sample(self._rows, count)

    def __repr__(self) -> str:
        return f"Relation({self.schema.name!r}, {len(self._rows)} rows)"
