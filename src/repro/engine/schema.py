"""Relation schemas and attribute domains.

The paper's complexity results hinge on whether attribute domains are finite
or infinite (Theorem 1 holds "even when data and master relations have
infinite-domain attributes only"), so domains carry an explicit finiteness
flag and, for finite domains, their value set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Domain:
    """An attribute domain.

    Parameters
    ----------
    name:
        Human-readable name (``"int"``, ``"string"``, ``"bool01"``...).
    finite:
        Whether the domain has finitely many values.
    values:
        The value set for finite domains; ``None`` for infinite ones.
    """

    name: str
    finite: bool = False
    values: frozenset = field(default=None)

    def __post_init__(self):
        if self.finite and self.values is None:
            raise ValueError(f"finite domain {self.name!r} needs a value set")
        if not self.finite and self.values is not None:
            raise ValueError(f"infinite domain {self.name!r} must not enumerate values")

    def contains(self, value) -> bool:
        """Membership test; infinite domains accept everything non-sentinel."""
        if not self.finite:
            return True
        return value in self.values

    def __repr__(self) -> str:
        if self.finite:
            return f"Domain({self.name!r}, |{len(self.values)}| values)"
        return f"Domain({self.name!r})"


#: The two stock infinite domains used by the paper's schemas.
INT = Domain("int")
STRING = Domain("string")


def finite_domain(name: str, values: Iterable) -> Domain:
    """Build a finite domain from an iterable of values."""
    return Domain(name, finite=True, values=frozenset(values))


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a relation schema."""

    name: str
    domain: Domain = STRING

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.domain.name})"


class RelationSchema:
    """An ordered list of distinct attributes, with O(1) name lookup.

    Instances are immutable; derived schemas (projections, renames) return
    new objects.  The schema of input tuples is the paper's ``R`` and the
    master schema is ``Rm``; both are plain :class:`RelationSchema` values.
    """

    __slots__ = ("name", "_attributes", "_positions")

    def __init__(self, name: str, attributes: Iterable):
        attrs = []
        for a in attributes:
            if isinstance(a, Attribute):
                attrs.append(a)
            elif isinstance(a, str):
                attrs.append(Attribute(a))
            else:
                attr_name, domain = a
                attrs.append(Attribute(attr_name, domain))
        self.name = name
        self._attributes = tuple(attrs)
        self._positions = {a.name: i for i, a in enumerate(self._attributes)}
        if len(self._positions) != len(self._attributes):
            raise ValueError(f"schema {name!r} has duplicate attribute names")

    # -- introspection ----------------------------------------------------

    @property
    def attributes(self) -> tuple:
        """Attribute names, in schema order."""
        return tuple(a.name for a in self._attributes)

    @property
    def attribute_objects(self) -> tuple:
        return self._attributes

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __contains__(self, attr_name: str) -> bool:
        return attr_name in self._positions

    def index_of(self, attr_name: str) -> int:
        """Position of *attr_name* in the schema; raises KeyError if absent."""
        try:
            return self._positions[attr_name]
        except KeyError:
            raise KeyError(
                f"schema {self.name!r} has no attribute {attr_name!r}; "
                f"attributes are {self.attributes}"
            ) from None

    def domain_of(self, attr_name: str) -> Domain:
        return self._attributes[self.index_of(attr_name)].domain

    def check_attrs(self, attrs: Iterable) -> tuple:
        """Validate that *attrs* are distinct schema attributes; return tuple."""
        attrs = tuple(attrs)
        seen = set()
        for a in attrs:
            self.index_of(a)
            if a in seen:
                raise ValueError(f"duplicate attribute {a!r} in list {attrs}")
            seen.add(a)
        return attrs

    # -- derivation --------------------------------------------------------

    def project(self, attrs: Iterable) -> "RelationSchema":
        """A sub-schema with only *attrs*, in the given order."""
        attrs = self.check_attrs(attrs)
        return RelationSchema(
            f"{self.name}[{','.join(attrs)}]",
            [self._attributes[self.index_of(a)] for a in attrs],
        )

    def rename(self, mapping: dict) -> "RelationSchema":
        """A schema with attributes renamed per *mapping* (old -> new)."""
        return RelationSchema(
            self.name,
            [
                Attribute(mapping.get(a.name, a.name), a.domain)
                for a in self._attributes
            ],
        )

    # -- equality ----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self.name, self._attributes))

    def __repr__(self) -> str:
        return f"RelationSchema({self.name!r}, {list(self.attributes)})"
