"""Relational-algebra operators.

Only what the reproduction needs: selection, projection, rename, equi-join
and natural join.  The HOSP dataset of Sect. 6 is produced by natural-joining
HOSP, HOSP_MSR_XWLK and STATE_MSR_AVG ("we created a big table by joining the
three tables with natural join"); :func:`natural_join` is that operator.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row


def select(relation: Relation, predicate: Callable) -> Relation:
    """Rows of *relation* satisfying *predicate*."""
    return relation.select(predicate)


def project(relation: Relation, attrs: Iterable, distinct: bool = False) -> Relation:
    """Projection onto *attrs*; optionally duplicate-eliminating."""
    return relation.project(attrs, distinct=distinct)


def rename(relation: Relation, mapping: dict, name: str = None) -> Relation:
    """Rename attributes per *mapping* (old -> new)."""
    new_schema = relation.schema.rename(mapping)
    if name is not None:
        new_schema = RelationSchema(name, new_schema.attribute_objects)
    out = Relation(new_schema)
    for row in relation:
        out.insert(row.rebind(new_schema))
    return out


def equi_join(
    left: Relation,
    right: Relation,
    pairs: Sequence,
    name: str = None,
) -> Relation:
    """Join on ``left[a] == right[b]`` for each ``(a, b)`` in *pairs*.

    The output schema is the left schema followed by the right attributes
    that are not join targets.  Uses a hash join (index on the right side).
    """
    left_attrs = tuple(a for a, _ in pairs)
    right_attrs = tuple(b for _, b in pairs)
    right_keep = [
        a for a in right.schema.attribute_objects if a.name not in right_attrs
    ]
    conflicts = set(a.name for a in right_keep) & set(left.schema.attributes)
    if conflicts:
        raise ValueError(
            f"join would duplicate attributes {sorted(conflicts)}; rename first"
        )
    out_schema = RelationSchema(
        name or f"{left.schema.name}_join_{right.schema.name}",
        list(left.schema.attribute_objects) + right_keep,
    )
    right_keep_names = tuple(a.name for a in right_keep)
    index = right.index_on(right_attrs)
    out = Relation(out_schema)
    for lrow in left:
        # Read-only probe: the no-copy accessor avoids a bucket copy per row.
        for rrow in index.get_ref(lrow[left_attrs]):
            out.insert(Row(out_schema, lrow.values + rrow[right_keep_names]))
    return out


def natural_join(left: Relation, right: Relation, name: str = None) -> Relation:
    """Join on all shared attribute names (the paper's HOSP construction)."""
    shared = [a for a in left.schema.attributes if a in right.schema]
    if not shared:
        raise ValueError(
            f"no shared attributes between {left.schema.name!r} and "
            f"{right.schema.name!r}; natural join would be a cross product"
        )
    return equi_join(left, right, [(a, a) for a in shared], name=name)
