"""Multiple master relations in a single tagged schema (Sect. 2, remark (3)).

"Given master schemas Rm1, ..., Rmk, there exists a single master schema Rm
such that each instance Dm of Rm characterizes an instance of
(Dm1, ..., Dmk) of those schemas.  Here Rm has a special attribute id such
that σ_id=i(Rm) yields Dmi."

:func:`combine_masters` builds exactly that encoding: the combined schema is
the union of all source attributes plus a source-id column; attributes a
source lacks are NULL.  :func:`guard_for` produces the master-side guard
(``id = i``) that pins an editing rule to one source —
:class:`repro.core.rules.EditingRule` accepts it as ``master_guard``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.patterns import PatternTuple
from repro.engine.relation import Relation
from repro.engine.schema import Attribute, RelationSchema, STRING
from repro.engine.values import NULL

#: The paper's special attribute distinguishing the source relations.
SOURCE_ID = "__source__"


def combine_masters(
    named_relations: Mapping,
    name: str = "Rm_combined",
    source_attr: str = SOURCE_ID,
) -> Relation:
    """Encode several master relations into one tagged relation.

    *named_relations* maps a source id (any hashable, typically a string)
    to a :class:`Relation`.  Shared attribute names must carry the same
    domain across sources.
    """
    if not named_relations:
        raise ValueError("need at least one master relation")
    attributes = [Attribute(source_attr, STRING)]
    seen: dict = {}
    for source, relation in named_relations.items():
        for attr in relation.schema.attribute_objects:
            if attr.name == source_attr:
                raise ValueError(
                    f"source {source!r} already has a {source_attr!r} column"
                )
            previous = seen.get(attr.name)
            if previous is None:
                seen[attr.name] = attr.domain
                attributes.append(attr)
            elif previous != attr.domain:
                raise ValueError(
                    f"attribute {attr.name!r} has conflicting domains "
                    f"across sources"
                )
    schema = RelationSchema(name, attributes)
    combined = Relation(schema)
    for source, relation in named_relations.items():
        for row in relation:
            values = {a: NULL for a in schema.attributes}
            values[source_attr] = source
            values.update(row.to_dict())
            combined.insert(values)
    return combined


def select_source(combined: Relation, source, source_attr: str = SOURCE_ID):
    """``σ_id=i(Rm)``: the rows contributed by one source.

    Returns a fresh list (public API — callers may sort/mutate it without
    touching the combined relation's index buckets).
    """
    return combined.index_on((source_attr,)).get((source,))


def guard_for(source, source_attr: str = SOURCE_ID) -> PatternTuple:
    """The master-side guard pinning a rule to one source relation."""
    return PatternTuple({source_attr: source})


def split_rules_by_source(rules: Sequence, source_attr: str = SOURCE_ID) -> dict:
    """Group rules by the source their guard pins them to (None = unguarded)."""
    out: dict = {}
    for rule in rules:
        condition = rule.master_guard.get(source_attr)
        key = condition.value if condition is not None and condition.is_constant else None
        out.setdefault(key, []).append(rule)
    return out
