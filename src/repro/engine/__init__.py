"""In-memory relational substrate.

This subpackage provides the small database engine everything else is built
on: typed attribute domains, relation schemas, immutable rows, relation
instances with hash indexes, and the handful of relational-algebra operators
(select / project / join) that the paper's data preparation and the
direct-fix analysis (Theorem 5) need.

The engine is deliberately minimal but real: the HOSP dataset of Sect. 6 is
constructed by natural-joining three base tables exactly as the paper
describes, and the direct-fix consistency checks are evaluated both
in-memory and via rendered SQL (see :mod:`repro.engine.sql`).
"""

from repro.engine.csvio import (
    CsvRowStream,
    relation_from_csv,
    relation_to_csv,
    stream_rows_from_csv,
)
from repro.engine.index import HashIndex
from repro.engine.multi import (
    SOURCE_ID,
    combine_masters,
    guard_for,
    select_source,
    split_rules_by_source,
)
from repro.engine.query import equi_join, natural_join, project, rename, select
from repro.engine.relation import Relation
from repro.engine.remote import MasterServer, RemoteStore, RemoteStoreHandle
from repro.engine.store import (
    InMemoryStore,
    MemoryStoreHandle,
    MasterStore,
    SqliteStore,
    SqliteStoreHandle,
    StoreDetachedError,
    StoreError,
    StoreUnavailableError,
    as_master_store,
)
from repro.engine.schema import (
    Attribute,
    Domain,
    RelationSchema,
    finite_domain,
    INT,
    STRING,
)
from repro.engine.tuples import Row
from repro.engine.values import NULL, UNKNOWN, is_null, is_unknown

__all__ = [
    "Attribute",
    "CsvRowStream",
    "Domain",
    "HashIndex",
    "INT",
    "InMemoryStore",
    "MasterServer",
    "MemoryStoreHandle",
    "MasterStore",
    "RemoteStore",
    "RemoteStoreHandle",
    "NULL",
    "Relation",
    "RelationSchema",
    "Row",
    "SOURCE_ID",
    "STRING",
    "SqliteStore",
    "SqliteStoreHandle",
    "StoreDetachedError",
    "StoreError",
    "StoreUnavailableError",
    "UNKNOWN",
    "as_master_store",
    "combine_masters",
    "equi_join",
    "finite_domain",
    "guard_for",
    "is_null",
    "is_unknown",
    "natural_join",
    "project",
    "relation_from_csv",
    "relation_to_csv",
    "rename",
    "select",
    "stream_rows_from_csv",
    "select_source",
    "split_rules_by_source",
]
