"""Special values used throughout the library.

Two sentinels are distinguished, because the paper needs both:

* ``NULL`` — a *stored* missing value.  Input tuples may arrive with missing
  attributes (tuple ``t2`` of Fig. 1 has ``str`` and ``zip`` missing); the
  editing rules of Sect. 6 guard against it with ``tp[zip] = (nil)``
  patterns, which we model as "zip is not NULL".
* ``UNKNOWN`` — an *analysis* placeholder meaning "any value".  The
  consistency checker of Theorem 4 reasons about all input tuples marked by
  a region; attributes outside the region are represented by ``UNKNOWN``
  and, by the region semantics, are never read before being written.
"""

from __future__ import annotations


class _Singleton:
    """Base class for value sentinels: falsy, identity-compared, picklable."""

    _instance = None
    _repr = "?"

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return self._repr

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (self.__class__, ())

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


class NullType(_Singleton):
    """The stored missing value (SQL NULL / the paper's ``nil``)."""

    _repr = "NULL"


class UnknownType(_Singleton):
    """Placeholder for 'any value' during region-level static analysis."""

    _repr = "UNKNOWN"


NULL = NullType()
UNKNOWN = UnknownType()


def is_null(value) -> bool:
    """Return True iff *value* is the stored missing value."""
    return value is NULL


def is_unknown(value) -> bool:
    """Return True iff *value* is the analysis placeholder."""
    return value is UNKNOWN
