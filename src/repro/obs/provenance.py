"""Fix provenance: which rule and which master tuple produced a correction.

The paper's certain-fix guarantee is *per cell*: every value TransFix
writes is entailed by one editing rule firing against one matching master
tuple.  Guided Data Repair and weighted rule discovery (PAPERS.md) both
rank and audit fixes by exactly this attribution, so the batch engine
records it as plain data — one :class:`FixProvenance` per corrected cell —
when provenance collection is enabled (it is, by default, in
:class:`~repro.repair.batch.BatchRepairEngine`; bare
:class:`~repro.repair.certainfix.CertainFix` keeps it off).

Records are frozen and picklable (they cross the process-pool boundary
inside sessions) and surface in two places:

* :attr:`BatchResult.provenance <repro.repair.batch.BatchResult.provenance>`
  — per session, ``{attr: FixProvenance}`` for every rule-fixed cell;
* ``BatchReport.to_dict()["fixes_by_rule"]`` — the aggregate count of
  cells each rule fixed across the run.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FixProvenance:
    """Attribution of one rule-produced cell correction.

    ``master_key`` is the probe key ``tm[Xm]`` of the master tuple the rule
    matched — together with ``rule_index`` (position in Σ) it identifies
    the exact evidence behind the fix, which is what an auditor (or a
    GDR-style ranking loop) needs to replay or dispute it.
    """

    attr: str
    value: object
    rule_name: str
    rule_index: int
    master_key: tuple
    round_index: int = 0

    def describe(self) -> str:
        return (
            f"{self.attr} := {self.value!r} via rule "
            f"#{self.rule_index} ({self.rule_name}) on master key "
            f"{self.master_key!r} (round {self.round_index})"
        )


def session_provenance(session) -> dict:
    """``{attr: FixProvenance}`` for one fix session (last write wins).

    Rounds are replayed in order, so a cell corrected twice (possible when
    a later round re-validates through a different rule chain) reports the
    provenance of the value that actually survived.
    """
    out: dict = {}
    for round_log in session.rounds:
        for record in getattr(round_log, "provenance", ()):
            out[record.attr] = record
    return out


def count_fixes_by_rule(sessions) -> dict:
    """``{rule_name: fixed-cell count}`` across *sessions* (report rollup)."""
    out: dict = {}
    for session in sessions:
        for round_log in session.rounds:
            for record in getattr(round_log, "provenance", ()):
                out[record.rule_name] = out.get(record.rule_name, 0) + 1
    return out
