"""Reusable live-progress heartbeats for long-running work.

``batch-repair --progress`` prints one line per heartbeat interval while a
stream is being monitored::

    [batch-repair] 512/2000 (25.6%) | 843.2 tuples/s | ETA 1.8s | \
chase 92% | transfix 88% | suggest 97% | pid-811 421.0/s · pid-812 407.3/s

The reporter is deliberately engine-agnostic — it knows about *units done*,
optional totals, named rates and per-worker counts, nothing about repair —
because the ``serve-repair`` daemon (ROADMAP item 2) will attach the same
reporter to its per-request status stream.

Throttling: :meth:`ProgressReporter.advance` is cheap to call per chunk (a
monotonic-clock compare when the interval has not elapsed); a line is
emitted at most every ``interval`` seconds, plus one final summary from
:meth:`finish` (emitted even after a mid-run failure, so the last heartbeat
always reflects everything that completed).
"""

from __future__ import annotations

import sys
import time


class ProgressReporter:
    """Throttled heartbeat lines for a unit-counting loop.

    Parameters
    ----------
    label:
        Prefix of every heartbeat line (``[label] ...``).
    total:
        Expected unit count; enables the ``done/total (pct)`` prefix and
        the ETA estimate.  ``None`` = unknown (streaming input).
    interval:
        Minimum seconds between heartbeats (0 = every :meth:`advance`).
    stream:
        Where lines go (default ``sys.stderr`` — stdout stays clean for
        actual command output).
    unit:
        Unit name used in the rate display (``tuples/s``).
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        label: str = "progress",
        total: int = None,
        interval: float = 1.0,
        stream=None,
        unit: str = "tuples",
        clock=time.monotonic,
    ):
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self.label = label
        self.total = total
        self.interval = interval
        self.unit = unit
        self._stream = stream
        self._clock = clock
        self._started = None
        self._last_emit = None
        self.done = 0
        self.heartbeats = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ProgressReporter":
        """Reset the clock (called implicitly by the first advance)."""
        self._started = self._clock()
        self._last_emit = None
        self.done = 0
        self.heartbeats = 0
        return self

    def advance(self, n: int = 1, rates: dict = None,
                workers: dict = None) -> None:
        """Record *n* more completed units; maybe emit a heartbeat.

        ``rates`` maps display names to fractions in ``[0, 1]`` (rendered
        as percentages — cache hit rates); ``workers`` maps worker labels
        to their completed unit counts (rendered as per-worker
        throughput).
        """
        if self._started is None:
            self.start()
        self.done += n
        now = self._clock()
        if (
            self._last_emit is not None
            and now - self._last_emit < self.interval
        ):
            return
        self._emit(now, rates, workers)

    def finish(self, rates: dict = None, workers: dict = None) -> None:
        """Emit the final summary line (always, regardless of throttling)."""
        if self._started is None:
            self.start()
        self._emit(self._clock(), rates, workers, final=True)

    # -- rendering -----------------------------------------------------------

    def _emit(self, now: float, rates: dict, workers: dict,
              final: bool = False) -> None:
        self._last_emit = now
        self.heartbeats += 1
        elapsed = max(now - self._started, 1e-9)
        rate = self.done / elapsed
        parts = []
        if self.total:
            pct = 100.0 * self.done / self.total
            parts.append(f"{self.done}/{self.total} {self.unit} ({pct:.1f}%)")
        else:
            parts.append(f"{self.done} {self.unit}")
        parts.append(f"{rate:.1f} {self.unit}/s")
        if final:
            parts.append(f"done in {elapsed:.2f}s")
        elif self.total and rate > 0 and self.done < self.total:
            eta = (self.total - self.done) / rate
            parts.append(f"ETA {eta:.1f}s")
        for name, value in (rates or {}).items():
            parts.append(f"{name} {value:.0%}")
        if workers:
            per_worker = " · ".join(
                f"{label} {count / elapsed:.1f}/s"
                for label, count in sorted(workers.items())
            )
            parts.append(per_worker)
        stream = self._stream if self._stream is not None else sys.stderr
        print(f"[{self.label}] " + " | ".join(parts), file=stream, flush=True)
