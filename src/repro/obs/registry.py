"""The metrics registry: counters, gauges and reservoir histograms.

One :class:`MetricsRegistry` holds every live metric of a process behind a
single lock; hot paths talk to it through the module-level helpers in
:mod:`repro.obs` (``inc`` / ``observe`` / ``time_block``), which resolve to
this registry only while observability is enabled and to the shared
:class:`NullRegistry` otherwise — the null path is a handful of attribute
reads and no allocation, so instrumented code keeps its benchmarked
throughput when nobody is looking.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain-data and picklable:
the batch engine's process-pool workers each snapshot their private
registry and the parent merges them with :meth:`MetricsSnapshot.merge`,
which is associative — exactly the discipline ``MemoStats`` already
follows for the memo tables.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

#: Reservoir bound per histogram: quantiles are computed over the most
#: recent this-many observations (a sliding window, not a decaying
#: sample — recent latency is what an operator is debugging).
DEFAULT_RESERVOIR = 512


def label_key(labels: dict) -> tuple:
    """Canonical, hashable, picklable form of a label set."""
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class _NullTimer:
    """Shared no-op context manager for disabled instrumentation.

    Stateless, so one instance is safely reentrant and thread-shared.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_TIMER = _NullTimer()


class NullRegistry:
    """The disabled-observability registry: every operation is a no-op.

    Installed by default (see :func:`repro.obs.get_registry`); the point is
    that instrumentation sites never need their own ``if enabled`` checks
    beyond the one the :mod:`repro.obs` helpers already perform.
    """

    enabled = False

    def inc(self, name: str, value: float = 1, **labels) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels) -> None:
        pass

    def observe(self, name: str, value: float, **labels) -> None:
        pass

    def time_block(self, name: str, **labels):
        return NULL_TIMER

    def snapshot(self) -> "MetricsSnapshot":
        return MetricsSnapshot()


NULL_REGISTRY = NullRegistry()


@dataclass(frozen=True)
class HistogramSnapshot:
    """Plain-data view of one histogram series (picklable, mergeable)."""

    count: int = 0
    total: float = 0.0
    min: float = None
    max: float = None
    #: The bounded reservoir of recent observations (quantile source).
    samples: tuple = ()

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The *q*-quantile (0..1) of the reservoir, nearest-rank.

        Returns 0.0 on an empty reservoir — exposition code renders every
        series it has without special-casing emptiness.
        """
        if not self.samples:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two series; associative (reservoirs concatenate)."""
        if self.min is None:
            low = other.min
        elif other.min is None:
            low = self.min
        else:
            low = min(self.min, other.min)
        if self.max is None:
            high = other.max
        elif other.max is None:
            high = self.max
        else:
            high = max(self.max, other.max)
        return HistogramSnapshot(
            count=self.count + other.count,
            total=self.total + other.total,
            min=low,
            max=high,
            samples=self.samples + other.samples,
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Picklable point-in-time copy of a registry.

    Keys are ``(name, label_key)`` pairs; values are plain numbers (or
    :class:`HistogramSnapshot`).  :meth:`merge` is associative — counters
    add, gauges last-write-wins, histograms concatenate — so process-pool
    workers' snapshots fold together in any grouping.
    """

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)  # last write wins (associative)
        histograms = dict(self.histograms)
        for key, hist in other.histograms.items():
            mine = histograms.get(key)
            histograms[key] = hist if mine is None else mine.merge(hist)
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def counter_value(self, name: str, **labels) -> float:
        return self.counters.get((name, label_key(labels)), 0)

    def gauge_value(self, name: str, **labels) -> float:
        return self.gauges.get((name, label_key(labels)), 0.0)

    def histogram_value(self, name: str, **labels) -> HistogramSnapshot:
        return self.histograms.get(
            (name, label_key(labels)), HistogramSnapshot()
        )

    def series_names(self) -> set:
        """Every distinct metric name present in the snapshot."""
        return (
            {name for name, _ in self.counters}
            | {name for name, _ in self.gauges}
            | {name for name, _ in self.histograms}
        )


class _Histogram:
    """Mutable histogram state: exact count/sum/min/max + ring reservoir."""

    __slots__ = ("count", "total", "min", "max", "samples", "_next", "_cap")

    def __init__(self, cap: int):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.samples: list = []
        self._next = 0
        self._cap = cap

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < self._cap:
            self.samples.append(value)
        else:  # overwrite oldest: the reservoir is a sliding window
            self.samples[self._next] = value
            self._next = (self._next + 1) % self._cap

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            count=self.count,
            total=self.total,
            min=self.min,
            max=self.max,
            samples=tuple(self.samples),
        )


class _Timer:
    """Context manager recording its elapsed wall time into a histogram."""

    __slots__ = ("_registry", "_name", "_labels", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: dict):
        self._registry = registry
        self._name = name
        self._labels = labels
        self._started = None

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._started
        self._registry.observe(self._name, elapsed, **self._labels)
        return False


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms.

    All series are created lazily on first touch and keyed by
    ``(name, sorted label items)``.  One lock serializes every update; the
    operations inside the hold are integer/float arithmetic and a list
    write, so contention is negligible next to any instrumented work.
    """

    enabled = True

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR):
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        self._reservoir = reservoir
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    # -- updates -------------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels) -> None:
        key = (name, label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = (name, label_key(labels))
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = (name, label_key(labels))
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram(self._reservoir)
            hist.observe(value)

    def time_block(self, name: str, **labels) -> _Timer:
        """A context manager that observes its elapsed seconds on exit."""
        return _Timer(self, name, labels)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    key: hist.snapshot()
                    for key, hist in self._histograms.items()
                },
            )

    def clear(self) -> None:
        """Drop every series (tests and long-lived services)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
