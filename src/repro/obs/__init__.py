"""``repro.obs`` — unified telemetry: metrics, spans, provenance, progress.

Zero-dependency observability for the whole stack: a thread-safe
:class:`~repro.obs.registry.MetricsRegistry` (counters, gauges,
bounded-reservoir histograms with p50/p95/p99), span timing via context
managers on the hot paths, per-fix provenance records, Prometheus/JSON
exposition, and a reusable :class:`~repro.obs.progress.ProgressReporter`
behind ``batch-repair --progress`` (and, next, the ``serve-repair``
daemon's status stream — ROADMAP item 2).

**Off by default.**  The process-global registry starts as the no-op
:data:`~repro.obs.registry.NULL_REGISTRY`; every instrumentation site goes
through the helpers below, which cost an attribute check and a no-op call
while disabled — the benchmarked hot-path throughput is preserved.  Call
:func:`enable` (or pass ``--progress`` / use ``serve-master``, which
enable what they need) to start recording, :func:`snapshot` to read, and
the :mod:`repro.obs.render` functions to expose.

Enable-before-build: long-lived engines read the global registry when they
record, so ``enable()`` takes effect immediately, even for engines built
earlier.  Process-pool workers each record into their *own* process's
registry; merge their picklable snapshots with
:meth:`MetricsSnapshot.merge` (associative, like ``MemoStats``).

Metric and span reference (mirroring the ``repro.lint`` diagnostic table)
-------------------------------------------------------------------------

====================================  =========  ==========================  ================================================
Name                                  Kind       Labels                      Recorded by / meaning
====================================  =========  ==========================  ================================================
repro_fix_seconds                     histogram  —                           ``CertainFix.fix`` span: one monitored tuple
repro_sessions_total                  counter    completed=true|false        sessions finished (fully validated or not)
repro_rounds_total                    counter    —                           interaction rounds across all sessions
repro_region_precompute_seconds       histogram  —                           ``CompCRegion`` span (per shared precompute)
repro_bdd_build_seconds               histogram  —                           Suggest⁺ BDD miss span (fresh suggestion + append)
repro_chase_memo_total                counter    result=hit|miss             batch chase memo lookups
repro_transfix_memo_total             counter    result=hit|miss             batch TransFix memo lookups
repro_cache_invalidations_total       counter    —                           master-version moves reconciling shared caches
repro_store_delta_purge_total         counter    —                           version moves resolved by per-key delta purges
repro_store_full_drop_total           counter    —                           version moves falling back to the full cache drop
repro_store_probe_seconds             histogram  backend, op=probe|many      ``MasterStore.probe``/``probe_many`` span per backend
repro_lint_pass_seconds               histogram  code                        one lint pass execution (per diagnostic code)
repro_lint_budget_exhausted_total     counter    code                        certification budget exhaustions (E205 = the
                                                                             exact region check degraded to the sampled
                                                                             fallback, I208 = extension search went
                                                                             closure-level)
repro_lint_certify_cache_total        counter    result                      certification cache outcomes (hit, miss,
                                                                             delta_kept, recompute, full_drop)
repro_shard_probe_seconds             histogram  shard                       ``ShardedStore`` per-shard scatter-leg span
                                                                             (one fan-out = one observation per shard asked)
repro_shard_fanout_width              histogram  —                           shards asked per scatter-gather dispatch
repro_shard_retries_total             counter    shard                       idempotent shard calls replayed after backoff
repro_shard_failures_total            counter    shard                       shard calls that raised unavailability
repro_remote_request_seconds          histogram  endpoint                    ``RemoteStore`` HTTP request span (client side)
repro_remote_requests_total           counter    endpoint, status            ``RemoteStore`` request outcomes (status=ok|error)
repro_remote_reconnects_total         counter    —                           client connections re-opened
repro_server_request_seconds          histogram  endpoint                    ``MasterServer`` per-endpoint handling span
repro_server_requests_total           counter    endpoint, status            ``MasterServer`` responses by HTTP status
repro_server_store_rows               gauge      —                           served store size (refreshed per scrape)
repro_server_store_version            gauge      —                           served store version (refreshed per scrape)
repro_server_probe_cache_hits         gauge      —                           served store LRU hits (backends with a cache)
repro_server_probe_cache_misses       gauge      —                           served store LRU misses
repro_server_probe_cache_size         gauge      —                           served store LRU resident lines
repro_server_probe_cache_evictions    gauge      —                           LRU lines evicted by capacity (``--probe-cache-size``)
repro_server_probe_cache_purged       gauge      —                           LRU lines removed by per-key delta purges
repro_server_store_probe_ref_calls    gauge      —                           served store ``probe_ref`` calls (repair hot path)
====================================  =========  ==========================  ================================================

The server-side series live in the :class:`MasterServer`'s *own* always-on
registry (scraping must work without a client-side ``enable()``); all
other series record into the process-global registry guarded by
:func:`enable` / :func:`disable`.
"""

from __future__ import annotations

import threading

from repro.obs.progress import ProgressReporter
from repro.obs.provenance import (
    FixProvenance,
    count_fixes_by_rule,
    session_provenance,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    NULL_TIMER,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
)
from repro.obs.render import (
    parse_prometheus_text,
    render_prometheus,
    snapshot_from_dict,
    snapshot_from_json,
    snapshot_to_dict,
    snapshot_to_json,
)

__all__ = [
    "FixProvenance",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_TIMER",
    "ProgressReporter",
    "count_fixes_by_rule",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "inc",
    "observe",
    "parse_prometheus_text",
    "render_prometheus",
    "session_provenance",
    "set_gauge",
    "set_registry",
    "snapshot",
    "snapshot_from_dict",
    "snapshot_from_json",
    "snapshot_to_dict",
    "snapshot_to_json",
    "time_block",
]

_STATE_LOCK = threading.Lock()
_REGISTRY = NULL_REGISTRY


def get_registry():
    """The process-global registry (the no-op one while disabled)."""
    return _REGISTRY


def set_registry(registry) -> None:
    """Install *registry* (a ``MetricsRegistry`` or ``NullRegistry``)."""
    global _REGISTRY
    with _STATE_LOCK:
        _REGISTRY = registry


def enable(registry: MetricsRegistry = None) -> MetricsRegistry:
    """Turn recording on; returns the active registry.

    Idempotent: when already enabled (and no explicit *registry* is
    given) the current registry is kept, so two libraries calling
    ``enable()`` share one stream instead of clobbering each other.
    """
    global _REGISTRY
    with _STATE_LOCK:
        if registry is not None:
            _REGISTRY = registry
        elif not _REGISTRY.enabled:
            _REGISTRY = MetricsRegistry()
        return _REGISTRY


def disable() -> None:
    """Restore the no-op registry (existing data is discarded)."""
    set_registry(NULL_REGISTRY)


def enabled() -> bool:
    return _REGISTRY.enabled


# -- hot-path helpers ----------------------------------------------------------
#
# Instrumentation sites call these instead of holding a registry: while
# disabled each is one global read, one attribute check and a constant
# return — cheap enough for per-tuple (and per-probe on slow backends)
# use without an `if obs.enabled()` at every site.


def inc(name: str, value: float = 1, **labels) -> None:
    registry = _REGISTRY
    if registry.enabled:
        registry.inc(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    registry = _REGISTRY
    if registry.enabled:
        registry.observe(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    registry = _REGISTRY
    if registry.enabled:
        registry.set_gauge(name, value, **labels)


def time_block(name: str, **labels):
    """Span context manager: times its body into histogram *name*.

    Returns the shared no-op context manager while disabled (no
    allocation, reentrant, thread-safe).
    """
    registry = _REGISTRY
    if registry.enabled:
        return registry.time_block(name, **labels)
    return NULL_TIMER


def snapshot() -> MetricsSnapshot:
    """Snapshot the global registry (empty while disabled)."""
    return _REGISTRY.snapshot()
