"""Exposition: render a :class:`MetricsSnapshot` as Prometheus text or JSON.

Two formats, one source of truth:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): one ``# TYPE`` header per metric name, label values
  escaped per the spec, histograms rendered as *summaries* (``quantile``
  series from the reservoir plus ``_sum`` / ``_count``).  This is what
  ``GET /metrics`` on ``serve-master`` returns and what the CI job
  scrapes.
* :func:`snapshot_to_json` / :func:`snapshot_from_json` — a lossless JSON
  round-trip of the snapshot (reservoirs included), used by
  ``GET /metrics?format=json``, ``repro metrics --format json`` and the
  benchmarks.

:func:`parse_prometheus_text` is the strict validator the tests and the
``make metrics-smoke`` gate use: it rejects duplicate ``# TYPE`` headers,
duplicate series, and malformed lines, and un-escapes label values so
escaping bugs round-trip into assertion failures instead of silently
corrupting dashboards.
"""

from __future__ import annotations

import json
import re

from repro.obs.registry import HistogramSnapshot, MetricsSnapshot

#: Quantiles exported for every histogram (the p50/p95/p99 trio).
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    out = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        if nxt == "n":
            out.append("\n")
        elif nxt in ("\\", '"'):
            out.append(nxt)
        else:  # lenient: unknown escape passes through
            out.append(ch)
            out.append(nxt)
    return "".join(out)


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit anyway
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _render_labels(labels: tuple, extra: tuple = ()) -> str:
    items = tuple(labels) + tuple(extra)
    if not items:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in items
    )
    return "{" + body + "}"


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid Prometheus metric name {name!r}")
    return name


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """The Prometheus text exposition (0.0.4) of *snapshot*.

    Series are grouped under exactly one ``# TYPE`` header per metric
    name and emitted in sorted order, so the output is deterministic and
    never contains duplicate headers or series.
    """
    lines = []

    by_name: dict = {}
    for (name, labels), value in sorted(snapshot.counters.items()):
        by_name.setdefault(_check_name(name), []).append((labels, value))
    for name, series in by_name.items():
        lines.append(f"# TYPE {name} counter")
        for labels, value in series:
            lines.append(
                f"{name}{_render_labels(labels)} {_format_value(value)}"
            )

    by_name = {}
    for (name, labels), value in sorted(snapshot.gauges.items()):
        by_name.setdefault(_check_name(name), []).append((labels, value))
    for name, series in by_name.items():
        lines.append(f"# TYPE {name} gauge")
        for labels, value in series:
            lines.append(
                f"{name}{_render_labels(labels)} {_format_value(value)}"
            )

    by_name = {}
    for (name, labels), hist in sorted(snapshot.histograms.items()):
        by_name.setdefault(_check_name(name), []).append((labels, hist))
    for name, series in by_name.items():
        lines.append(f"# TYPE {name} summary")
        for labels, hist in series:
            for q in SUMMARY_QUANTILES:
                rendered = _render_labels(labels, (("quantile", str(q)),))
                lines.append(
                    f"{name}{rendered} {_format_value(hist.quantile(q))}"
                )
            lines.append(
                f"{name}_sum{_render_labels(labels)} "
                f"{_format_value(hist.total)}"
            )
            lines.append(
                f"{name}_count{_render_labels(labels)} {hist.count}"
            )
    return "\n".join(lines) + "\n"


_SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def parse_prometheus_text(text: str) -> dict:
    """Strictly parse exposition *text*; the tests' and smoke gate's oracle.

    Returns ``{(name, ((label, value), ...)): float}``.  Raises
    ``ValueError`` on any malformed line, duplicate ``# TYPE`` header, or
    duplicate series — the failure modes a real Prometheus server would
    reject or silently misread.
    """
    series: dict = {}
    types: dict = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(
                        f"line {lineno}: malformed TYPE header {line!r}"
                    )
                _, _, name, kind = parts
                if name in types:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE header for {name}"
                    )
                if kind not in ("counter", "gauge", "summary", "histogram",
                                "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                types[name] = kind
            continue
        match = _SERIES_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed series {line!r}")
        labels = []
        body = match.group("labels")
        if body:
            position = 0
            while position < len(body):
                label = _LABEL_RE.match(body, position)
                if label is None:
                    raise ValueError(
                        f"line {lineno}: malformed labels {body!r}"
                    )
                labels.append(
                    (label.group("name"),
                     _unescape_label(label.group("value")))
                )
                position = label.end()
        key = (match.group("name"), tuple(labels))
        if key in series:
            raise ValueError(f"line {lineno}: duplicate series {key}")
        try:
            series[key] = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: non-numeric value {match.group('value')!r}"
            ) from exc
    return series


# -- JSON round-trip -----------------------------------------------------------


def _key_to_json(key: tuple) -> list:
    name, labels = key
    return [name, [list(item) for item in labels]]


def _key_from_json(key: list) -> tuple:
    name, labels = key
    return name, tuple(tuple(item) for item in labels)


def snapshot_to_dict(snapshot: MetricsSnapshot) -> dict:
    """JSON-serializable form of *snapshot* (lossless)."""
    return {
        "counters": [
            {"series": _key_to_json(key), "value": value}
            for key, value in sorted(snapshot.counters.items())
        ],
        "gauges": [
            {"series": _key_to_json(key), "value": value}
            for key, value in sorted(snapshot.gauges.items())
        ],
        "histograms": [
            {
                "series": _key_to_json(key),
                "count": hist.count,
                "sum": hist.total,
                "min": hist.min,
                "max": hist.max,
                "samples": list(hist.samples),
            }
            for key, hist in sorted(snapshot.histograms.items())
        ],
    }


def snapshot_from_dict(payload: dict) -> MetricsSnapshot:
    """Inverse of :func:`snapshot_to_dict` (exact round-trip)."""
    return MetricsSnapshot(
        counters={
            _key_from_json(entry["series"]): entry["value"]
            for entry in payload.get("counters", ())
        },
        gauges={
            _key_from_json(entry["series"]): entry["value"]
            for entry in payload.get("gauges", ())
        },
        histograms={
            _key_from_json(entry["series"]): HistogramSnapshot(
                count=entry["count"],
                total=entry["sum"],
                min=entry["min"],
                max=entry["max"],
                samples=tuple(entry["samples"]),
            )
            for entry in payload.get("histograms", ())
        },
    )


def snapshot_to_json(snapshot: MetricsSnapshot, indent: int = None) -> str:
    return json.dumps(snapshot_to_dict(snapshot), indent=indent)


def snapshot_from_json(text: str) -> MetricsSnapshot:
    return snapshot_from_dict(json.loads(text))
