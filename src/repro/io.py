"""Serialization: rule sets and regions as plain JSON-able dictionaries.

Editing rules are configuration, not code — deployments keep them in files,
review them, and diff them ("editing rules can be extracted from business
rules", Sect. 1).  This module round-trips every construct through plain
dictionaries: pattern values (constants, negations, wildcards, NULL),
pattern tuples, editing rules (including master-side guards), and regions.

``dumps``/``loads`` wrap :mod:`json` for convenience; the dict forms work
with any codec (YAML, TOML...).
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro.core.patterns import (
    ANY,
    Const,
    NotConst,
    PatternTableau,
    PatternTuple,
    PatternValue,
)
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.values import NULL


def _value_to_obj(value):
    if value is NULL:
        return {"null": True}
    return value


def _value_from_obj(obj):
    if isinstance(obj, Mapping) and obj.get("null") is True:
        return NULL
    return obj


def pattern_value_to_dict(condition: PatternValue) -> dict:
    """One pattern condition as a dict (kind + value)."""
    if condition.is_wildcard:
        return {"kind": "any"}
    if condition.is_constant:
        return {"kind": "const", "value": _value_to_obj(condition.value)}
    return {"kind": "not", "value": _value_to_obj(condition.value)}


def pattern_value_from_dict(obj: Mapping) -> PatternValue:
    kind = obj.get("kind")
    if kind == "any":
        return ANY
    if kind == "const":
        return Const(_value_from_obj(obj["value"]))
    if kind == "not":
        return NotConst(_value_from_obj(obj["value"]))
    raise ValueError(f"unknown pattern value kind {kind!r}")


def pattern_tuple_to_dict(pattern: PatternTuple) -> dict:
    return {
        "attrs": list(pattern.attrs),
        "conditions": {
            attr: pattern_value_to_dict(condition)
            for attr, condition in pattern.items()
        },
    }


def pattern_tuple_from_dict(obj: Mapping) -> PatternTuple:
    conditions = obj.get("conditions", {})
    attrs = obj.get("attrs", list(conditions))
    return PatternTuple(
        {a: pattern_value_from_dict(conditions[a]) for a in attrs}
    )


def rule_to_dict(rule: EditingRule) -> dict:
    """One editing rule as a plain dictionary."""
    out = {
        "name": rule.name,
        "lhs": list(rule.lhs),
        "lhs_m": list(rule.lhs_m),
        "rhs": rule.rhs,
        "rhs_m": rule.rhs_m,
        "pattern": pattern_tuple_to_dict(rule.pattern),
    }
    if len(rule.master_guard):
        out["master_guard"] = pattern_tuple_to_dict(rule.master_guard)
    return out


def rule_from_dict(obj: Mapping) -> EditingRule:
    return EditingRule(
        tuple(obj["lhs"]),
        tuple(obj["lhs_m"]),
        obj["rhs"],
        obj["rhs_m"],
        pattern_tuple_from_dict(obj.get("pattern", {})),
        name=obj.get("name"),
        master_guard=(
            pattern_tuple_from_dict(obj["master_guard"])
            if "master_guard" in obj
            else None
        ),
    )


def rules_to_dicts(rules: Iterable) -> list:
    return [rule_to_dict(rule) for rule in rules]


def rules_from_dicts(objs: Iterable) -> list:
    return [rule_from_dict(obj) for obj in objs]


def region_to_dict(region: Region) -> dict:
    return {
        "attrs": list(region.attrs),
        "patterns": [
            pattern_tuple_to_dict(pattern) for pattern in region.tableau
        ],
    }


def region_from_dict(obj: Mapping) -> Region:
    attrs = tuple(obj["attrs"])
    tableau = PatternTableau(
        attrs,
        [pattern_tuple_from_dict(p) for p in obj.get("patterns", [])],
    )
    return Region(attrs, tableau)


def dumps(rules: Iterable, indent: int = 2) -> str:
    """A rule set as a JSON document."""
    return json.dumps({"rules": rules_to_dicts(rules)}, indent=indent)


def loads(text: str) -> list:
    """Parse a rule set from a JSON document produced by :func:`dumps`."""
    document = json.loads(text)
    return rules_from_dicts(document["rules"])
