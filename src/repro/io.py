"""Serialization: rule sets and regions as plain JSON-able dictionaries.

Editing rules are configuration, not code — deployments keep them in files,
review them, and diff them ("editing rules can be extracted from business
rules", Sect. 1).  This module round-trips every construct through plain
dictionaries: pattern values (constants, negations, wildcards, NULL),
pattern tuples, editing rules (including master-side guards), and regions.

``dumps``/``loads`` wrap :mod:`json` for convenience; the dict forms work
with any codec (YAML, TOML...).
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro.core.patterns import (
    ANY,
    Const,
    NotConst,
    PatternTableau,
    PatternTuple,
    PatternValue,
)
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.values import NULL


def _value_to_obj(value):
    if value is NULL:
        return {"null": True}
    return value


def _value_from_obj(obj):
    if isinstance(obj, Mapping) and obj.get("null") is True:
        return NULL
    return obj


def pattern_value_to_dict(condition: PatternValue) -> dict:
    """One pattern condition as a dict (kind + value)."""
    if condition.is_wildcard:
        return {"kind": "any"}
    if condition.is_constant:
        return {"kind": "const", "value": _value_to_obj(condition.value)}
    return {"kind": "not", "value": _value_to_obj(condition.value)}


def pattern_value_from_dict(obj: Mapping) -> PatternValue:
    kind = obj.get("kind")
    if kind == "any":
        return ANY
    if kind == "const":
        return Const(_value_from_obj(obj["value"]))
    if kind == "not":
        return NotConst(_value_from_obj(obj["value"]))
    raise ValueError(f"unknown pattern value kind {kind!r}")


def pattern_tuple_to_dict(pattern: PatternTuple) -> dict:
    return {
        "attrs": list(pattern.attrs),
        "conditions": {
            attr: pattern_value_to_dict(condition)
            for attr, condition in pattern.items()
        },
    }


def pattern_tuple_from_dict(obj: Mapping) -> PatternTuple:
    conditions = obj.get("conditions", {})
    attrs = obj.get("attrs", list(conditions))
    return PatternTuple(
        {a: pattern_value_from_dict(conditions[a]) for a in attrs}
    )


def rule_to_dict(rule: EditingRule) -> dict:
    """One editing rule as a plain dictionary."""
    out = {
        "name": rule.name,
        "lhs": list(rule.lhs),
        "lhs_m": list(rule.lhs_m),
        "rhs": rule.rhs,
        "rhs_m": rule.rhs_m,
        "pattern": pattern_tuple_to_dict(rule.pattern),
    }
    if len(rule.master_guard):
        out["master_guard"] = pattern_tuple_to_dict(rule.master_guard)
    return out


def rule_from_dict(obj: Mapping) -> EditingRule:
    return EditingRule(
        tuple(obj["lhs"]),
        tuple(obj["lhs_m"]),
        obj["rhs"],
        obj["rhs_m"],
        pattern_tuple_from_dict(obj.get("pattern", {})),
        name=obj.get("name"),
        master_guard=(
            pattern_tuple_from_dict(obj["master_guard"])
            if "master_guard" in obj
            else None
        ),
    )


def rules_to_dicts(rules: Iterable) -> list:
    return [rule_to_dict(rule) for rule in rules]


def rules_from_dicts(objs: Iterable) -> list:
    return [rule_from_dict(obj) for obj in objs]


def region_to_dict(region: Region) -> dict:
    return {
        "attrs": list(region.attrs),
        "patterns": [
            pattern_tuple_to_dict(pattern) for pattern in region.tableau
        ],
    }


def region_from_dict(obj: Mapping) -> Region:
    attrs = tuple(obj["attrs"])
    tableau = PatternTableau(
        attrs,
        [pattern_tuple_from_dict(p) for p in obj.get("patterns", [])],
    )
    return Region(attrs, tableau)


def dumps(rules: Iterable, indent: int = 2, region: Region = None) -> str:
    """A rule set (optionally with a declared region) as a JSON document."""
    document = {"rules": rules_to_dicts(rules)}
    if region is not None:
        document["region"] = region_to_dict(region)
    return json.dumps(document, indent=indent)


def loads(text: str) -> list:
    """Parse a rule set from a JSON document produced by :func:`dumps`."""
    document = json.loads(text)
    return rules_from_dicts(document["rules"])


def load_document(text: str) -> tuple:
    """Parse a rule document fully: ``(rules, region_or_None, rule_lines)``.

    ``rule_lines[i]`` is the 1-based source line of rule *i*'s opening
    brace (``None`` when the scanner cannot find it) — the anchor SARIF
    ``physicalLocation`` regions point at.
    """
    document = json.loads(text)
    rules = rules_from_dicts(document["rules"])
    region = (
        region_from_dict(document["region"])
        if "region" in document
        else None
    )
    return rules, region, rule_source_lines(text, len(rules))


def rule_source_lines(text: str, count: int = None) -> list:
    """1-based source line of each top-level object in the ``"rules"`` array.

    A small string-aware scanner, not a parser: it walks *text* once,
    tracks bracket depth outside JSON strings, finds the array opened
    right after the top-level ``"rules"`` key, and records the line of
    every ``{`` at depth ``rules-array + 1``.  Returns ``[None] * count``
    when the document does not look like :func:`dumps` output.
    """
    lines: list = []
    line = 1
    depth = 0
    in_string = False
    escaped = False
    string_start = None  # (line, content so far) of the string being read
    pending_key = None  # last completed string, a candidate object key
    rules_depth = None  # bracket depth of the "rules" array, once entered
    expect_rules_array = False
    for ch in text:
        if ch == "\n":
            line += 1
        if in_string:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
                pending_key = string_start[1]
            elif string_start is not None:
                string_start = (string_start[0], string_start[1] + ch)
            continue
        if ch == '"':
            in_string = True
            escaped = False
            string_start = (line, "")
            continue
        if ch == ":":
            if depth == 1 and pending_key == "rules":
                expect_rules_array = True
            continue
        if ch in "{[":
            if ch == "[" and expect_rules_array:
                rules_depth = depth
                expect_rules_array = False
            elif ch == "{" and rules_depth is not None and depth == rules_depth + 1:
                lines.append(line)
            depth += 1
            pending_key = None
            continue
        if ch in "}]":
            depth -= 1
            if rules_depth is not None and depth == rules_depth:
                rules_depth = None  # left the rules array
            continue
        if ch not in " \t\r\n,":
            expect_rules_array = False
    if count is not None and len(lines) != count:
        return [None] * count
    return lines
