"""Write the shipped HOSP/DBLP rule sets + masters as lintable files.

The CI lint gate (``make lint-rules``) runs ``repro lint --fail-on error``
over the rule sets this repo ships; those live as in-memory generators
(:mod:`repro.datasets`), so this module materialises them::

    python -m repro.lint.fixtures --out-dir /tmp/lint-fixtures

writes ``{hosp,dblp}.rules.json`` and ``{hosp,dblp}.master.csv`` with the
same generator parameters the test suite pins golden lint outputs for.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro import io as rule_io
from repro.datasets import make_dblp, make_hosp
from repro.engine.csvio import relation_to_csv

#: The bundle parameters the golden lint tests pin (tests/test_lint.py).
BUNDLES = {
    "hosp": lambda: make_hosp(num_hospitals=30, num_measures=5, seed=7),
    "dblp": lambda: make_dblp(
        num_papers=150, num_authors=60, num_venues=12, seed=11
    ),
}


def write_fixtures(out_dir) -> list:
    """Materialise every bundle under *out_dir*; returns written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for name, build in BUNDLES.items():
        bundle = build()
        rules_path = out / f"{name}.rules.json"
        rules_path.write_text(rule_io.dumps(bundle.rules) + "\n")
        master_path = out / f"{name}.master.csv"
        relation_to_csv(bundle.master, master_path)
        written.extend([rules_path, master_path])
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out-dir", default="/tmp/lint-fixtures",
        help="directory to write rule/master fixture files into",
    )
    args = parser.parse_args(argv)
    for path in write_fixtures(args.out_dir):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
