"""Master-aware lint passes: findings that need ``Dm`` itself.

These passes read master data through the :class:`MasterStore` seam, so
they work identically against memory, sqlite, and remote backends.  The
underlying questions (consistency of a rule program, Theorems 1–2) are
coNP-complete, so every pass here is *bounded*: scans stop at
``LintContext.max_master_rows`` and the confluence search chases at most
``max_witness_pairs`` constructed inputs under a
``max_chase_states``-bounded exhaustive chase.  A finding is therefore
always a concrete witness; silence is "no witness within budget", not a
proof of absence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.chase import ChaseExplosion, explore_fixes
from repro.core.rules import EditingRule
from repro.engine.values import NULL, UNKNOWN
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import MASTER, LintContext, lint_pass


def _master_conditions(rule: EditingRule) -> List[Tuple[str, object]]:
    """The master-side conditions a tuple must pass to ever fire *rule*.

    The guard applies directly; a pattern condition on a match-key
    attribute ``a ∈ X`` transfers to ``λφ(a)`` because any input the rule
    applies to satisfies ``t[a] = tm[λφ(a)]`` and ``t[a] ≈ tp[a]``.
    """
    conditions = [
        (attr, cond) for attr, cond in rule.master_guard.items()
        if not cond.is_wildcard
    ]
    for attr, cond in rule.pattern.items():
        if cond.is_wildcard or attr not in rule.lhs:
            continue
        conditions.append((rule.master_attr_of(attr), cond))
    return conditions


def _eligible(tm, conditions: List[Tuple[str, object]]) -> bool:
    try:
        return all(cond.matches(tm[attr]) for attr, cond in conditions)
    except KeyError:
        return False  # unknown master attr: E101 territory, not ours


def _rule_is_typed(ctx: LintContext, rule: EditingRule) -> bool:
    """Whether every master attribute the rule names exists (else the pass
    would crash on E101 ground — structural findings own that)."""
    master_attrs = set(rule.lhs_m) | {rule.rhs_m} | set(rule.master_guard.attrs)
    return all(a in ctx.master_schema for a in master_attrs)


@lint_pass(
    "W201", "zero-support", MASTER,
    "No master tuple can ever fire the rule (zero support in Dm).",
)
def check_zero_support(ctx: LintContext) -> List[Diagnostic]:
    """A rule with no eligible master tuple is dead weight in *this*
    deployment: every probe it ever makes comes back empty."""
    store = ctx.store
    if store is None:
        return []
    if len(store) == 0:
        return [Diagnostic(
            code="W201",
            severity=Severity.WARNING,
            message=(
                "master data is empty: no rule can ever fire and no "
                "certain region exists"
            ),
            remedy="load master tuples before relying on any repair",
            data={"master_rows": 0},
        )]
    if len(store) > ctx.max_master_rows:
        return []  # scan over budget: stay silent rather than stall
    targets = []
    for index, rule in enumerate(ctx.rules):
        if not _rule_is_typed(ctx, rule):
            continue
        targets.append((index, rule, _master_conditions(rule)))
    unsupported = {index for index, _, _ in targets}
    for tm in store:
        if not unsupported:
            break
        for index, rule, conditions in targets:
            if index in unsupported and _eligible(tm, conditions):
                unsupported.discard(index)
    out = []
    for index, rule, conditions in targets:
        if index not in unsupported:
            continue
        out.append(Diagnostic(
            code="W201",
            severity=Severity.WARNING,
            rule=rule.name,
            rule_index=index,
            message=(
                f"zero support: none of the {len(store)} master tuples "
                f"satisfies the rule's master guard and transferred "
                f"pattern conditions, so the rule can never fire"
            ),
            remedy=(
                "check the guard/pattern constants against the master "
                "data, or drop the rule for this deployment"
            ),
            data={"master_rows": len(store)},
        ))
    return out


@lint_pass(
    "E203", "ambiguous-master-key", MASTER,
    "A rule's master key columns are not a key of (the eligible part of) "
    "Dm: probes return conflicting values.",
)
def check_ambiguous_master_key(ctx: LintContext) -> List[Diagnostic]:
    """Certain fixes assume ``Dm`` is consistent and duplicate-free
    (Sect. 2): when two eligible master tuples agree on ``Xm`` but
    disagree on ``Bm``, one probe yields two contradictory fixes and the
    unique-fix guarantee is gone for every input hitting that key."""
    store = ctx.store
    if store is None or not 0 < len(store) <= ctx.max_master_rows:
        return []
    out = []
    for index, rule in enumerate(ctx.rules):
        if not _rule_is_typed(ctx, rule):
            continue
        conditions = _master_conditions(rule)
        values_by_key: Dict[tuple, set] = {}
        witness: Optional[tuple] = None
        for tm in store:
            if not _eligible(tm, conditions):
                continue
            key = tuple(tm[a] for a in rule.lhs_m)
            seen = values_by_key.setdefault(key, set())
            seen.add(tm[rule.rhs_m])
            if len(seen) > 1:
                witness = key
                break
        if witness is None:
            continue
        out.append(Diagnostic(
            code="E203",
            severity=Severity.ERROR,
            rule=rule.name,
            rule_index=index,
            message=(
                f"master key {list(rule.lhs_m)} is not a key of the "
                f"eligible master tuples: key {list(witness)} maps to "
                f"{len(values_by_key[witness])} distinct "
                f"{rule.rhs_m!r} values "
                f"{sorted(map(repr, values_by_key[witness]))}"
            ),
            remedy=(
                "deduplicate the master data on these columns or widen "
                "the rule's match key until probes are unambiguous"
            ),
            data={
                "key_attrs": list(rule.lhs_m),
                "key": [repr(v) for v in witness],
                "values": sorted(repr(v) for v in values_by_key[witness]),
            },
        ))
    return out


@lint_pass(
    "W204", "null-master-values", MASTER,
    "A master column rules read contains NULL/UNKNOWN values.",
)
def check_null_master_values(ctx: LintContext) -> List[Diagnostic]:
    """Master data is "consistent and complete" by assumption (Sect. 1);
    a NULL in a column rules copy from means fixes can *install* missing
    values, and a NULL in a key column silently never matches guarded
    probes.  One diagnostic per affected column, naming the rules."""
    store = ctx.store
    if store is None or len(store) == 0:
        return []
    readers: Dict[str, List[str]] = {}
    for rule in ctx.rules:
        attrs = set(rule.lhs_m) | {rule.rhs_m} | set(rule.master_guard.attrs)
        for attr in attrs:
            if attr in ctx.master_schema:
                readers.setdefault(attr, []).append(rule.name)
    out = []
    for attr in sorted(readers):
        active = store.active_values(attr)
        missing = [
            repr(sentinel) for sentinel in (NULL, UNKNOWN)
            if sentinel in active
        ]
        if not missing:
            continue
        out.append(Diagnostic(
            code="W204",
            severity=Severity.WARNING,
            message=(
                f"master column {attr!r} contains {'/'.join(missing)} "
                f"values but is read by rule(s) "
                f"{sorted(set(readers[attr]))}"
            ),
            remedy=(
                "complete the master data for this column, or guard the "
                "rules with a not-NULL condition on it"
            ),
            data={"attr": attr, "rules": sorted(set(readers[attr])),
                  "sentinels": missing},
        ))
    return out


def _fresh(attr: str) -> str:
    """A value guaranteed absent from real data (tagged, non-CSV-able)."""
    return f"\x00fresh:{attr}"


def _joint_input(
    first: EditingRule, second: EditingRule, tm_a, tm_b
) -> Optional[dict]:
    """An input tuple both ``(first, tm_a)`` and ``(second, tm_b)`` apply
    to, or ``None`` when the two applications are incompatible.

    Match keys force ``t[a] = tm[λφ(a)]`` per rule; pattern constants fill
    remaining premise attributes; negated conditions get a fresh value
    that trivially differs from the negated constant.
    """
    assignment: dict = {}
    for rule, tm in ((first, tm_a), (second, tm_b)):
        for attr in rule.lhs:
            value = tm[rule.master_attr_of(attr)]
            if assignment.setdefault(attr, value) != value:
                return None
    for rule in (first, second):
        for attr, cond in rule.pattern.items():
            if attr in assignment:
                if not cond.is_wildcard and not cond.matches(assignment[attr]):
                    return None
                continue
            if cond.is_constant:
                assignment[attr] = cond.value
            elif cond.is_negation:
                assignment[attr] = _fresh(attr)
            else:
                assignment[attr] = _fresh(attr)
    return assignment


@lint_pass(
    "W202", "non-confluent-pair", MASTER,
    "Two rules fixing the same attribute diverge on a concrete witness "
    "input (bounded chase counterexample search).",
)
def check_non_confluent_pairs(ctx: LintContext) -> List[Diagnostic]:
    """For each rule pair sharing a target ``B``, construct inputs both
    rules apply to (from actual master tuples) and run the exhaustive
    chase of :mod:`repro.analysis.chase` on the pair alone.  Two distinct
    fixpoints mean the final value of ``B`` depends on application order —
    exactly the non-confluence the Sect. 4 consistency analysis exists to
    rule out.  Region tableaux can exclude such inputs in deployment, so
    this is a warning, not an error.

    Since the exact certification pass (E205) landed, this sampled search
    is the *over-budget fallback* only: when the exact Sect. 4 check of
    :mod:`repro.lint.certify` completed, its verdict subsumes any sampled
    pair witness (E205 owns real inconsistencies; a clean exact verdict
    proves no marked input diverges) and this pass stays silent."""
    store = ctx.store
    if store is None or not 0 < len(store) <= ctx.max_master_rows:
        return []
    from repro.lint.certify import certification_for

    cert = certification_for(ctx)
    if cert is not None and cert.exact_complete:
        return []
    rules = list(ctx.rules)
    budget = ctx.max_witness_pairs
    out = []
    for j in range(len(rules)):
        for i in range(j):
            if budget <= 0:
                return out
            first, second = rules[i], rules[j]
            if first.rhs != second.rhs or first == second:
                continue
            if not (_rule_is_typed(ctx, first)
                    and _rule_is_typed(ctx, second)):
                continue
            diagnostic = _confluence_witness(ctx, i, j, first, second)
            budget -= 1
            if diagnostic is not None:
                out.append(diagnostic)
    return out


def _candidate_masters(ctx: LintContext, rule: EditingRule) -> list:
    conditions = _master_conditions(rule)
    found = []
    for tm in ctx.store:
        if _eligible(tm, conditions):
            found.append(tm)
            if len(found) >= ctx.max_witness_masters:
                break
    return found


def _confluence_witness(
    ctx: LintContext, i: int, j: int,
    first: EditingRule, second: EditingRule,
) -> Optional[Diagnostic]:
    for tm_a in _candidate_masters(ctx, first):
        for tm_b in _candidate_masters(ctx, second):
            if tm_a[first.rhs_m] == tm_b[second.rhs_m]:
                continue  # same value either way: confluent by construction
            assignment = _joint_input(first, second, tm_a, tm_b)
            if assignment is None:
                continue
            z0 = frozenset(assignment)
            try:
                result = explore_fixes(
                    assignment, z0, [first, second], ctx.store,
                    max_states=ctx.max_chase_states,
                )
            except ChaseExplosion:
                continue
            if result.unique:
                continue
            values = sorted(
                repr(dict(sig).get(first.rhs)) for sig in result.fixpoints
            )
            shown = {
                a: v for a, v in sorted(assignment.items())
                if not (isinstance(v, str) and v.startswith("\x00fresh:"))
            }
            return Diagnostic(
                code="W202",
                severity=Severity.WARNING,
                rule=second.name,
                rule_index=j,
                message=(
                    f"non-confluent with rule {first.name!r} (#{i}): on "
                    f"witness input {shown} the final {first.rhs!r} "
                    f"depends on application order "
                    f"({len(result.fixpoints)} distinct fixpoints, "
                    f"values {values})"
                ),
                remedy=(
                    "make the patterns mutually exclusive, align the "
                    "master data, or exclude such inputs via the region "
                    "tableau"
                ),
                data={
                    "other_rule": first.name,
                    "other_index": i,
                    "attr": first.rhs,
                    "witness": {a: repr(v) for a, v in shown.items()},
                    "values": values,
                },
            )
    return None
