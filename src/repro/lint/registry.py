"""The lint pass registry and the context passes run against.

A pass is a pure function ``(LintContext) -> list[Diagnostic]`` registered
under a stable diagnostic code.  Passes come in two families:

* ``structural`` passes need only ``(rules, schema)`` — they are cheap,
  total (never raise on well-typed rule sets), and safe to run as a
  preflight before any expensive precompute;
* ``master`` passes additionally read master data through the
  :class:`~repro.engine.store.MasterStore` seam and are budgeted (bounded
  scans, bounded chase state) because the underlying problems are
  coNP-complete (Theorems 1–2 of the paper).

The registry is the single source of truth for the code table rendered in
the package docstring, the SARIF rule metadata, and the runner's pass
selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.schema import RelationSchema
from repro.lint.diagnostics import Diagnostic

#: Pass family names.
STRUCTURAL = "structural"
MASTER = "master"


@dataclass
class LintContext:
    """Everything a pass may read, plus the analysis budgets.

    ``schema`` is the input schema ``R``; ``master_schema`` is ``Rm``
    (identical in the same-schema deployments of Sect. 6, but passes must
    not assume so).  ``store`` is ``None`` for structural-only runs.
    """

    rules: Tuple
    schema: RelationSchema
    master_schema: RelationSchema
    store: Optional[object] = None
    #: Master-aware passes scan at most this many master rows; masters
    #: beyond the budget skip the scan-based passes rather than stall.
    max_master_rows: int = 50_000
    #: Candidate master tuples examined per rule when hunting witnesses.
    max_witness_masters: int = 8
    #: Constructed inputs chased per rule pair in the confluence search.
    max_witness_pairs: int = 16
    #: State budget handed to the exhaustive chase per witness.
    max_chase_states: int = 20_000
    #: Instantiation budget for the exact Sect. 4 certification passes
    #: (E205/W206/I208); past it they degrade to the sampled fallback.
    max_instantiations: int = 50_000
    #: Largest assured-attribute extension I208 searches for.
    max_extension_size: int = 3
    #: Exact region checks I208 spends on candidate extensions.
    max_extension_checks: int = 32
    #: Declared certain region to certify against; ``None`` resolves to the
    #: best computed region, then the canonical mandatory-attr region.
    region: Optional[object] = None
    #: Scratch shared between passes within one run (never cached).
    scratch: Dict = field(default_factory=dict)


@dataclass(frozen=True)
class LintPass:
    """One registered pass: metadata plus the callable that runs it."""

    code: str
    slug: str
    family: str
    description: str
    run: Callable[[LintContext], List[Diagnostic]]

    def sarif_rule(self) -> Dict:
        """This pass's entry in the SARIF tool rule table."""
        return {
            "id": self.code,
            "name": self.slug,
            "shortDescription": {"text": self.description},
        }


_REGISTRY: Dict[str, LintPass] = {}


def lint_pass(code: str, slug: str, family: str, description: str):
    """Register the decorated function as the pass behind *code*."""
    if family not in (STRUCTURAL, MASTER):
        raise ValueError(f"unknown pass family {family!r}")

    def decorate(fn: Callable[[LintContext], List[Diagnostic]]):
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint pass code {code!r}")
        _REGISTRY[code] = LintPass(
            code=code, slug=slug, family=family, description=description,
            run=fn,
        )
        return fn

    return decorate


def registered_passes(family: Optional[str] = None) -> Tuple[LintPass, ...]:
    """All passes (registration order), optionally one family only."""
    passes = _REGISTRY.values()
    if family is not None:
        passes = (p for p in passes if p.family == family)
    return tuple(passes)


def passes_for_codes(codes: Sequence[str]) -> Tuple[LintPass, ...]:
    """Resolve explicit pass codes (unknown codes raise ``ValueError``)."""
    missing = [c for c in codes if c not in _REGISTRY]
    if missing:
        raise ValueError(
            f"unknown lint pass code(s) {missing}; registered: "
            f"{sorted(_REGISTRY)}"
        )
    return tuple(_REGISTRY[c] for c in codes)
