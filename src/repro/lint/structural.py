"""Structural lint passes: everything decidable from ``(rules, schema)``.

These passes need no master data, are total on well-typed rule sets (a
hypothesis test pins that), and run in low polynomial time — which is what
makes them usable as a preflight in front of every expensive precompute
(``comp_c_region``, the BDD, the batch engine).
"""

from __future__ import annotations

import difflib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.closure import attribute_closure, mandatory_attrs
from repro.analysis.dependency_graph import DependencyGraph
from repro.core.patterns import PatternTuple, PatternValue
from repro.engine.schema import RelationSchema
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import STRUCTURAL, LintContext, lint_pass


def _suggest(name: str, candidates: Iterable[str]) -> str:
    matches = difflib.get_close_matches(str(name), list(candidates), n=1)
    return f"; did you mean {matches[0]!r}?" if matches else ""


def _unknown(
    rule_name: str,
    index: int,
    attr: str,
    role: str,
    schema: RelationSchema,
) -> Diagnostic:
    return Diagnostic(
        code="E101",
        severity=Severity.ERROR,
        rule=rule_name,
        rule_index=index,
        message=(
            f"{role} attribute {attr!r} is not in schema "
            f"{schema.name!r}"
        ),
        remedy=(
            f"rename the attribute or extend the schema"
            f"{_suggest(attr, schema.attributes)}"
        ),
        data={"attr": attr, "role": role, "schema": schema.name},
    )


@lint_pass(
    "E101", "unknown-attribute", STRUCTURAL,
    "A rule references an attribute absent from the input or master schema.",
)
def check_unknown_attributes(ctx: LintContext) -> List[Diagnostic]:
    """Every attribute a rule names must exist in the relevant schema.

    This is the pass that turns the historical ``analyze`` crash (a bare
    ``KeyError`` from deep inside ``comp_c_region``) into a diagnostic.
    """
    out: List[Diagnostic] = []
    for index, rule in enumerate(ctx.rules):
        for attr in rule.lhs:
            if attr not in ctx.schema:
                out.append(_unknown(rule.name, index, attr, "match-key (X)",
                                    ctx.schema))
        for attr in rule.pattern.attrs:
            if attr not in ctx.schema:
                out.append(_unknown(rule.name, index, attr, "pattern (Xp)",
                                    ctx.schema))
        if rule.rhs not in ctx.schema:
            out.append(_unknown(rule.name, index, rule.rhs, "target (B)",
                                ctx.schema))
        for attr in rule.lhs_m:
            if attr not in ctx.master_schema:
                out.append(_unknown(rule.name, index, attr,
                                    "master match-key (Xm)",
                                    ctx.master_schema))
        if rule.rhs_m not in ctx.master_schema:
            out.append(_unknown(rule.name, index, rule.rhs_m,
                                "master source (Bm)", ctx.master_schema))
        for attr in rule.master_guard.attrs:
            if attr not in ctx.master_schema:
                out.append(_unknown(rule.name, index, attr, "master guard",
                                    ctx.master_schema))
    return out


def _unsatisfiable_attrs(
    pattern: PatternTuple, schema: RelationSchema
) -> List[str]:
    """Pattern attributes whose condition no domain value satisfies.

    Attributes missing from the schema are skipped — E101 already owns
    those, and a pass must never crash on another pass's finding.
    """
    bad = []
    for attr, condition in pattern.items():
        if attr not in schema:
            continue
        if not condition.satisfiable(schema.domain_of(attr)):
            bad.append(attr)
    return bad


@lint_pass(
    "E102", "unsatisfiable-pattern", STRUCTURAL,
    "A pattern or master guard poses a condition no domain value satisfies.",
)
def check_unsatisfiable_patterns(ctx: LintContext) -> List[Diagnostic]:
    """A rule whose guard is unsatisfiable can never fire — it is not
    merely dead weight but almost always a typo (a constant outside a
    finite domain, a negation over a single-valued domain)."""
    out: List[Diagnostic] = []
    for index, rule in enumerate(ctx.rules):
        for attr in _unsatisfiable_attrs(rule.pattern, ctx.schema):
            out.append(Diagnostic(
                code="E102",
                severity=Severity.ERROR,
                rule=rule.name,
                rule_index=index,
                message=(
                    f"pattern condition {rule.pattern[attr]!r} on "
                    f"{attr!r} is unsatisfiable in domain "
                    f"{ctx.schema.domain_of(attr).name!r}"
                ),
                remedy="fix the pattern constant or widen the domain",
                data={"attr": attr, "side": "pattern"},
            ))
        for attr in _unsatisfiable_attrs(rule.master_guard,
                                         ctx.master_schema):
            out.append(Diagnostic(
                code="E102",
                severity=Severity.ERROR,
                rule=rule.name,
                rule_index=index,
                message=(
                    f"master guard condition {rule.master_guard[attr]!r} "
                    f"on {attr!r} is unsatisfiable in domain "
                    f"{ctx.master_schema.domain_of(attr).name!r}"
                ),
                remedy="fix the guard constant or widen the domain",
                data={"attr": attr, "side": "master_guard"},
            ))
    return out


@lint_pass(
    "W103", "duplicate-rule", STRUCTURAL,
    "Two rules are identical up to their name.",
)
def check_duplicate_rules(ctx: LintContext) -> List[Diagnostic]:
    """Exact duplicates (``EditingRule.__eq__`` ignores names) are pure
    dead weight: the second copy can never contribute a fix the first did
    not already make."""
    seen: Dict[object, Tuple[int, str]] = {}
    out: List[Diagnostic] = []
    for index, rule in enumerate(ctx.rules):
        try:
            earlier = seen.get(rule)
        except TypeError:  # unhashable pattern constants: skip quietly
            continue
        if earlier is None:
            seen[rule] = (index, rule.name)
            continue
        first_index, first_name = earlier
        out.append(Diagnostic(
            code="W103",
            severity=Severity.WARNING,
            rule=rule.name,
            rule_index=index,
            message=(
                f"duplicate of rule {first_name!r} (#{first_index}): same "
                f"keys, target, pattern and guard"
            ),
            remedy="delete one of the two copies",
            fixit={"action": "remove_rule", "rule_index": index},
            data={"duplicate_of": first_index},
        ))
    return out


def _condition_implied(
    weaker: PatternValue, stronger: Optional[PatternValue]
) -> bool:
    """Whether satisfying *stronger* guarantees satisfying *weaker*.

    ``stronger is None`` means the narrower rule poses no condition on the
    attribute, which implies nothing (except a wildcard).
    """
    if weaker.is_wildcard:
        return True
    if stronger is None or stronger.is_wildcard:
        return False
    if weaker == stronger:
        return True
    # x = a  implies  x != b  whenever a != b.
    if weaker.is_negation and stronger.is_constant:
        return stronger.value != weaker.value
    return False


def _pattern_implies(general: PatternTuple, specific: PatternTuple) -> bool:
    """Whether every tuple matching *specific* also matches *general*."""
    return all(
        _condition_implied(condition, specific.get(attr))
        for attr, condition in general.items()
    )


@lint_pass(
    "W104", "subsumed-rule", STRUCTURAL,
    "A rule's applicability is contained in a more general rule with the "
    "same keys and target.",
)
def check_subsumed_rules(ctx: LintContext) -> List[Diagnostic]:
    """Rule B is *subsumed* by rule A when both share ``(X, Xm, B, Bm)``
    and A's pattern and master guard are implied by B's: whenever B
    applies, A applies with the identical effect, so B is shadowed dead
    weight (exact duplicates are W103 and skipped here)."""
    out: List[Diagnostic] = []
    rules = list(ctx.rules)
    for j, narrow in enumerate(rules):
        for i, general in enumerate(rules):
            if i == j or general == narrow:
                continue
            if (general.lhs, general.lhs_m, general.rhs, general.rhs_m) != (
                narrow.lhs, narrow.lhs_m, narrow.rhs, narrow.rhs_m
            ):
                continue
            if not _pattern_implies(general.pattern, narrow.pattern):
                continue
            if not _pattern_implies(general.master_guard,
                                    narrow.master_guard):
                continue
            out.append(Diagnostic(
                code="W104",
                severity=Severity.WARNING,
                rule=narrow.name,
                rule_index=j,
                message=(
                    f"subsumed by rule {general.name!r} (#{i}): whenever "
                    f"this rule applies, {general.name!r} applies with the "
                    f"same effect"
                ),
                remedy=(
                    "delete the narrower rule, or differentiate its "
                    "target/pattern if the overlap is unintended"
                ),
                fixit={"action": "remove_rule", "rule_index": j},
                data={"subsumed_by": i},
            ))
            break  # one subsumer is enough evidence per rule
    return out


@lint_pass(
    "W105", "dependency-cycle", STRUCTURAL,
    "The rule dependency graph is cyclic (a witness cycle is printed).",
)
def check_dependency_cycle(ctx: LintContext) -> List[Diagnostic]:
    """Cycles are legal (each attribute is fixed at most once, so the fix
    semantics terminates) but make rule programs hard to reason about and
    hide author mistakes; the witness names one concrete cycle."""
    graph = DependencyGraph(list(ctx.rules))
    cycle = graph.find_cycle()
    if cycle is None:
        return []
    witness = " -> ".join(cycle + [cycle[0]])
    return [Diagnostic(
        code="W105",
        severity=Severity.WARNING,
        message=f"rule dependency graph is cyclic: {witness}",
        remedy=(
            "cycles are allowed but often unintended; break the cycle by "
            "narrowing one rule's pattern or match key"
        ),
        data={"cycle": list(cycle)},
    )]


@lint_pass(
    "W106", "self-referential-premise", STRUCTURAL,
    "A rule's pattern constrains the very attribute the rule fixes.",
)
def check_self_referential(ctx: LintContext) -> List[Diagnostic]:
    """A non-wildcard pattern condition on the rule's own target means the
    rule only fires once the target is *already validated* — it can never
    fix anything that is not fixed yet, which defeats its purpose."""
    out: List[Diagnostic] = []
    for index, rule in enumerate(ctx.rules):
        condition = rule.pattern.get(rule.rhs)
        if condition is None or condition.is_wildcard:
            continue
        out.append(Diagnostic(
            code="W106",
            severity=Severity.WARNING,
            rule=rule.name,
            rule_index=index,
            message=(
                f"pattern reads the rule's own target {rule.rhs!r} "
                f"({condition!r}): the rule can only fire after its "
                f"target is already validated"
            ),
            remedy=(
                "drop the condition on the target, or retarget the rule "
                "if the condition is the point"
            ),
            data={"attr": rule.rhs},
        ))
    return out


@lint_pass(
    "I107", "unfixable-attributes", STRUCTURAL,
    "Attributes no rule can ever fix (they belong to every region Z).",
)
def check_unfixable_attributes(ctx: LintContext) -> List[Diagnostic]:
    """Not a defect — the paper's regions always carry a user-validated
    core — but worth surfacing: these attributes are pure user burden, and
    a growing list is how rule-set rot shows up first."""
    unfixable = sorted(mandatory_attrs(ctx.schema, ctx.rules))
    if not unfixable:
        return []
    return [Diagnostic(
        code="I107",
        severity=Severity.INFO,
        message=(
            f"no rule fixes {unfixable}: these attributes must be "
            f"user-validated in every certain region"
        ),
        remedy=(
            "expected for entity keys; add rules if any of these should "
            "be fixable from master data"
        ),
        data={"attrs": unfixable},
    )]


@lint_pass(
    "W108", "dead-rule", STRUCTURAL,
    "A rule can never fire from the mandatory start: its premise needs "
    "attributes no rule chain supplies.",
)
def check_dead_rules(ctx: LintContext) -> List[Diagnostic]:
    """The canonical starting point of every repair is the *mandatory*
    attribute set (attributes no rule fixes — they must be user-validated
    regardless).  A rule whose premise ``X ∪ Xp`` is not contained in the
    closure of that start can only ever fire if users additionally
    hand-validate attributes the rules were supposed to fix — it is dead
    weight along every sensible region."""
    start = mandatory_attrs(ctx.schema, ctx.rules)
    reachable = attribute_closure(start, ctx.rules)
    out: List[Diagnostic] = []
    for index, rule in enumerate(ctx.rules):
        missing = sorted(
            a for a in rule.premise_attrs
            if a not in reachable and a in ctx.schema
        )
        if not missing:
            continue
        out.append(Diagnostic(
            code="W108",
            severity=Severity.WARNING,
            rule=rule.name,
            rule_index=index,
            message=(
                f"dead rule: premise attributes {missing} are neither "
                f"mandatory nor reachable through any rule chain, so the "
                f"rule never fires from the mandatory start "
                f"{sorted(start)}"
            ),
            remedy=(
                f"add rules that fix {missing}, or match on attributes "
                f"the program can actually validate"
            ),
            fixit={"action": "remove_rule", "rule_index": index},
            data={"missing": missing, "start": sorted(start)},
        ))
    return out
