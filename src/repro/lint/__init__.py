"""repro.lint — static analysis for editing-rule programs.

Section 4 of the paper decides *before any repair runs* whether a rule
program can guarantee certain fixes; this package turns that machinery
(plus cheaper structural checks) into an operable analyzer with stable
diagnostic codes, machine-readable reports (JSON / SARIF 2.1.0), and
preflight gates in front of every expensive precompute path
(``repro analyze``, ``repro mine``, :class:`~repro.repair.batch.\
BatchRepairEngine`).

Diagnostic code reference
=========================

Structural passes (``rules`` + ``schema`` only; cheap, total, preflight):

======  ========================  =========================================
Code    Name                      Meaning / remedy
======  ========================  =========================================
E100    unparsable-rules          The rule file is not valid rule JSON
                                  (emitted by the CLI loader, not a pass).
                                  Fix the JSON; see ``repro.io``.
E101    unknown-attribute         A rule names an attribute absent from the
                                  input or master schema.  Rename it or
                                  extend the schema (close matches are
                                  suggested).
E102    unsatisfiable-pattern     A pattern/guard condition no domain value
                                  can satisfy.  Fix the constant or widen
                                  the domain.
W103    duplicate-rule            Two rules identical up to the name.
                                  Delete one (fix-it provided).
W104    subsumed-rule             A rule's applicability is contained in a
                                  more general rule with the same keys and
                                  target.  Delete or differentiate it.
W105    dependency-cycle          The rule dependency graph is cyclic (a
                                  witness cycle is printed).  Legal but
                                  often unintended.
W106    self-referential-premise  A rule's pattern reads its own target, so
                                  it only fires once the target is already
                                  validated.  Drop the condition.
I107    unfixable-attributes      Attributes no rule fixes; they must be
                                  user-validated in every region.  Expected
                                  for entity keys.
W108    dead-rule                 The rule's premise is unreachable from
                                  the mandatory start through any rule
                                  chain; it never fires.  Add rules fixing
                                  the missing premise attributes.
======  ========================  =========================================

Master-aware passes (additionally read ``Dm`` through the ``MasterStore``
seam; bounded — a finding is a concrete witness, silence is not a proof):

======  ========================  =========================================
W201    zero-support              No master tuple can ever fire the rule
                                  (or the master is empty).  Check guard
                                  constants against the data.
W202    non-confluent-pair        Two rules fixing one attribute diverge on
                                  a concrete witness input (bounded chase).
                                  Make patterns exclusive or exclude such
                                  inputs via the region tableau.
E203    ambiguous-master-key      The rule's master key columns are not a
                                  key of the eligible master tuples, so
                                  probes return conflicting values.
                                  Deduplicate or widen the key.
W204    null-master-values        A master column rules read contains
                                  NULL/UNKNOWN.  Complete the data or guard
                                  against it.
======  ========================  =========================================

Master-aware results are cached per store keyed on ``(rule fingerprint,
store version, budgets)``; see :mod:`repro.lint.runner`.
"""

from repro.lint.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
)
from repro.lint.registry import (
    MASTER,
    STRUCTURAL,
    LintContext,
    LintPass,
    registered_passes,
)

# Importing the pass modules registers every pass with the registry.
from repro.lint import master_aware, structural  # noqa: F401  (registration)
from repro.lint.runner import (
    PREFLIGHT_MODES,
    preflight,
    rules_fingerprint,
    run_lint,
    sarif_rule_metadata,
    structural_report,
)

__all__ = [
    "Diagnostic",
    "LintError",
    "LintReport",
    "Severity",
    "LintContext",
    "LintPass",
    "STRUCTURAL",
    "MASTER",
    "registered_passes",
    "PREFLIGHT_MODES",
    "preflight",
    "rules_fingerprint",
    "run_lint",
    "sarif_rule_metadata",
    "structural_report",
]
