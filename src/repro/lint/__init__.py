"""repro.lint — static analysis for editing-rule programs.

Section 4 of the paper decides *before any repair runs* whether a rule
program can guarantee certain fixes; this package turns that machinery
(plus cheaper structural checks) into an operable analyzer with stable
diagnostic codes, machine-readable reports (JSON / SARIF 2.1.0), and
preflight gates in front of every expensive precompute path
(``repro analyze``, ``repro mine``, :class:`~repro.repair.batch.\
BatchRepairEngine`).

Diagnostic code reference
=========================

Structural passes (``rules`` + ``schema`` only; cheap, total, preflight):

======  ========================  =========================================
Code    Name                      Meaning / remedy
======  ========================  =========================================
E100    unparsable-rules          The rule file is not valid rule JSON
                                  (emitted by the CLI loader, not a pass).
                                  Fix the JSON; see ``repro.io``.
E101    unknown-attribute         A rule names an attribute absent from the
                                  input or master schema.  Rename it or
                                  extend the schema (close matches are
                                  suggested).
E102    unsatisfiable-pattern     A pattern/guard condition no domain value
                                  can satisfy.  Fix the constant or widen
                                  the domain.
W103    duplicate-rule            Two rules identical up to the name.
                                  Delete one (fix-it provided).
W104    subsumed-rule             A rule's applicability is contained in a
                                  more general rule with the same keys and
                                  target.  Delete or differentiate it.
W105    dependency-cycle          The rule dependency graph is cyclic (a
                                  witness cycle is printed).  Legal but
                                  often unintended.
W106    self-referential-premise  A rule's pattern reads its own target, so
                                  it only fires once the target is already
                                  validated.  Drop the condition.
I107    unfixable-attributes      Attributes no rule fixes; they must be
                                  user-validated in every region.  Expected
                                  for entity keys.
W108    dead-rule                 The rule's premise is unreachable from
                                  the mandatory start through any rule
                                  chain; it never fires.  Add rules fixing
                                  the missing premise attributes.
======  ========================  =========================================

Master-aware passes (additionally read ``Dm`` through the ``MasterStore``
seam; bounded — a finding is a concrete witness, silence is not a proof):

======  ========================  =========================================
W201    zero-support              No master tuple can ever fire the rule
                                  (or the master is empty).  Check guard
                                  constants against the data.
W202    non-confluent-pair        Two rules fixing one attribute diverge on
                                  a concrete witness input (bounded chase).
                                  Make patterns exclusive or exclude such
                                  inputs via the region tableau.
E203    ambiguous-master-key      The rule's master key columns are not a
                                  key of the eligible master tuples, so
                                  probes return conflicting values.
                                  Deduplicate or widen the key.
W204    null-master-values        A master column rules read contains
                                  NULL/UNKNOWN.  Complete the data or guard
                                  against it.
======  ========================  =========================================

Certification passes (exact Sect. 4 analyses over the certified region —
declared in the rule file, else the best computed region, else the
canonical mandatory-attribute region; see :mod:`repro.lint.certify`).
All three run under the ``max_instantiations`` budget: past it the run
*degrades* — consistency falls back to the sampled W202 search, coverage
to attribute-closure level — and the degradation is always reported as an
info-level E205 diagnostic (plus the
``repro_lint_budget_exhausted_total`` counter), never silent.  When the
exact check completes, W202 stays silent (E205 subsumes it):

======  ========================  =========================================
E205    provably-inconsistent     Some region-marked input provably admits
                                  two distinct fixes (minimized concrete
                                  witness attached).  Remove/reconcile the
                                  rules or assure the conflicting
                                  attribute.  Info severity = the exact
                                  check degraded to the sampled fallback.
W206    region-not-certain        Attributes are uncoverable (outside the
                                  closure of Z — exact, PTIME) or stay
                                  uncovered on a concrete witness.  Extend
                                  the region or add covering rules.
I208    region-extension          Minimal assured-attribute extension that
                                  makes the region certain; carries an
                                  ``extend_region`` fix-it.  Marked
                                  closure-level when over budget.
======  ========================  =========================================

Master-aware results are cached per store keyed on ``(rule fingerprint,
store version, budgets, region)``; see :mod:`repro.lint.runner`.
Certification results additionally survive master mutations through the
delta journal when no delta hits their recorded probe footprints
(:func:`repro.lint.certify.certification_cache_info`).  Fix-its
(``remove_rule`` from W103/W104/W108, ``extend_region`` from I208) are
applied by ``repro lint --fix`` via :mod:`repro.lint.fixit`.
"""

from repro.lint.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
)
from repro.lint.registry import (
    MASTER,
    STRUCTURAL,
    LintContext,
    LintPass,
    registered_passes,
)

# Importing the pass modules registers every pass with the registry.
# Order matters for the report: master_aware registers W201/W202/E203/W204
# before certify registers E205/W206/I208.
from repro.lint import master_aware, structural  # noqa: F401  (registration)
from repro.lint import certify  # noqa: F401  (registration)
from repro.lint.certify import (
    Certification,
    certification_cache_info,
    certification_for,
)
from repro.lint.fixit import FixitResult, apply_fixits
from repro.lint.runner import (
    PREFLIGHT_MODES,
    preflight,
    rules_fingerprint,
    run_lint,
    sarif_rule_metadata,
    structural_report,
)

__all__ = [
    "Diagnostic",
    "LintError",
    "LintReport",
    "Severity",
    "LintContext",
    "LintPass",
    "STRUCTURAL",
    "MASTER",
    "registered_passes",
    "Certification",
    "certification_cache_info",
    "certification_for",
    "FixitResult",
    "apply_fixits",
    "PREFLIGHT_MODES",
    "preflight",
    "rules_fingerprint",
    "run_lint",
    "sarif_rule_metadata",
    "structural_report",
]
