"""Fix-it application: machine edits derived from lint diagnostics.

A fix-it is the plain dict some diagnostics carry (``Diagnostic.fixit``):

* ``{"action": "remove_rule", "rule_index": i}`` — emitted by W103
  (duplicate), W104 (subsumed) and W108 (dead rule): the rule is provably
  inert or redundant and can be dropped;
* ``{"action": "reorder_rules", "order": [...]}`` — a permutation of the
  rule file (no current pass emits one; the engine supports it for
  external tools and future confluence-repair passes);
* ``{"action": "extend_region", "attrs": [...], "region": {...}}`` —
  emitted by I208: assure more attributes so the region becomes certain;
  ``region`` is the full extended region to declare when the file has
  none.

:func:`apply_fixits` applies one lint run's fix-its to the rule list (and
declared region) *as a batch against the original indices* — exactly the
contract under which the producing passes computed them.  ``repro lint
--fix`` then re-lints and repeats until a fixed point (new findings can
surface once rules disappear), with an idempotence check at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.regions import Region
from repro.io import region_from_dict

#: Fix-it actions the engine knows how to apply.
SUPPORTED_ACTIONS = ("remove_rule", "reorder_rules", "extend_region")


@dataclass
class FixitResult:
    """Outcome of one :func:`apply_fixits` batch."""

    rules: List
    region: Optional[Region]
    applied: List[Dict[str, Any]] = field(default_factory=list)
    skipped: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def _fixit_of(item) -> Optional[Dict[str, Any]]:
    if isinstance(item, dict):
        return item
    return getattr(item, "fixit", None)


def apply_fixits(
    rules: Sequence,
    diagnostics: Sequence,
    region: Optional[Region] = None,
) -> FixitResult:
    """Apply every applyable fix-it from *diagnostics* to ``(rules, region)``.

    *diagnostics* may hold :class:`~repro.lint.diagnostics.Diagnostic`
    objects or raw fix-it dicts.  All indices refer to the *input* rule
    list (the batch semantics above): removals are collected as a set, at
    most one reorder is honoured (later conflicting ones are skipped), and
    the final sequence is reorder-then-remove.  Malformed or out-of-range
    fix-its are skipped, never raised — lint output must stay applyable
    even when stale.
    """
    rules = list(rules)
    count = len(rules)
    removals: set = set()
    order: Optional[List[int]] = None
    applied: List[Dict[str, Any]] = []
    skipped: List[Dict[str, Any]] = []

    extend_fixits: List[Dict[str, Any]] = []
    for item in diagnostics:
        fixit = _fixit_of(item)
        if fixit is None:
            continue
        action = fixit.get("action")
        if action == "remove_rule":
            index = fixit.get("rule_index")
            if isinstance(index, int) and 0 <= index < count:
                removals.add(index)
                applied.append(fixit)
            else:
                skipped.append(fixit)
        elif action == "reorder_rules":
            sequence = fixit.get("order")
            if (
                order is None
                and isinstance(sequence, list)
                and sorted(sequence) == list(range(count))
            ):
                order = list(sequence)
                applied.append(fixit)
            else:
                skipped.append(fixit)
        elif action == "extend_region":
            extend_fixits.append(fixit)
        else:
            skipped.append(fixit)

    new_region = region
    for fixit in extend_fixits:
        attrs = fixit.get("attrs")
        if not isinstance(attrs, list) or not attrs:
            skipped.append(fixit)
            continue
        if new_region is None and isinstance(fixit.get("region"), dict):
            # No declared region to extend: declare the full extended
            # region the producing pass certified against.
            try:
                new_region = region_from_dict(fixit["region"])
            except (KeyError, TypeError, ValueError):
                skipped.append(fixit)
                continue
            applied.append(fixit)
        elif new_region is not None:
            extended = new_region.extend_attrs(attrs)
            if extended is new_region:
                skipped.append(fixit)  # attrs already assured: no-op
            else:
                new_region = extended
                applied.append(fixit)
        else:
            skipped.append(fixit)

    sequence = order if order is not None else list(range(count))
    new_rules = [rules[i] for i in sequence if i not in removals]
    return FixitResult(
        rules=new_rules,
        region=new_region,
        applied=applied,
        skipped=skipped,
    )
