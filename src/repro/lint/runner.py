"""Running lint passes: entry points, preflight gates, and the cache.

:func:`run_lint` is the full analyzer (structural + master-aware);
:func:`structural_report` is the cheap subset every preflight uses; and
:func:`preflight` is the shared gate the batch engine and the CLI call —
it raises :class:`~repro.lint.diagnostics.LintError` (``"error"``), prints
to a stream (``"warn"``), or does nothing (``"off"``).

Master-aware results are cached per store, keyed on ``(rule fingerprint,
store version, analysis budgets)`` — the same version-stamp discipline as
every other derived cache in the repo (regions, the Suggest⁺ BDD, probe
memos): a master mutation moves ``store.version`` and the stale entry
simply never matches again.  The cache is a ``WeakKeyDictionary`` on the
store, so it dies with the store and never pins one alive.
"""

from __future__ import annotations

import hashlib
import json
import sys
import weakref
from typing import Iterable, List, Optional, Sequence, TextIO, Tuple

from repro import obs
from repro.engine.schema import RelationSchema
from repro.engine.store import MasterStore, as_master_store
from repro.io import region_to_dict, rules_to_dicts
from repro.lint.diagnostics import Diagnostic, LintError, LintReport
from repro.lint.registry import (
    MASTER,
    STRUCTURAL,
    LintContext,
    LintPass,
    registered_passes,
)

#: Per-store cache of master-aware findings:
#: ``store -> {(fingerprint, version, budgets): tuple[Diagnostic, ...]}``.
_MASTER_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def rules_fingerprint(rules: Iterable) -> str:
    """A stable content hash of a rule set (names included: diagnostics
    mention rule names, so renaming must invalidate cached findings)."""
    canonical = json.dumps(
        rules_to_dicts(rules), sort_keys=True, default=repr
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _budget_key(ctx: LintContext) -> Tuple[int, ...]:
    return (
        ctx.max_master_rows,
        ctx.max_witness_masters,
        ctx.max_witness_pairs,
        ctx.max_chase_states,
        ctx.max_instantiations,
        ctx.max_extension_size,
        ctx.max_extension_checks,
    )


def _region_key(ctx: LintContext) -> Optional[str]:
    """A stable fingerprint of the declared region (``None`` when absent).

    Certification findings depend on the region being certified, so it
    must participate in the master-cache key alongside the budgets.
    """
    if ctx.region is None:
        return None
    canonical = json.dumps(
        region_to_dict(ctx.region), sort_keys=True, default=repr
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _run_family(
    passes: Sequence[LintPass], ctx: LintContext
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for lint in passes:
        with obs.time_block("repro_lint_pass_seconds", code=lint.code):
            out.extend(lint.run(ctx))
    return out


def _master_diagnostics(
    passes: Sequence[LintPass], ctx: LintContext
) -> List[Diagnostic]:
    """Master-aware findings, cached on ``(fingerprint, version, budgets)``.

    The pass selection participates in the key too: a run restricted to
    one code must not poison the cache for a later full run.
    """
    store = ctx.store
    key = (
        rules_fingerprint(ctx.rules),
        store.version,
        _budget_key(ctx),
        _region_key(ctx),
        tuple(p.code for p in passes),
    )
    try:
        per_store = _MASTER_CACHE.setdefault(store, {})
    except TypeError:  # store not weakref-able: just run uncached
        return _run_family(passes, ctx)
    cached = per_store.get(key)
    if cached is None:
        cached = tuple(_run_family(passes, ctx))
        per_store[key] = cached
    return list(cached)


def run_lint(
    rules: Sequence,
    schema: RelationSchema,
    master=None,
    master_schema: Optional[RelationSchema] = None,
    codes: Optional[Sequence[str]] = None,
    **budgets,
) -> LintReport:
    """Run lint passes over ``(rules, schema, master)`` → :class:`LintReport`.

    *master* may be a :class:`MasterStore`, a ``Relation``, or ``None``
    (structural passes only).  *master_schema* defaults to the store's
    schema when a master is given, else to *schema* (the paper's
    same-schema setting).  *codes* restricts the run to specific
    diagnostic codes; *budgets* override :class:`LintContext` analysis
    budgets (``max_master_rows``, ``max_witness_pairs``,
    ``max_instantiations``, ...) or pin the certification ``region``.
    """
    store: Optional[MasterStore] = None
    if master is not None:
        store = as_master_store(master)
    if master_schema is None:
        master_schema = store.schema if store is not None else schema
    ctx = LintContext(
        rules=tuple(rules),
        schema=schema,
        master_schema=master_schema,
        store=store,
        **budgets,
    )
    # NB: `if store` would be wrong here — an *empty* store has len() == 0
    # and is falsy, but empty master data is exactly what W201 must flag.
    if codes is None:
        structural = registered_passes(STRUCTURAL)
        master_passes = (
            registered_passes(MASTER) if store is not None else ()
        )
    else:
        from repro.lint.registry import passes_for_codes

        selected = passes_for_codes(codes)
        structural = tuple(p for p in selected if p.family == STRUCTURAL)
        master_passes = tuple(
            p for p in selected
            if p.family == MASTER and store is not None
        )
    diagnostics = _run_family(structural, ctx)
    if master_passes:
        diagnostics.extend(_master_diagnostics(master_passes, ctx))
    return LintReport(
        diagnostics=diagnostics,
        rules_linted=len(ctx.rules),
        passes_run=tuple(
            p.code for p in (*structural, *master_passes)
        ),
        master_version=store.version if store is not None else None,
    )


def structural_report(
    rules: Sequence,
    schema: RelationSchema,
    master_schema: Optional[RelationSchema] = None,
) -> LintReport:
    """The structural-only subset — the cheap preflight every expensive
    precompute path runs first."""
    ctx = LintContext(
        rules=tuple(rules),
        schema=schema,
        master_schema=master_schema if master_schema is not None else schema,
    )
    structural = registered_passes(STRUCTURAL)
    return LintReport(
        diagnostics=_run_family(structural, ctx),
        rules_linted=len(ctx.rules),
        passes_run=tuple(p.code for p in structural),
    )


#: Accepted preflight modes (the BatchRepairEngine / CLI knob).
PREFLIGHT_MODES = ("error", "warn", "off", "certify")


def preflight(
    rules: Sequence,
    schema: RelationSchema,
    master_schema: Optional[RelationSchema] = None,
    mode: str = "error",
    context: str = "rule program",
    stream: Optional[TextIO] = None,
    master=None,
) -> Optional[LintReport]:
    """Gate a rule program on its lint findings.

    ``mode="error"`` raises :class:`LintError` when error-level
    *structural* findings exist (warnings pass silently);
    ``mode="warn"`` never raises but prints every finding to *stream*
    (default ``sys.stderr``); ``mode="off"`` skips linting entirely and
    returns ``None``.  ``mode="certify"`` runs the full analyzer —
    structural plus the master-aware and exact certification passes
    (E205/W206/I208) against *master* — and raises on any error-level
    finding: the admission gate for rule programs that must carry the
    certain-fix guarantee.
    """
    if mode not in PREFLIGHT_MODES:
        raise ValueError(
            f"preflight must be one of {list(PREFLIGHT_MODES)}, got {mode!r}"
        )
    if mode == "off":
        return None
    if mode == "certify":
        if master is None:
            raise ValueError(
                'preflight mode "certify" needs master data '
                "(pass master=... through the caller)"
            )
        report = run_lint(rules, schema, master, master_schema=master_schema)
        if report.errors:
            raise LintError(report, context=context)
        return report
    report = structural_report(rules, schema, master_schema)
    if mode == "error":
        if report.errors:
            raise LintError(report, context=context)
        return report
    if report.diagnostics:
        print(
            f"lint preflight ({context}): {report.summary()}",
            file=stream or sys.stderr,
        )
        for diagnostic in report.diagnostics:
            print(diagnostic.describe(), file=stream or sys.stderr)
    return report


def sarif_rule_metadata(codes: Iterable[str]) -> List[dict]:
    """SARIF driver rule entries for the given pass codes, in order."""
    by_code = {p.code: p for p in registered_passes()}
    return [by_code[c].sarif_rule() for c in codes if c in by_code]
