"""Exact certification passes: the paper's Sect. 4 analyses as lint checks.

The master-aware passes of :mod:`repro.lint.master_aware` *sample* for
trouble (bounded witness searches); the passes here *decide* the paper's
fundamental static problems — consistency of ``(Σ, Dm)`` and whether
``(Z, Tc)`` is a certain region (Theorems 1–4) — by running the exact
active-domain instantiation of :mod:`repro.analysis.consistency` through
the :class:`~repro.engine.store.MasterStore` seam, so certification works
identically against memory, sqlite, and remote backends.

Three registered passes share one certification per lint run:

* **E205** — the program is *provably* inconsistent relative to the
  certified region: some marked input tuple admits two distinct fixes.
  The finding carries a minimized concrete witness (values irrelevant to
  the conflict are chased away with fresh values and dropped).
* **W206** — the region is not certain: attributes outside the attribute
  closure of ``Z`` are *uncoverable* by any tableau (exact, PTIME), and
  attributes uncovered on a concrete witness are reported instance-level.
* **I208** — the minimal assured-attribute extension of ``Z`` that makes
  the region certain, found by a size-ordered exact search (closure-pruned,
  budgeted by ``max_extension_checks``); ships an ``extend_region`` fix-it.

**Region resolution.**  The region certified against is, in order: the
region declared in the rule file (``LintContext.region``), the best
region :func:`~repro.repair.region_search.comp_c_region` derives (what a
deployment would actually run with), else the canonical wildcard region
over the mandatory attributes.

**Budget discipline and degradation.**  The underlying problems are
coNP-complete, so every exact step runs under ``max_instantiations`` and
degrades gracefully past it: consistency falls back to the sampled
non-confluence search (W202 — which is demoted to exactly this fallback
role and stays silent whenever the exact check completed), coverage falls
back to closure level, and the extension search to a closure-only
suggestion.  Every degradation is *reported* (an info-level E205
diagnostic plus the ``repro_lint_budget_exhausted_total`` counter), never
silent.  Certification is skipped — without a degradation note — only
when another pass already owns the finding (empty master: W201; rules
naming unknown attributes: E101).

**Delta-aware caching.**  Results are cached per store on ``(rules
fingerprint, region, budgets)``.  When the store version moves, the PR 8
delta journal (``deltas_since``) decides retention instead of a blind
drop: the whole certification is kept iff no delta row projects onto any
recorded probe footprint *and* no insert introduces a value absent from
the active-value snapshot of a domain-feeding master column.  Soundness:
untouched probes make every recorded chase replay bit-identically, so
witnesses (evidence) remain valid; clean verdicts additionally need the
instantiation space not to grow, which is exactly what the novel-value
check rules out (deletes only shrink domains, and removed combinations
cannot create new conflicts).  Computed regions are never retained — their
tableaux are projected off master rows, which footprints do not witness.
:func:`certification_cache_info` exposes the counters.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from itertools import combinations, product
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.active_domain import ActiveDomainCache, FreshValue
from repro.analysis.closure import attribute_closure, mandatory_attrs
from repro.analysis.consistency import (
    AnalysisExplosion,
    RegionReport,
    _instantiation_space,
    check_region,
)
from repro.core.fixes import chase
from repro.core.patterns import ANY, PatternTableau, PatternTuple
from repro.core.regions import Region
from repro.io import region_to_dict
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import MASTER, LintContext, lint_pass
from repro.lint.runner import _budget_key, _region_key, rules_fingerprint
from repro.repair.invalidation import RecordingStore
from repro.repair.region_search import comp_c_region

#: The certification pass codes, in registration order.
CERT_CODES = ("E205", "W206", "I208")


@dataclass
class Certification:
    """One shared certification of ``(rules, region, master)``.

    Built once per lint run (``LintContext.scratch``) and cached per
    store; the E205/W206/I208 passes (and the demoted W202) all read it.
    ``findings`` holds the prebuilt diagnostics per pass code, so cache
    hits and delta-retained entries return identical objects.
    """

    region: Optional[Region] = None
    region_source: Optional[str] = None  # "declared"|"computed"|"canonical"
    report: Optional[RegionReport] = None
    degraded: bool = False
    degraded_reason: Optional[str] = None
    skipped_reason: Optional[str] = None
    extension: Optional[tuple] = None
    extension_exact: bool = True
    extension_checks: int = 0
    footprints: frozenset = frozenset()
    active_snapshot: Dict[str, frozenset] = field(default_factory=dict)
    domain_stats: Dict[str, int] = field(default_factory=dict)
    version: Optional[int] = None
    retainable: bool = False
    findings: Dict[str, Tuple[Diagnostic, ...]] = field(default_factory=dict)

    @property
    def exact_complete(self) -> bool:
        """Whether the exact analyses ran to completion (W202's demotion
        gate: a completed exact check subsumes the sampled pair search)."""
        return (
            self.report is not None
            and not self.degraded
            and self.skipped_reason is None
        )

    def finding_count(self) -> int:
        return sum(len(found) for found in self.findings.values())


# -- the certification computation -------------------------------------------


def _all_rules_typed(ctx: LintContext) -> bool:
    """Certification needs every named attribute to exist — unknown attrs
    are E101 findings, and the exact analyses would crash on them."""
    for rule in ctx.rules:
        input_attrs = set(rule.lhs) | {rule.rhs} | set(rule.pattern.attrs)
        if not all(a in ctx.schema for a in input_attrs):
            return False
        master_attrs = (
            set(rule.lhs_m) | {rule.rhs_m} | set(rule.master_guard.attrs)
        )
        if not all(a in ctx.master_schema for a in master_attrs):
            return False
    return True


def _canonical_region(schema, rules: Sequence) -> Region:
    """The canonical fallback region: mandatory attrs, one wildcard row.

    Mandatory attributes (no rule can fix them) belong to every certain
    region's Z; the single all-wildcard pattern marks every tuple, the
    strongest certification demand."""
    base = tuple(
        a for a in schema.attributes if a in mandatory_attrs(schema, rules)
    )
    tableau = PatternTableau(base, [PatternTuple({a: ANY for a in base})])
    return Region(base, tableau)


def _domain_columns(rules: Sequence) -> set:
    """Master columns feeding some attribute's active domain (mirrors
    ``attribute_active_domain``'s column collection)."""
    columns = set()
    for rule in rules:
        for attr in rule.lhs:
            columns.add(rule.master_attr_of(attr))
        columns.add(rule.rhs_m)
    return columns


def _minimize_witness(
    rules: Sequence, master, region: Region, witness: dict
) -> set:
    """Attrs of *witness* the conflict actually needs (greedy core).

    Replace each attribute's value with a fresh witness in turn; when the
    chase still diverges the attribute is irrelevant to the conflict and
    is dropped from the reported witness.  Costs at most ``|Z|`` extra
    chases over an already-budgeted space.
    """
    kept = set(witness)
    current = dict(witness)
    for attr in list(region.attrs):
        if attr not in current:
            continue
        trial = dict(current)
        trial[attr] = FreshValue(f"{attr}#min")
        outcome = chase(trial, region.attrs, rules, master)
        if not outcome.unique:
            current = trial
            kept.discard(attr)
    return kept


def _search_extension(
    ctx: LintContext,
    rules: Sequence,
    master,
    region: Region,
    schema,
    domains: ActiveDomainCache,
):
    """Exact minimal-extension search for I208.

    Candidate extensions are enumerated by size then schema order, pruned
    by attribute closure (PTIME, free), and verified with the exact region
    check under the shared domain cache.  Returns ``(extension, checks
    spent, why_incomplete)`` where ``why_incomplete`` is ``None`` on a
    definitive answer, else ``"budget"`` / ``"explosion"``.
    """
    all_attrs = set(schema.attributes)
    candidates = [a for a in schema.attributes if a not in region.attr_set]
    checks = 0
    exploded = False
    for size in range(1, ctx.max_extension_size + 1):
        for extra in combinations(candidates, size):
            if attribute_closure(region.attrs + extra, rules) < all_attrs:
                continue
            if checks >= ctx.max_extension_checks:
                return None, checks, "budget"
            checks += 1
            try:
                extended_report = check_region(
                    rules, master, region.extend_attrs(extra), schema,
                    ctx.max_instantiations, domains,
                )
            except AnalysisExplosion:
                exploded = True
                continue
            if extended_report.certain:
                return extra, checks, None
    return None, checks, "explosion" if exploded else None


def _closure_extension(
    region: Region, rules: Sequence, schema, max_size: int
) -> Optional[tuple]:
    """Closure-level fallback extension: the smallest ``E`` with
    ``closure(Z ∪ E) ⊇ R`` — necessary for certainty, not sufficient."""
    all_attrs = set(schema.attributes)
    if attribute_closure(region.attrs, rules) >= all_attrs:
        return None
    candidates = [a for a in schema.attributes if a not in region.attr_set]
    for size in range(1, max_size + 1):
        for extra in combinations(candidates, size):
            if attribute_closure(region.attrs + extra, rules) >= all_attrs:
                return extra
    return None


def _conflict_scan(rules, master, region, pattern, schema):
    """Find the diverging assignment of an inconsistent pattern.

    ``check_pattern`` returns early on its first *coverage* failure, with
    consistency decided by a witness-less tail scan; replaying the (already
    budget-checked) instantiations recovers the concrete conflict."""
    rules = list(rules)
    choices = _instantiation_space(
        pattern, region.attrs, rules, master, schema
    )
    if any(not values for _, values in choices):
        return None, None
    attrs = [a for a, _ in choices]
    for combo in product(*(values for _, values in choices)):
        assignment = dict(zip(attrs, combo))
        outcome = chase(assignment, region.attrs, rules, master)
        if not outcome.unique:
            return assignment, outcome.conflict
    return None, None


def _e205_findings(
    ctx: LintContext,
    rules: Sequence,
    master,
    region: Optional[Region],
    source: Optional[str],
    report: Optional[RegionReport],
    degraded_reason: Optional[str],
) -> Tuple[Diagnostic, ...]:
    if degraded_reason is not None:
        region_attrs = list(region.attrs) if region is not None else None
        return (Diagnostic(
            code="E205",
            severity=Severity.INFO,
            message=(
                f"exact certification degraded: {degraded_reason}; "
                f"consistency falls back to the sampled non-confluence "
                f"search (W202) and coverage to attribute-closure level"
            ),
            remedy=(
                "raise max_instantiations, declare a concrete region "
                "tableau, or accept the sampled verdicts"
            ),
            data={
                "degraded": True,
                "reason": degraded_reason,
                "region": region_attrs,
                "max_instantiations": ctx.max_instantiations,
            },
        ),)
    if report is None or report.consistent:
        return ()
    for check in report.checks:
        if check.consistent:
            continue
        witness, conflict = check.witness_values, check.conflict
        if conflict is None:
            # The coverage-failure path of check_pattern records the
            # *coverage* witness; replay the instantiations to recover
            # the diverging assignment (the space already fit the budget).
            witness, conflict = _conflict_scan(
                rules, master, region, check.pattern, ctx.schema
            )
        if witness is None:
            continue
        witness = dict(witness)
        kept = _minimize_witness(rules, master, region, witness)
        shown = {
            a: repr(witness[a]) for a in region.attrs if a in kept
        }
        rendered = ", ".join(f"{a}={v}" for a, v in shown.items())
        conflict_note = (
            conflict.describe() if conflict is not None
            else "distinct fixes depending on rule application order"
        )
        return (Diagnostic(
            code="E205",
            severity=Severity.ERROR,
            message=(
                f"rule program is provably inconsistent relative to "
                f"region Z={list(region.attrs)} ({source}): witness "
                f"input {{{rendered}}} admits no unique fix "
                f"[{conflict_note}]"
            ),
            remedy=(
                "remove or reconcile the conflicting rules, align the "
                "master data, or assure the conflicting attribute by "
                "extending the region"
            ),
            data={
                "region": list(region.attrs),
                "region_source": source,
                "witness": shown,
                "witness_full": {
                    a: repr(v) for a, v in sorted(witness.items())
                },
                "conflict": conflict_note,
                "instantiations": report.total_instantiations,
            },
        ),)
    return ()


def _w206_findings(
    rules: Sequence,
    region: Optional[Region],
    source: Optional[str],
    report: Optional[RegionReport],
    schema,
) -> Tuple[Diagnostic, ...]:
    if region is None:
        return ()
    closure = attribute_closure(region.attrs, rules)
    closure_missing = tuple(
        a for a in schema.attributes if a not in closure
    )
    out: List[Diagnostic] = []
    if closure_missing:
        out.append(Diagnostic(
            code="W206",
            severity=Severity.WARNING,
            message=(
                f"region not certain: attributes {list(closure_missing)} "
                f"are uncoverable — outside the attribute closure of "
                f"Z={list(region.attrs)} ({source}), so no pattern "
                f"tableau over Z can validate them"
            ),
            remedy=(
                "extend the assured region (see I208) or add rules "
                "fixing these attributes"
            ),
            data={
                "region": list(region.attrs),
                "region_source": source,
                "uncoverable": list(closure_missing),
                "closure": sorted(closure),
            },
        ))
    if report is not None and not report.certain:
        for check in report.checks:
            if check.certain:
                continue
            residual = tuple(
                a for a in check.uncovered if a not in closure_missing
            )
            if not residual:
                continue
            shown = {
                a: repr(v)
                for a, v in sorted((check.witness_values or {}).items())
            }
            out.append(Diagnostic(
                code="W206",
                severity=Severity.WARNING,
                message=(
                    f"region not certain: attributes {list(residual)} "
                    f"stay uncovered on witness input {shown} — the "
                    f"closure reaches them but this master data cannot "
                    f"chase them to validated values"
                ),
                remedy=(
                    "add master tuples supporting the covering rules, "
                    "or extend the assured region (see I208)"
                ),
                data={
                    "region": list(region.attrs),
                    "region_source": source,
                    "uncovered": list(residual),
                    "witness": shown,
                },
            ))
            break  # one instance-level witness is enough
    return tuple(out)


def _i208_findings(
    region: Optional[Region],
    source: Optional[str],
    extension: Optional[tuple],
    exact: bool,
    checks_spent: int,
) -> Tuple[Diagnostic, ...]:
    if region is None or extension is None:
        return ()
    extended = region.extend_attrs(extension)
    qualifier = (
        "" if exact
        else " (closure-level only: exact certification over budget)"
    )
    return (Diagnostic(
        code="I208",
        severity=Severity.INFO,
        message=(
            f"minimal assured-attribute extension: adding "
            f"{list(extension)} to Z={list(region.attrs)} makes the "
            f"region certain{qualifier}"
        ),
        remedy=(
            "validate these attributes upstream (assured input) and "
            "declare the extended region in the rule file"
        ),
        fixit={
            "action": "extend_region",
            "attrs": list(extension),
            "region": region_to_dict(extended),
        },
        data={
            "region": list(region.attrs),
            "region_source": source,
            "extension": list(extension),
            "exact": exact,
            "exact_checks": checks_spent,
        },
    ),)


def _compute(ctx: LintContext) -> Certification:
    store = ctx.store
    rules = list(ctx.rules)
    schema = ctx.schema
    cert = Certification(version=store.version)
    cert.findings = {code: () for code in CERT_CODES}
    if not rules:
        cert.skipped_reason = "no rules to certify"
        return cert
    if len(store) == 0:
        cert.skipped_reason = "empty master (W201 owns this finding)"
        return cert
    if not _all_rules_typed(ctx):
        cert.skipped_reason = (
            "rules reference unknown attributes (E101 owns this finding)"
        )
        return cert
    if ctx.region is not None and not all(
        a in schema for a in ctx.region.attrs
    ):
        cert.skipped_reason = (
            "declared region references unknown attributes"
        )
        return cert
    if len(store) > ctx.max_master_rows:
        cert.degraded = True
        cert.degraded_reason = (
            f"master has {len(store)} rows "
            f"(> max_master_rows={ctx.max_master_rows})"
        )
        obs.inc("repro_lint_budget_exhausted_total", code="E205")
        cert.findings["E205"] = _e205_findings(
            ctx, rules, store, None, None, None, cert.degraded_reason
        )
        return cert

    recording = RecordingStore(store)

    # Region resolution: declared > computed (deployment's view) > canonical.
    region = ctx.region
    source = "declared" if region is not None else None
    if region is None:
        try:
            candidates = comp_c_region(
                rules, recording, schema,
                max_instantiations=ctx.max_instantiations,
            )
        except AnalysisExplosion:
            candidates = []
        if candidates:
            region, source = candidates[0].region, "computed"
        else:
            region, source = _canonical_region(schema, rules), "canonical"
    cert.region, cert.region_source = region, source

    domains = ActiveDomainCache(rules, recording)
    report: Optional[RegionReport] = None
    try:
        report = check_region(
            rules, recording, region, schema, ctx.max_instantiations,
            domains,
        )
    except AnalysisExplosion as exc:
        cert.degraded = True
        cert.degraded_reason = str(exc)
        obs.inc("repro_lint_budget_exhausted_total", code="E205")
    cert.report = report

    # I208: exact search when the exact check ran, closure fallback else.
    if report is not None and not report.certain:
        extension, checks_spent, incomplete = _search_extension(
            ctx, rules, recording, region, schema, domains
        )
        cert.extension_checks = checks_spent
        if extension is not None:
            cert.extension = extension
        elif incomplete is not None:
            cert.extension_exact = False
            obs.inc("repro_lint_budget_exhausted_total", code="I208")
            cert.extension = _closure_extension(
                region, rules, schema, ctx.max_extension_size
            )
    elif cert.degraded:
        cert.extension_exact = False
        cert.extension = _closure_extension(
            region, rules, schema, ctx.max_extension_size
        )

    cert.findings["E205"] = _e205_findings(
        ctx, rules, recording, region, source, report, cert.degraded_reason
    )
    cert.findings["W206"] = _w206_findings(
        rules, region, source, report, schema
    )
    cert.findings["I208"] = _i208_findings(
        region, source, cert.extension, cert.extension_exact,
        cert.extension_checks,
    )

    # Freeze the retention artifacts only after every probing step (witness
    # minimization included) has recorded its footprints.
    cert.footprints = frozenset(recording.footprints)
    cert.active_snapshot = {
        column: frozenset(store.active_values(column))
        for column in sorted(_domain_columns(rules))
        if column in store.schema
    }
    cert.domain_stats = (
        dict(report.domain_stats) if report is not None else domains.stats()
    )
    cert.retainable = (
        not cert.degraded
        and cert.extension_exact
        and report is not None
        and source != "computed"
    )
    return cert


# -- the delta-aware cache ----------------------------------------------------

#: Per-store cache: ``store -> {"entries": {key: [version, Certification]},
#: "counters": {...}}`` — a WeakKeyDictionary so it dies with the store.
_CERT_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

_COUNTER_KEYS = (
    "hits", "misses", "delta_kept", "delta_kept_findings", "recomputes",
    "full_drops",
)


def _store_slot(store) -> Optional[dict]:
    try:
        return _CERT_CACHE.setdefault(
            store,
            {"entries": {}, "counters": {k: 0 for k in _COUNTER_KEYS}},
        )
    except TypeError:  # store not weakref-able: run uncached
        return None


def certification_cache_info(store) -> Dict[str, int]:
    """The certification cache counters for *store* (zeros when unseen).

    ``delta_kept`` / ``delta_kept_findings`` count version moves resolved
    by delta-journal retention — the whole point of the PR 8 journal:
    findings survive master mutations their probe footprints never saw.
    """
    try:
        slot = _CERT_CACHE.get(store)
    except TypeError:
        slot = None
    if slot is None:
        return {k: 0 for k in _COUNTER_KEYS}
    return dict(slot["counters"])


def _retained(cert: Certification, deltas, master_schema) -> bool:
    """Whether *cert* provably equals a fresh recompute after *deltas*.

    Two conditions (see the module docstring for the soundness argument):
    no delta row projects onto a recorded probe footprint, and no insert
    carries a value new to a domain-feeding column's snapshot.
    """
    if not cert.retainable:
        return False
    probed: Dict[tuple, set] = {}
    for attrs, key in cert.footprints:
        probed.setdefault(attrs, set()).add(key)
    positions: Dict[tuple, list] = {}
    snapshot_positions = {
        column: master_schema.index_of(column)
        for column in cert.active_snapshot
    }
    for delta in deltas:
        values = delta.values
        for attrs, keys in probed.items():
            pos = positions.get(attrs)
            if pos is None:
                pos = positions[attrs] = [
                    master_schema.index_of(a) for a in attrs
                ]
            if tuple(values[p] for p in pos) in keys:
                return False  # a recorded probe could now answer differently
        if delta.op == "insert":
            for column, p in snapshot_positions.items():
                if values[p] not in cert.active_snapshot[column]:
                    return False  # novel value grows the instantiation space
    return True


def _cached_certification(ctx: LintContext) -> Certification:
    store = ctx.store
    slot = _store_slot(store)
    if slot is None:
        return _compute(ctx)
    key = (rules_fingerprint(ctx.rules), _region_key(ctx), _budget_key(ctx))
    counters = slot["counters"]
    entry = slot["entries"].get(key)
    if entry is not None:
        version, cert = entry
        if version == store.version:
            counters["hits"] += 1
            obs.inc("repro_lint_certify_cache_total", result="hit")
            return cert
        deltas = store.deltas_since(version)
        if deltas is None:
            counters["full_drops"] += 1
            obs.inc("repro_lint_certify_cache_total", result="full_drop")
        elif _retained(cert, deltas, store.schema):
            counters["delta_kept"] += 1
            counters["delta_kept_findings"] += cert.finding_count()
            obs.inc("repro_lint_certify_cache_total", result="delta_kept")
            entry[0] = store.version
            cert.version = store.version
            return cert
        else:
            counters["recomputes"] += 1
            obs.inc("repro_lint_certify_cache_total", result="recompute")
    else:
        counters["misses"] += 1
        obs.inc("repro_lint_certify_cache_total", result="miss")
    cert = _compute(ctx)
    slot["entries"][key] = [store.version, cert]
    return cert


def certification_for(ctx: LintContext) -> Optional[Certification]:
    """The shared certification for this lint run (``None`` sans store).

    Computed once per :class:`LintContext` (``scratch``) and cached per
    store with delta-aware retention; E205/W206/I208 and the demoted W202
    all consult the same object.
    """
    if ctx.store is None:
        return None
    cert = ctx.scratch.get("certification")
    if cert is None:
        cert = _cached_certification(ctx)
        ctx.scratch["certification"] = cert
    return cert


# -- the registered passes ----------------------------------------------------


@lint_pass(
    "E205", "provably-inconsistent", MASTER,
    "The rule program provably violates the unique-fix guarantee on the "
    "certified region (exact Sect. 4 consistency check; degrades to the "
    "sampled W202 search past max_instantiations).",
)
def check_certified_consistency(ctx: LintContext) -> List[Diagnostic]:
    cert = certification_for(ctx)
    if cert is None:
        return []
    return list(cert.findings.get("E205", ()))


@lint_pass(
    "W206", "region-not-certain", MASTER,
    "The certified region is not certain: attributes are uncoverable "
    "(outside the closure of Z) or stay uncovered on a concrete witness.",
)
def check_certified_coverage(ctx: LintContext) -> List[Diagnostic]:
    cert = certification_for(ctx)
    if cert is None:
        return []
    return list(cert.findings.get("W206", ()))


@lint_pass(
    "I208", "region-extension", MASTER,
    "Minimal assured-attribute extension that makes the certified region "
    "certain (exact search; closure-level suggestion when over budget).",
)
def check_region_extension(ctx: LintContext) -> List[Diagnostic]:
    cert = certification_for(ctx)
    if cert is None:
        return []
    return list(cert.findings.get("I208", ()))
