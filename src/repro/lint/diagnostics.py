"""Structured diagnostics: the lint layer's data model.

A :class:`Diagnostic` is one finding of one pass — a stable code, a
severity, the offending rule (name and index into the rule file, when the
finding is rule-scoped), a human message, remedy text, and optionally a
machine-applyable fix-it (a plain dict an editor or script can act on).
A :class:`LintReport` aggregates the findings of one lint run and renders
them as human text, as a JSON document, or as a SARIF 2.1.0 log that CI
systems ingest natively.

Severities follow the QFix-style triage (PAPERS.md, arXiv 1601.07539):

* ``error``   — the rule program is wrong: it will crash the analyses or
  can produce fixes that violate the certain-fix guarantee;
* ``warning`` — the program is suspicious: dead weight, order-dependent
  behaviour, or master data that undermines a rule;
* ``info``    — facts worth knowing (e.g. which attributes no rule fixes).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple


class Severity(enum.Enum):
    """Triage level of one diagnostic (ordered: error > warning > info)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Lower rank = more severe (errors sort first)."""
        return _RANKS[self]

    @property
    def sarif_level(self) -> str:
        """The SARIF ``level`` spelling (SARIF calls info ``note``)."""
        return "note" if self is Severity.INFO else self.value

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(text)
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.value for s in cls]}"
            ) from None

    def __str__(self) -> str:
        return self.value


_RANKS = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code plus everything needed to act on it.

    ``rule`` / ``rule_index`` locate the finding in the rule file (the
    index is the rule's position in the JSON ``rules`` array); both are
    ``None`` for findings about the program or master data as a whole.
    ``fixit``, when present, is a machine-applyable edit such as
    ``{"action": "remove_rule", "rule_index": 3}``.  ``data`` carries
    machine-readable evidence (a witness cycle, conflicting values...).
    """

    code: str
    severity: Severity
    message: str
    rule: Optional[str] = None
    rule_index: Optional[int] = None
    remedy: Optional[str] = None
    fixit: Optional[Dict[str, Any]] = None
    data: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        for key in ("rule", "rule_index", "remedy", "fixit", "data"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def describe(self) -> str:
        where = ""
        if self.rule is not None:
            where = f" [{self.rule}"
            if self.rule_index is not None:
                where += f" #{self.rule_index}"
            where += "]"
        lines = [f"{self.severity.value:7s} {self.code}{where}: {self.message}"]
        if self.remedy:
            lines.append(f"        remedy: {self.remedy}")
        return "\n".join(lines)


def _sort_key(diagnostic: Diagnostic) -> Tuple[int, str, int, str]:
    index = diagnostic.rule_index
    return (
        diagnostic.severity.rank,
        diagnostic.code,
        index if index is not None else 1 << 30,
        diagnostic.message,
    )


#: SARIF schema pinned by the report (the stable 2.1.0 final schema).
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


@dataclass
class LintReport:
    """Everything one lint run found, in a stable, renderable order.

    Diagnostics are kept sorted by (severity, code, rule index, message)
    so text, JSON, and SARIF output are deterministic for a given
    ``(rules, master)`` input — the property the golden-output tests pin.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    rules_linted: int = 0
    passes_run: Tuple[str, ...] = ()
    master_version: Optional[int] = None

    def __post_init__(self) -> None:
        self.diagnostics = sorted(self.diagnostics, key=_sort_key)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def fails(self, threshold: str = "error") -> bool:
        """Whether findings at/above *threshold* exist (the CI gate test).

        ``threshold`` is a severity name: ``"error"`` fails only on
        errors, ``"warning"`` on warnings or errors, ``"info"`` on any
        finding at all.
        """
        limit = Severity.parse(threshold).rank
        return any(d.severity.rank <= limit for d in self.diagnostics)

    # -- rendering -------------------------------------------------------------

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s) from {len(self.passes_run)} pass(es) "
            f"over {self.rules_linted} rule(s)"
        )

    def describe(self) -> str:
        """Human text: one block per diagnostic plus a summary line."""
        lines = [d.describe() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "version": 1,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
                "rules_linted": self.rules_linted,
                "passes_run": list(self.passes_run),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        if self.master_version is not None:
            out["summary"]["master_version"] = self.master_version
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=repr)

    def to_sarif(
        self,
        artifact_uri: Optional[str] = None,
        rule_metadata: Optional[Iterable[Dict[str, Any]]] = None,
        rule_lines: Optional[List[Optional[int]]] = None,
    ) -> Dict[str, Any]:
        """The report as a SARIF 2.1.0 log (one run, logical locations).

        *artifact_uri*, when given, names the linted rule file so viewers
        can attach results to it.  *rule_metadata* is the tool's rule
        table (id + description per diagnostic code); the runner supplies
        it from the pass registry.  *rule_lines* maps rule index → 1-based
        source line (:func:`repro.io.rule_source_lines`), giving
        rule-scoped results a ``physicalLocation`` region so code-scanning
        annotations land on the offending rule instead of line 1.
        """
        results = []
        for d in self.diagnostics:
            text = d.message if not d.remedy else f"{d.message} {d.remedy}"
            result: Dict[str, Any] = {
                "ruleId": d.code,
                "level": d.severity.sarif_level,
                "message": {"text": text},
            }
            location: Dict[str, Any] = {}
            if d.rule is not None:
                logical: Dict[str, Any] = {"name": d.rule, "kind": "object"}
                if d.rule_index is not None:
                    logical["fullyQualifiedName"] = f"rules[{d.rule_index}]"
                location["logicalLocations"] = [logical]
            if artifact_uri is not None:
                physical: Dict[str, Any] = {
                    "artifactLocation": {"uri": artifact_uri}
                }
                line = None
                if (
                    rule_lines is not None
                    and d.rule_index is not None
                    and 0 <= d.rule_index < len(rule_lines)
                ):
                    line = rule_lines[d.rule_index]
                if line is not None:
                    physical["region"] = {"startLine": line}
                location["physicalLocation"] = physical
            if location:
                result["locations"] = [location]
            if d.data is not None:
                result["properties"] = json.loads(
                    json.dumps(d.data, default=repr)
                )
            results.append(result)
        driver: Dict[str, Any] = {
            "name": "repro-lint",
            "informationUri": (
                "https://github.com/paper-repro/certain-fixes"
            ),
            "rules": list(rule_metadata or ()),
        }
        return {
            "$schema": SARIF_SCHEMA,
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {"driver": driver},
                    "results": results,
                }
            ],
        }


class LintError(ValueError):
    """A rule program was rejected by a lint preflight.

    Raised by :class:`~repro.repair.batch.BatchRepairEngine` (with
    ``preflight="error"``) and the CLI preflights when error-level
    diagnostics exist; carries the full :class:`LintReport` as
    :attr:`report` so callers can render or serialize the findings.
    """

    def __init__(self, report: LintReport, context: str = "rule program"):
        self.report = report
        errors = report.errors
        detail = "\n".join(d.describe() for d in errors)
        super().__init__(
            f"{context} failed lint preflight with {len(errors)} "
            f"error-level finding(s):\n{detail}\n"
            f"(run `repro lint` for the full report, or pass "
            f"preflight='off' to skip the gate)"
        )
