"""User models for the interactive framework.

The framework asks the user to *assert the correctness* of a small set of
attributes each round; the paper's experiments simulate this by "providing
the correct values of the given suggestions".  :class:`SimulatedUser` is that
simulation; :class:`ScriptedUser` and :class:`LyingUser` support tests of the
validation/revision path.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.engine.tuples import Row


class SimulatedUser:
    """An oracle holding the ground-truth tuple.

    ``assert_correct`` returns the clean values for exactly the suggested
    attributes and records which of them actually changed (the framework's
    metrics must not credit user corrections to the algorithm).
    """

    def __init__(self, clean: Row):
        self.clean = clean
        self.corrected: set = set()
        self.asserted: set = set()

    def assert_correct(self, current: Row, suggestion: Iterable) -> dict:
        values = {}
        for attr in suggestion:
            value = self.clean[attr]
            values[attr] = value
            self.asserted.add(attr)
            if current[attr] != value:
                self.corrected.add(attr)
        return values

    def revise(self, current: Row, suggestion: Iterable, reason: str) -> dict:
        """A truthful user never needs to revise; re-assert the truth."""
        return self.assert_correct(current, suggestion)


class CpuBoundOracle:
    """Wrap any oracle with a deterministic CPU burn per interaction.

    Models production feedback sources that *compute* their answers —
    entity-resolution models, scoring services colocated with the repair
    engine — rather than blocking on I/O.  This is the workload class where
    a thread fan-out stays GIL-flat and only a process pool scales; the
    batch throughput benchmark uses it to pin that decision rule.

    The burn is a fixed-length sha256 chain (``cost`` iterations), so the
    cost is deterministic, portable, and uncompressible by the optimizer.
    Instances are picklable as long as the wrapped oracle is.
    """

    def __init__(self, inner, cost: int = 2000):
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        self.inner = inner
        self.cost = cost

    def _burn(self) -> None:
        import hashlib

        digest = b"certain-fix"
        for _ in range(self.cost):
            digest = hashlib.sha256(digest).digest()

    def assert_correct(self, current: Row, suggestion: Iterable) -> dict:
        self._burn()
        return self.inner.assert_correct(current, suggestion)

    def revise(self, current: Row, suggestion: Iterable, reason: str) -> dict:
        self._burn()
        return self.inner.revise(current, suggestion, reason)

    @property
    def corrected(self) -> set:
        return self.inner.corrected

    @property
    def asserted(self) -> set:
        return self.inner.asserted


class ScriptedUser:
    """Replays a fixed list of per-round responses (for tests)."""

    def __init__(self, responses: Iterable):
        self._responses = list(responses)
        self._cursor = 0
        self.corrected: set = set()
        self.asserted: set = set()

    def assert_correct(self, current: Row, suggestion: Iterable) -> dict:
        if self._cursor >= len(self._responses):
            raise RuntimeError("scripted user ran out of responses")
        response: Mapping = self._responses[self._cursor]
        self._cursor += 1
        values = {attr: response[attr] for attr in suggestion if attr in response}
        for attr, value in values.items():
            self.asserted.add(attr)
            if current[attr] != value:
                self.corrected.add(attr)
        return values

    def revise(self, current: Row, suggestion: Iterable, reason: str) -> dict:
        return self.assert_correct(current, suggestion)


class LyingUser:
    """Asserts the (possibly wrong) *current* values as correct.

    Exercises the framework's validation path: assertions inconsistent with
    master data make the unique-fix check fail, triggering a revision
    request, after which this user gives up and tells the truth via the
    wrapped truthful oracle.
    """

    def __init__(self, clean: Row, lie_rounds: int = 1):
        self.truthful = SimulatedUser(clean)
        self.lie_rounds = lie_rounds
        self.lies_told = 0
        self.revisions = 0

    @property
    def corrected(self) -> set:
        return self.truthful.corrected

    @property
    def asserted(self) -> set:
        return self.truthful.asserted

    def assert_correct(self, current: Row, suggestion: Iterable) -> dict:
        if self.lies_told < self.lie_rounds:
            self.lies_told += 1
            return {attr: current[attr] for attr in suggestion}
        return self.truthful.assert_correct(current, suggestion)

    def revise(self, current: Row, suggestion: Iterable, reason: str) -> dict:
        self.revisions += 1
        return self.truthful.assert_correct(current, suggestion)
