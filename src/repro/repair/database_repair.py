"""Batch certain fixes over a whole database (the paper's first future-work
item: "efficiently find certain fixes for data in a database, i.e., certain
fixes in data repairing rather than monitoring").

Without a user in the loop, something must stand in for the validated region.
The stand-in implemented here: for each precomputed certain-region attribute
set ``Z``, run the PTIME concrete check of Theorem 4 on the tuple's own
``t[Z]`` values — when the chase from ``Z`` is unique and covers all of
``R``, master data itself corroborates every step, and under the stated
assumption that corroborated key values are correct the applied fix is
certain.  Tuples failing the check are copied through unchanged, never
guessed at (in sharp contrast to the IncRep baseline); with
``certain_only=False`` unique-but-partial fixes are applied too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.dependency_graph import DependencyGraph
from repro.core.fixes import chase
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.repair.region_search import comp_c_region
from repro.repair.transfix import transfix


@dataclass
class DatabaseRepairReport:
    """Outcome statistics of one batch repair."""

    total: int = 0
    corroborated: int = 0
    fully_fixed: int = 0
    partially_fixed: int = 0
    untouched: int = 0
    changed_attrs: int = 0
    skipped_conflicts: int = 0
    per_tuple: list = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"{self.total} tuples: {self.fully_fixed} fully fixed, "
            f"{self.partially_fixed} partially fixed, "
            f"{self.untouched} untouched "
            f"({self.corroborated} corroborated by master data, "
            f"{self.changed_attrs} attribute updates, "
            f"{self.skipped_conflicts} conflict skips)"
        )


def repair_database(
    relation: Relation,
    rules: Sequence,
    master: Relation,
    schema: RelationSchema,
    regions: list = None,
    max_regions_tried: int = 4,
    certain_only: bool = True,
) -> tuple:
    """Apply certain fixes to every corroborated tuple of *relation*.

    Returns ``(repaired_relation, report)``.  For each tuple and each
    precomputed region ``Z`` (best quality first), the tuple's ``t[Z]`` is
    treated as a concrete pattern and chased; a certain outcome (unique and
    covering ``R``) is applied via TransFix.  Non-unique outcomes are
    skipped defensively; partial outcomes are applied only with
    ``certain_only=False``.
    """
    if regions is None:
        regions = comp_c_region(rules, master, schema)
    z_sets = [candidate.region.attrs for candidate in regions[:max_regions_tried]]
    rules = list(rules)
    graph = DependencyGraph(rules)
    out = Relation(relation.schema)
    report = DatabaseRepairReport()
    all_attrs = set(schema.attributes)

    for row in relation:
        report.total += 1
        certain_z = None
        partial_z = None
        partial_covered = 0
        saw_evidence = False
        saw_conflict = False
        for z in z_sets:
            outcome = chase(row, z, rules, master)
            if not outcome.unique:
                saw_conflict = True
                continue
            if outcome.fired:
                saw_evidence = True
            if outcome.covered >= all_attrs:
                certain_z = z
                break
            if len(outcome.covered) > partial_covered and outcome.fired:
                partial_z = z
                partial_covered = len(outcome.covered)

        if saw_evidence:
            report.corroborated += 1

        chosen = certain_z if certain_z is not None else (
            None if certain_only else partial_z
        )
        if chosen is None:
            if saw_conflict and certain_z is None:
                report.skipped_conflicts += 1
            report.untouched += 1
            report.per_tuple.append((row, None, "uncorroborated"))
            out.insert(row)
            continue

        result = transfix(row, chosen, rules, master, graph)
        changed = sum(
            1 for a in schema.attributes if result.row[a] != row[a]
        )
        report.changed_attrs += changed
        if certain_z is not None:
            report.fully_fixed += 1
            status = "certain"
        elif changed:
            report.partially_fixed += 1
            status = "partial"
        else:
            report.untouched += 1
            status = "clean"
        report.per_tuple.append((result.row, result.validated, status))
        out.insert(result.row)

    return out, report
