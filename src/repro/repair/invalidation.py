"""Delta-aware cache invalidation (the machinery behind surgical purges).

One master mutation used to drop *every* version-stamped cache — regions,
the Suggest⁺ BDD, chase/TransFix memos, pattern probes — costing 0.6–1.7s
of rebuild per mutation at bench scale.  The :class:`~repro.engine.store`
delta journal names exactly which rows changed; this module provides the
consumer-side machinery that turns those deltas into per-key purges:

* :class:`RecordingStore` — a pass-through :class:`MasterStore` wrapper
  that records the *read footprint* of a computation: every keyed probe
  ``(attrs, key)`` it forwarded.  The chase and TransFix read master data
  exclusively through keyed probes, so a recorded footprint is the
  complete master dependency set of a memo entry or a pattern check's
  chase work.  ``push_sink``/``pop_sink`` additionally scope footprints
  to one sub-computation (one ``check_pattern`` call of a region build),
  which is what lets the region guard re-verify exactly the checks a
  mutated row touched instead of rejecting wholesale.
* :class:`FootprintIndex` — a reverse index from probe footprints to the
  memo entries that performed them.  ``affected(rows)`` answers "which
  entries could a mutated row invalidate?" in time proportional to the
  number of distinct probed attribute lists, not the number of entries.
* :class:`RegionGuard` — decides whether the precomputed certain regions
  survive a delta batch *unchanged*.  Deletes (and updates, which journal
  as delete+insert) always rebuild.  For inserts the guard proves the
  fresh rebuild would produce the identical region list: every examined
  seed must have had at least ``validate_patterns`` candidate patterns
  (so patterns projected off the new row land beyond the checked window),
  checks whose recorded probe keys the new row matches are re-run against
  the live master (their good/not-good verdict must not flip), and checks
  whose instantiation choices grow with the row's novel active values are
  re-verified by chasing exactly the new value combinations.  Anything it
  cannot prove falls back to a rebuild — the guard only ever skips work,
  never correctness.
* :func:`row_supports_pattern` — the per-row body of the pattern-probe
  sweep (``_pattern_holds_on_master``), used to patch cached rule
  eligibility per delta instead of re-sweeping the master.

Everything here is advisory: every consumer treats "cannot prove" as
"fall back to the full drop", so the delta path yields fixes bit-identical
to the full-drop path by construction (pinned by the equivalence fuzz in
``tests/test_store_equivalence.py``).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from repro.analysis.active_domain import (
    attribute_active_domain,
    instantiate_condition,
    read_attrs,
)
from repro.analysis.consistency import AnalysisExplosion, check_pattern
from repro.core.fixes import chase
from repro.core.regions import Region
from repro.engine.schema import RelationSchema
from repro.engine.store import MasterStore
from repro.engine.tuples import Row
from repro.engine.values import UNKNOWN


class RecordingStore(MasterStore):
    """Pass-through store wrapper that records keyed-probe footprints.

    ``footprints`` accumulates ``(attrs, key)`` for every keyed read
    (``probe`` / ``probe_ref`` / ``probe_many`` / ``contains_key`` /
    ``scan_probe``); ``swept`` notes whether any full sweep (iteration,
    ``len``, ``active_values``) happened.  Sweeps are *not* footprints:
    consumers whose sweep-derived state is guarded by other means (the
    region guard's active-value snapshot, the pattern-cache patcher)
    deliberately ignore them.

    A *sink* pushed with :meth:`push_sink` additionally receives every
    footprint recorded until :meth:`pop_sink`, scoping dependencies to
    one sub-computation without losing the global set.
    """

    def __init__(self, store: MasterStore):
        self._store = store
        self.footprints: set = set()
        self.swept = False
        self._sink = None

    def push_sink(self, sink: set) -> None:
        self._sink = sink

    def pop_sink(self) -> None:
        self._sink = None

    def _record(self, attrs: tuple, key: tuple) -> None:
        footprint = (attrs, key)
        self.footprints.add(footprint)
        if self._sink is not None:
            self._sink.add(footprint)

    # -- read API (recorded) -------------------------------------------------

    def probe(self, attrs: Iterable, key) -> tuple:
        attrs = tuple(attrs)
        key = tuple(key)
        self._record(attrs, key)
        return self._store.probe(attrs, key)

    def probe_ref(self, attrs: Iterable, key):
        attrs = tuple(attrs)
        key = tuple(key)
        self._record(attrs, key)
        return self._store.probe_ref(attrs, key)

    def probe_many(self, attrs: Iterable, keys: Iterable) -> dict:
        attrs = tuple(attrs)
        keys = [tuple(key) for key in keys]
        for key in keys:
            self._record(attrs, key)
        return self._store.probe_many(attrs, keys)

    def scan_probe(self, attrs: Iterable, key) -> tuple:
        # Index-free, but still a keyed read: same dependency shape.
        attrs = tuple(attrs)
        key = tuple(key)
        self._record(attrs, key)
        return self._store.scan_probe(attrs, key)

    def contains_key(self, attrs: Iterable, key) -> bool:
        return bool(self.probe_ref(attrs, key))

    # -- read API (sweeps) ---------------------------------------------------

    def __len__(self) -> int:
        self.swept = True
        return len(self._store)

    def __iter__(self) -> Iterator[Row]:
        self.swept = True
        return iter(self._store)

    def iter_from(self, start: int) -> Iterator[Row]:
        self.swept = True
        return self._store.iter_from(start)

    def active_values(self, attr: str) -> set:
        self.swept = True
        return self._store.active_values(attr)

    # -- plumbing ------------------------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        return self._store.schema

    @property
    def version(self) -> int:
        return self._store.version

    def ensure_index(self, attrs: Iterable) -> None:
        self._store.ensure_index(attrs)

    def insert(self, row) -> None:
        self._store.insert(row)

    def delete(self, row) -> bool:
        return self._store.delete(row)


class FootprintIndex:
    """Reverse index: master probe footprints → dependent memo entries.

    Entries register with :meth:`add` under an opaque key (the memo key)
    and the footprint set a :class:`RecordingStore` captured while the
    entry's value was computed.  :meth:`affected` projects a mutated
    row onto every distinct probed attribute list and collects the
    entries whose recorded probes the row matches — exactly the entries
    whose deterministic recompute could observe the mutation.  Not
    thread-safe; callers hold the owning engine's memo guard.
    """

    def __init__(self, schema: RelationSchema):
        self._schema = schema
        self._positions: dict = {}  # attrs -> value positions
        self._by_probe: dict = {}   # attrs -> {key: set(entry keys)}
        self._entries: dict = {}    # entry key -> tuple of footprints

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, entry, footprints: Iterable) -> None:
        self.discard(entry)
        footprints = tuple(footprints)
        self._entries[entry] = footprints
        for attrs, key in footprints:
            if attrs not in self._positions:
                self._positions[attrs] = [
                    self._schema.index_of(a) for a in attrs
                ]
            self._by_probe.setdefault(attrs, {}).setdefault(
                key, set()
            ).add(entry)

    def discard(self, entry) -> None:
        footprints = self._entries.pop(entry, None)
        if not footprints:
            return
        for attrs, key in footprints:
            keyed = self._by_probe.get(attrs)
            if keyed is None:
                continue
            owners = keyed.get(key)
            if owners is not None:
                owners.discard(entry)
                if not owners:
                    del keyed[key]

    def affected(self, rows: Iterable) -> set:
        """Entries whose recorded probes any of *rows* projects onto.

        *rows* are full master value tuples (delta payloads).  Cost per
        row is one projection + dict lookup per distinct attribute list
        ever probed — a handful for real rule sets.
        """
        out: set = set()
        for values in rows:
            for attrs, keyed in self._by_probe.items():
                positions = self._positions[attrs]
                projected = tuple(values[p] for p in positions)
                owners = keyed.get(projected)
                if owners:
                    out.update(owners)
        return out

    def clear(self) -> None:
        self._by_probe.clear()
        self._entries.clear()


def row_supports_pattern(rule, row: Row) -> bool:
    """Whether master row *row* witnesses *rule*'s pattern part.

    The per-row body of ``_pattern_holds_on_master`` (condition (c) with
    an empty validated key): with no pattern checks and no master guard
    any row is a witness (the sweep degenerates to ``len(master) > 0``).
    Used to patch per-rule pattern caches delta by delta.
    """
    checks = [
        (rule.master_attr_of(attr), rule.pattern[attr])
        for attr in rule.pattern.attrs
        if attr in rule.lhs and not rule.pattern[attr].is_wildcard
    ]
    if not checks and not len(rule.master_guard):
        return True
    if not rule.master_guard.matches(row):
        return False
    return all(condition.matches(row[column]) for column, condition in checks)


def patch_pattern_cache(cache: dict, rules: Sequence, deltas, rows) -> None:
    """Update a ``{rule.name: holds}`` pattern cache for a delta batch.

    Mirrors what a fresh ``_pattern_holds_on_master`` sweep would answer:
    an inserted witness flips a cached False to True; deleting a witness
    of a cached True drops the entry (the remaining rows may or may not
    still contain one — recompute lazily); every other combination leaves
    the cached verdict exact.
    """
    for rule in rules:
        if rule.name not in cache:
            continue
        for delta, row in zip(deltas, rows):
            cached = cache.get(rule.name)
            if cached is None:
                break  # dropped below; recomputed lazily on next use
            if delta.op == "insert":
                if not cached and row_supports_pattern(rule, row):
                    cache[rule.name] = True
            elif cached and row_supports_pattern(rule, row):
                del cache[rule.name]


class _SnapshotActives:
    """Adapter exposing a ``{column: values}`` snapshot as the
    ``active_values`` surface :func:`attribute_active_domain` reads."""

    def __init__(self, snapshot: dict):
        self._snapshot = snapshot

    def active_values(self, column: str) -> set:
        return self._snapshot.get(column, set())


class RegionGuard:
    """Decides whether precomputed certain regions survive a delta batch.

    Built alongside ``comp_c_region`` from three artifacts of the build:
    per-check keyed-probe footprints (each ``check_pattern`` call runs
    with a :class:`RecordingStore` sink pushed), per-seed records of how
    many candidate patterns existed and what verdict each checked
    pattern received (the ``record`` sink of ``comp_c_region``), and a
    snapshot of the master's active values for every column that feeds
    an instantiation domain.  :meth:`absorb` then proves, delta batch by
    delta batch, that a fresh rebuild would reproduce the current region
    list exactly — or returns False, sending the owner down the ordinary
    rebuild path (a False return leaves the guard stale; the owner must
    discard it together with the regions).  Proof obligations per
    inserted row:

    1. every examined seed saw ≥ ``validate_patterns`` candidates, so
       patterns projected off the new row append beyond the checked
       window and the window's contents are unchanged (candidates are
       generated per master row in insertion order);
    2. checks whose recorded probe keys the row matches are re-run
       against the live master — their good/not-good verdict (the only
       part of an examination the region list depends on) must not
       flip; checks the row's probes miss replay identically by
       determinism;
    3. for unhit checks whose instantiation choices grow with the row's
       novel active values: the grown instantiation space must stay
       within budget (a fresh build would raise ``AnalysisExplosion``
       beyond it), a vacuous check must keep at least one empty choice
       list, and a certain check must chase every *new* value
       combination to a unique covering fix — on insert,
       ``instantiate_condition`` outputs only grow, so old combinations
       are a subset that replays identically.

    Deletes always rebuild (rare on the hot path; an update journals as
    delete+insert and therefore rebuilds too).
    """

    def __init__(
        self,
        rules: Sequence,
        schema: RelationSchema,
        store: MasterStore,
        footprints: Iterable,
        seed_records: Sequence,
        validate_patterns: int = 64,
        max_instantiations: int = 50_000,
    ):
        self._rules = list(rules)
        self._schema = schema  # the input schema R (region attrs live here)
        self._master_schema = store.schema
        self._max_instantiations = max_instantiations
        # Mutable copies: check entries become [pattern, verdict, sink]
        # lists so re-verification can refresh verdicts and footprints.
        self._records = [
            {
                "z": rec["z"],
                "candidates": rec["candidates"],
                "checks": [list(entry) for entry in rec["checks"]],
            }
            for rec in seed_records
        ]
        self._readable = read_attrs(self._rules)
        # Retention precondition (1): with fewer candidates than the
        # window, a pattern projected off an inserted row could enter the
        # checked window and change the build outcome.
        usable = all(
            rec["candidates"] >= validate_patterns for rec in self._records
        )
        # Reverse probe index: footprint -> the (seed, check) entries
        # whose verdict depended on it.
        self._positions: dict = {}     # attrs -> value positions
        self._probe_owners: dict = {}  # attrs -> {key: set((ri, ci))}
        scoped: set = set()
        if usable:
            for ri, rec in enumerate(self._records):
                for ci, entry in enumerate(rec["checks"]):
                    if len(entry) < 3 or entry[2] is None:
                        # No per-check scope recorded (builder ran against
                        # a store without sink support) — unattributable.
                        usable = False
                        break
                    scoped.update(entry[2])
                    self._index_check(ri, ci, entry[2])
                if not usable:
                    break
        # Safety net: a probe performed outside any check scope has no
        # owner to re-verify, making retention unattributable.
        if usable and set(footprints) - scoped:
            usable = False
        self._usable = usable
        # Master columns feeding each readable attribute's active domain
        # (mirrors attribute_active_domain's column collection).
        self._columns_by_attr: dict = {}
        self._rules_by_lhs_m: dict = {}
        for rule in self._rules:
            for attr in rule.lhs:
                self._columns_by_attr.setdefault(attr, set()).add(
                    rule.master_attr_of(attr)
                )
            self._columns_by_attr.setdefault(rule.rhs, set()).add(rule.rhs_m)
            self._rules_by_lhs_m.setdefault(tuple(rule.lhs_m), []).append(rule)
        # Active-value snapshot for every domain-feeding column, taken at
        # build time and advanced by every absorbed insert.
        self._active: dict = {}
        if usable:
            for columns in self._columns_by_attr.values():
                for column in columns:
                    if column not in self._active:
                        self._active[column] = set(store.active_values(column))

    def _index_check(self, ri: int, ci: int, sink: Iterable) -> None:
        for attrs, key in sink:
            if attrs not in self._positions:
                self._positions[attrs] = [
                    self._master_schema.index_of(a) for a in attrs
                ]
            self._probe_owners.setdefault(attrs, {}).setdefault(
                key, set()
            ).add((ri, ci))

    def _unindex_check(self, ri: int, ci: int, sink: Iterable) -> None:
        for attrs, key in sink:
            keyed = self._probe_owners.get(attrs)
            owners = keyed.get(key) if keyed is not None else None
            if owners is not None:
                owners.discard((ri, ci))
                if not owners:
                    del keyed[key]

    # -- the absorb decision -------------------------------------------------

    def absorb(self, deltas, store: MasterStore) -> bool:
        """True iff the current region list equals a fresh rebuild's.

        *store* is the live master (deltas already applied); re-checks
        and new value combinations run against it, exactly as a rebuild
        would.  A False return leaves the guard stale — the owner must
        discard it together with the regions.
        """
        if not self._usable:
            return False
        if any(delta.op != "insert" for delta in deltas):
            return False
        # Which checks did the new rows' probe keys touch (minus hits
        # proven benign), and which columns gained new active values?
        hit: set = set()
        novel_columns: set = set()
        inserted = {delta.values for delta in deltas}
        for delta in deltas:
            row = Row(self._master_schema, delta.values)
            for attrs, keyed in self._probe_owners.items():
                positions = self._positions[attrs]
                key = tuple(delta.values[p] for p in positions)
                owners = keyed.get(key)
                if owners and not self._benign_insert(
                    attrs, key, row, inserted, store
                ):
                    hit.update(owners)
            for column, active in self._active.items():
                value = delta.values[self._master_schema.index_of(column)]
                if value not in active:
                    novel_columns.add(column)
        if hit and not self._reverify_hits(hit, store):
            return False
        if novel_columns and not self._absorb_novel_values(
            novel_columns, deltas, hit, store
        ):
            return False
        for delta in deltas:
            for column, active in self._active.items():
                active.add(delta.values[self._master_schema.index_of(column)])
        return True

    def _benign_insert(
        self, attrs: tuple, key: tuple, row: Row, inserted: set,
        store: MasterStore,
    ) -> bool:
        """Whether *row* joining the ``(attrs, key)`` probe result cannot
        change any chase outcome that performed the probe.

        The chase consumes a probed master row through exactly two reads:
        ``rule.master_guard.matches(tm)`` and ``tm[rule.rhs_m]`` (batch
        firing, conflict detection and the post-pass all reduce to them).
        So for every rule probing with this attribute list the insert is
        invisible iff the row fails the rule's master guard, or all live
        guard-passing matches agree on one rhs value *and* at least one
        of them predates the batch — the rule fired before with the same
        value, so firing again derives nothing new and the duplicate
        post-pass edge is idempotent.  Probe keys shared by many checks
        (common: instantiated patterns reuse hot master keys) then skip
        re-verification entirely.
        """
        rules = self._rules_by_lhs_m.get(attrs)
        if rules is None:
            return False  # probe not attributable to a rule — be safe
        for rule in rules:
            if not rule.master_guard.matches(row):
                continue
            rhs_values: set = set()
            old_match = False
            for tm in store.probe_ref(attrs, key):
                if not rule.master_guard.matches(tm):
                    continue
                rhs_values.add(tm[rule.rhs_m])
                if tuple(tm.values) not in inserted:
                    old_match = True
            if len(rhs_values) != 1 or not old_match:
                return False
        return True

    def _reverify_hits(self, hit: set, store: MasterStore) -> bool:
        """Re-run every probe-hit check against the live master.

        The region list depends on each check only through its
        good/not-good verdict (good patterns form the tableau in check
        order; counts and quality follow), so retention needs exactly
        that bit to survive.  Verdicts and footprints are refreshed from
        the re-run so future absorbs see current dependencies.
        """
        recording = RecordingStore(store)
        for ri, ci in sorted(hit):
            rec = self._records[ri]
            entry = rec["checks"][ci]
            pattern, old_verdict, old_sink = entry
            sink: set = set()
            recording.push_sink(sink)
            try:
                check = check_pattern(
                    self._rules,
                    recording,
                    Region(rec["z"], tableau=None),
                    pattern,
                    self._schema,
                    self._max_instantiations,
                )
            except AnalysisExplosion:
                return False  # a fresh build would raise; rebuild to match
            finally:
                recording.pop_sink()
            is_good = check.certain and check.instantiations > 0
            if is_good != (old_verdict == "good"):
                return False
            entry[1] = (
                "good" if is_good
                else "vacuous" if check.instantiations == 0
                else "failed"
            )
            self._unindex_check(ri, ci, old_sink)
            entry[2] = frozenset(sink)
            self._index_check(ri, ci, entry[2])
        return True

    def _absorb_novel_values(
        self, novel_columns: set, deltas, hit: set, store: MasterStore
    ) -> bool:
        """Verify unhit checks whose instantiation choices grew."""
        old_snapshot = _SnapshotActives(self._active)
        new_active = {
            column: set(values) for column, values in self._active.items()
        }
        for delta in deltas:
            for column in new_active:
                new_active[column].add(
                    delta.values[self._master_schema.index_of(column)]
                )
        new_snapshot = _SnapshotActives(new_active)
        # Instantiation contexts: active domains and per-(attr, condition)
        # choice lists are pure functions of the snapshot — memoised per
        # absorb so checks sharing conditions (the common case: candidate
        # patterns differ in a few attributes) pay for them once.
        old_ctx = (old_snapshot, {}, {})
        new_ctx = (new_snapshot, {}, {})
        for ri, rec in enumerate(self._records):
            z = rec["z"]
            affected = [
                attr
                for attr in z
                if attr in self._readable
                and self._columns_by_attr.get(attr, set()) & novel_columns
            ]
            if not affected:
                continue
            for ci, entry in enumerate(rec["checks"]):
                if (ri, ci) in hit:
                    continue  # already re-verified against the live master
                if not self._check_survives_growth(
                    ri, ci, entry, z, old_ctx, new_ctx, store
                ):
                    return False
        return True

    def _choices(self, z, pattern, ctx) -> list:
        """Per-attribute instantiation values against a snapshot context
        ``(snapshot, domain memo, choice memo)`` — the exact logic of
        ``_instantiation_space`` with snapshot actives.  Returned lists
        are shared through the memo; callers must not mutate them."""
        snapshot, domains, memo = ctx
        choices = []
        for attr in z:
            condition = pattern[attr]
            if attr not in self._readable:
                choices.append(
                    [condition.value] if condition.is_constant else [UNKNOWN]
                )
                continue
            cached = memo.get((attr, condition))
            if cached is None:
                active = domains.get(attr)
                if active is None:
                    active = domains[attr] = attribute_active_domain(
                        attr, self._rules, snapshot
                    )
                cached = memo[(attr, condition)] = instantiate_condition(
                    condition, active, self._schema.domain_of(attr), attr
                )
            choices.append(cached)
        return choices

    def _check_survives_growth(
        self, ri, ci, entry, z, old_ctx, new_ctx, store
    ) -> bool:
        pattern, verdict, _sink = entry
        old_choices = self._choices(z, pattern, old_ctx)
        new_choices = self._choices(z, pattern, new_ctx)
        added = [
            [v for v in new if v not in set(old)]
            for old, new in zip(old_choices, new_choices)
        ]
        if not any(added):
            return True
        space = 1
        for values in new_choices:
            space *= max(len(values), 1)
        if space > self._max_instantiations:
            # A fresh check_pattern would raise AnalysisExplosion before
            # even the vacuous early-return; rebuild so the owner
            # reproduces the build-time behaviour.
            return False
        if verdict == "vacuous":
            # Vacuous = some attribute's choice list is empty; inserts
            # only grow lists, so vacuousness persists iff one stays
            # empty.  A check waking up could change the good set.
            return any(not values for values in new_choices)
        if verdict != "good":
            # The failing combination recorded at build replays
            # identically (its probes missed the new rows, else this
            # check would be in the hit set), so it cannot turn good.
            return True
        # Certain check: old combinations replay identically; chase
        # exactly the combinations that include at least one new value,
        # recording their probes so future deltas can find this check.
        recording = RecordingStore(store)
        sink: set = set()
        recording.push_sink(sink)
        all_attrs = set(self._schema.attributes)
        try:
            for index, fresh_values in enumerate(added):
                if not fresh_values:
                    continue
                # Positions before `index` take old values, `index` takes
                # only new values, later positions run the full new lists
                # — disjoint and jointly exhaustive over "at least one
                # new value" without re-enumerating the old product.
                pools = [
                    old_choices[i] if i < index
                    else (fresh_values if i == index else new_choices[i])
                    for i in range(len(new_choices))
                ]
                for combo in itertools.product(*pools):
                    outcome = chase(dict(zip(z, combo)), z, self._rules, recording)
                    if not outcome.unique or not outcome.covered >= all_attrs:
                        return False
        finally:
            recording.pop_sink()
        entry[2] = frozenset(entry[2] | sink)
        self._index_check(ri, ci, sink)
        return True
