"""Procedure Suggest (Sect. 5.2).

Given a tuple ``t`` whose attributes ``Z`` are validated, a *suggestion* is a
set ``S`` of further attributes such that asserting ``t[S]`` lands the tuple
in a certain region (Proposition 20 reduces the search to the *applicable
rules* ``Σt[Z]``: rules surviving three conditions and refined with the
validated values, ``φ⁺``).  Finding a minimum ``S`` is NP-complete and
approximation-hard (the S-minimum problem), so this module implements the
paper's practical route:

1. derive ``Σt[Z]`` (conditions (a)–(c), refinement (i)–(ii));
2. seed ``S`` with the attributes no applicable rule can fix, then grow
   greedily by attribute-closure gain until the closure reaches ``R``;
3. search for a master-backed witness pattern over ``Z ∪ S`` (the expensive
   certain-region computation that Suggest⁺'s BDD cache later avoids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.closure import attribute_closure
from repro.analysis.consistency import check_pattern
from repro.analysis.zproblems import (
    attr_master_options,
    attr_pattern_constants,
)
from repro.core.patterns import ANY, Const, PatternTuple
from repro.core.regions import Region
from repro.engine.schema import RelationSchema
from repro.engine.store import MasterStore, as_master_store
from repro.engine.tuples import Row
from repro.engine.values import UNKNOWN


@dataclass
class Suggestion:
    """A recommended attribute set ``S`` for the next interaction round."""

    attrs: tuple
    certain: bool
    witness: PatternTuple = None
    applicable_rule_count: int = 0
    source: str = "structural"

    def __bool__(self) -> bool:
        return bool(self.attrs)


def _pattern_holds_on_master(rule, master: MasterStore) -> bool:
    """Condition (c) with an empty validated key: some master tuple matches
    the pattern part ``tp[Xp ∩ X]`` through the rule's correspondence."""
    checks = [
        (rule.master_attr_of(attr), rule.pattern[attr])
        for attr in rule.pattern.attrs
        if attr in rule.lhs and not rule.pattern[attr].is_wildcard
    ]
    if not checks and not len(rule.master_guard):
        return len(master) > 0
    for tm in master:
        if not rule.master_guard.matches(tm):
            continue
        if all(condition.matches(tm[column]) for column, condition in checks):
            return True
    return False


def applicable_rules(
    rules: Sequence,
    master,
    row: Row,
    z: frozenset,
    pattern_cache: dict = None,
) -> list:
    """The refined applicable rules ``Σt[Z]`` (Sect. 5.2).

    For each rule φ, keep it iff (a) its target is outside ``Z``, (b) its
    pattern holds on the validated attributes, and (c) some master tuple
    matches both the validated key part and the pattern part (a keyed
    :meth:`~repro.engine.store.MasterStore.probe`); the survivor ``φ⁺``
    absorbs the validated key attributes into its pattern with the concrete
    values of ``t``.
    """
    master = as_master_store(master)
    out = []
    for rule in rules:
        if rule.rhs in z:  # (a)
            continue
        z_pattern_attrs = [a for a in rule.pattern.attrs if a in z]
        if not all(  # (b)
            rule.pattern[a].matches(row[a]) for a in z_pattern_attrs
        ):
            continue
        if any(row[a] is UNKNOWN for a in z_pattern_attrs):
            continue
        key_attrs = tuple(a for a in rule.lhs if a in z)
        if key_attrs:  # (c), keyed probe
            key = tuple(row[a] for a in key_attrs)
            if any(v is UNKNOWN for v in key):
                continue
            columns = rule.master_attrs_of(key_attrs)
            matches = master.probe_ref(columns, key)
            pattern_checks = [
                (rule.master_attr_of(a), rule.pattern[a])
                for a in rule.pattern.attrs
                if a in rule.lhs and a not in z
                and not rule.pattern[a].is_wildcard
            ]
            found = False
            for tm in matches:
                if not rule.master_guard.matches(tm):
                    continue
                if all(c.matches(tm[col]) for col, c in pattern_checks):
                    found = True
                    break
            if not found:
                continue
        else:  # (c), pattern-only probe (cacheable per rule)
            if pattern_cache is not None and rule.name in pattern_cache:
                holds = pattern_cache[rule.name]
            else:
                holds = _pattern_holds_on_master(rule, master)
                if pattern_cache is not None:
                    pattern_cache[rule.name] = holds
            if not holds:
                continue
        # Refinement (i)-(ii): extend the pattern with the validated key.
        refined = rule.pattern.extend(
            {a: Const(row[a]) for a in key_attrs}
        )
        out.append(rule.with_pattern(refined))
    return out


def _grow_suggestion(schema, z: frozenset, applicable: list) -> tuple:
    """Seed + closure-greedy growth of the suggestion set ``S``."""
    all_attrs = set(schema.attributes)
    fixable = {rule.rhs for rule in applicable}
    s = [a for a in schema.attributes if a not in z and a not in fixable]
    while attribute_closure(set(z) | set(s), applicable) < all_attrs:
        remaining = [a for a in schema.attributes if a not in z and a not in s]
        if not remaining:
            break
        best = max(
            remaining,
            key=lambda a: (
                len(attribute_closure(set(z) | set(s) | {a}, applicable)),
                -schema.index_of(a),
            ),
        )
        s.append(best)
    return tuple(a for a in schema.attributes if a in s)


def _witness_search(
    rules, master, schema, row, z, s, validate_patterns, max_instantiations
):
    """Look for a pattern over ``Z ∪ S`` (values of ``t`` on ``Z``, master
    projections on ``S``) that certifies a certain region (Prop. 20)."""
    zs = tuple(a for a in schema.attributes if a in z or a in set(s))
    per_attr_static = {}
    per_attr_columns = {}
    for attr in s:
        columns = attr_master_options(attr, rules)
        constants = attr_pattern_constants(attr, rules)
        per_attr_columns[attr] = columns
        per_attr_static[attr] = list(constants) if (columns or constants) else [ANY]

    # Sweep the whole master relation for candidate patterns (the paper's
    # Suggest recomputes a certain region over Dm — an O(|Dm|)-and-up step;
    # exactly the latency the BDD cache of Suggest⁺ exists to avoid), then
    # validate a bounded prefix.
    z_conditions = {}
    for attr in zs:
        if attr in z:
            z_conditions[attr] = (
                Const(row[attr]) if row[attr] is not UNKNOWN else ANY
            )
    import itertools

    seen = set()
    candidates = []
    s_attrs = [attr for attr in zs if attr not in z]
    for tm in master:
        option_lists = []
        for attr in s_attrs:
            options = list(per_attr_static[attr])
            for column in per_attr_columns[attr]:
                value = tm[column]
                if value not in options:
                    options.append(value)
            option_lists.append(options if options else [ANY])
        # Bounded per-row product: a row may support several pattern
        # shapes (e.g. home vs mobile phone with its type constant).
        combos = itertools.islice(itertools.product(*option_lists), 8)
        for combo in combos:
            conditions = dict(z_conditions)
            conditions.update(zip(s_attrs, combo))
            pattern = PatternTuple({a: conditions[a] for a in zs})
            if pattern not in seen:
                seen.add(pattern)
                candidates.append(pattern)
    for pattern in candidates[:validate_patterns]:
        region = Region(zs, tableau=None)
        check = check_pattern(
            rules, master, region, pattern, schema, max_instantiations
        )
        if check.certain and check.instantiations > 0:
            return pattern
    return None


def s_minimum_exact(
    rules: Sequence,
    master,
    schema: RelationSchema,
    row: Row,
    z: frozenset,
    max_size: int = None,
    max_subsets: int = 20_000,
    validate_patterns: int = 64,
    max_instantiations: int = 50_000,
):
    """The S-minimum problem, solved exactly by bounded subset search.

    Sect. 5.2: find the smallest ``S`` disjoint from ``Z`` such that ``S``
    is a suggestion for ``t`` w.r.t. ``t[Z]`` — NP-complete and not
    ``c log n``-approximable (it has the Z-minimum problem as the ``Z = ∅``
    special case), hence the subset-budget guard.  Returns
    ``(S tuple, witness pattern)`` or ``None``.
    """
    master = as_master_store(master)
    z = frozenset(z)
    applicable = applicable_rules(rules, master, row, z)
    candidates = [a for a in schema.attributes if a not in z]
    all_attrs = set(schema.attributes)
    limit = max_size if max_size is not None else len(candidates)
    # Attributes no applicable rule can fix must be in every S.
    fixable = {rule.rhs for rule in applicable}
    mandatory = tuple(a for a in candidates if a not in fixable)
    optional = [a for a in candidates if a not in mandatory]
    from itertools import combinations

    examined = 0
    for k in range(0, max(0, limit - len(mandatory)) + 1):
        for extra in combinations(optional, k):
            examined += 1
            if examined > max_subsets:
                raise RuntimeError(
                    f"S-minimum examined more than {max_subsets} subsets; "
                    f"the problem is NP-complete (Sect. 5.2)"
                )
            s = tuple(
                a for a in schema.attributes
                if a in mandatory or a in extra
            )
            if attribute_closure(z | set(s), applicable) < all_attrs:
                continue
            witness = _witness_search(
                applicable, master, schema, row, z, s,
                validate_patterns, max_instantiations,
            )
            if witness is not None:
                return s, witness
    return None


def suggest(
    rules: Sequence,
    master,
    schema: RelationSchema,
    row: Row,
    z: frozenset,
    pattern_cache: dict = None,
    validate_patterns: int = 48,
    max_instantiations: int = 50_000,
) -> Suggestion:
    """Compute a new suggestion for ``t`` given validated attributes ``Z``.

    *master* may be any :class:`~repro.engine.store.MasterStore` (or a plain
    relation); the result is a pure function of ``(Z, t[Z])`` for a fixed
    ``(Σ, Dm)``, which is what makes both the BDD cache and the non-BDD
    suggest memo of :class:`~repro.repair.certainfix.CertainFix` sound.
    """
    master = as_master_store(master)
    z = frozenset(z)
    applicable = applicable_rules(rules, master, row, z, pattern_cache)
    s = _grow_suggestion(schema, z, applicable)
    if not s:
        # Nothing left that rules cannot settle; suggest whatever remains
        # unvalidated so the user can close out the tuple.
        s = tuple(a for a in schema.attributes if a not in z)
        return Suggestion(
            attrs=s,
            certain=False,
            applicable_rule_count=len(applicable),
            source="remainder",
        )
    witness = None
    if validate_patterns > 0 and applicable:
        witness = _witness_search(
            applicable, master, schema, row, z, s,
            validate_patterns, max_instantiations,
        )
    return Suggestion(
        attrs=s,
        certain=witness is not None,
        witness=witness,
        applicable_rule_count=len(applicable),
        source="certain-region" if witness is not None else "structural",
    )
