"""Certain-region search: CompCRegion (reconstructed) and GRegion (baseline).

The paper derives its initial suggestions from certain regions computed by
the heuristic ``CompCRegion`` of the companion paper [20] (not included in
the provided text) and compares against a greedy baseline ``GRegion``
("at each stage, choose an attribute which may fix the largest number of
uncovered attributes").  DESIGN.md §4.3–4.4 documents the reconstruction:

* **CompCRegion**: candidate ``Z`` sets grow from the mandatory attributes
  (those no rule can fix) ordered by attribute-closure coverage; a candidate
  is kept iff its closure reaches ``R`` and master-projected patterns
  validate as certain single-pattern regions (Example 9's tableau shape).
  Candidates are ranked by a quality metric: fewer user-validated attributes
  first, higher master support second.
* **GRegion**: the myopic set-cover greedy over one-hop "may fix" sets, with
  a closure-repair phase so its output is still a valid certain region.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.analysis.closure import (
    attribute_closure,
    mandatory_attrs,
    one_hop_cover,
)
from repro.analysis.consistency import check_pattern
from repro.analysis.zproblems import master_projected_patterns
from repro.core.patterns import PatternTableau
from repro.core.regions import Region
from repro.engine.schema import RelationSchema
from repro.engine.store import MasterStore, as_master_store


@dataclass
class CertainRegionCandidate:
    """A certain region with its ranking metadata."""

    region: Region
    quality: float
    patterns_checked: int
    patterns_valid: int

    @property
    def size(self) -> int:
        return len(self.region.attrs)

    @property
    def support(self) -> float:
        if self.patterns_checked == 0:
            return 0.0
        return self.patterns_valid / self.patterns_checked

    def describe(self) -> str:
        return (
            f"Z={list(self.region.attrs)} (|Z|={self.size}, "
            f"quality={self.quality:.3f}, support={self.support:.2f}, "
            f"|Tc|={len(self.region.tableau)})"
        )


def _validated_tableau(
    z: tuple,
    rules: Sequence,
    master: MasterStore,
    schema: RelationSchema,
    validate_patterns: int,
    max_instantiations: int,
    record: list = None,
):
    """Build and validate a master-projected tableau for Z.

    Returns ``(region_or_None, checked, valid)``; the region keeps the
    validated patterns (capped) as its tableau.  When *record* is a list,
    a dict describing this seed's examination — candidate-pattern count
    and per-checked-pattern ``[pattern, verdict, probe footprint]``
    entries (verdict ``good`` / ``vacuous`` / ``failed``) — is appended,
    the raw material for delta-aware region retention
    (:class:`repro.repair.invalidation.RegionGuard`).  The footprint is
    the set of keyed probes the check performed, captured by pushing a
    sink on *master* when it supports one (a ``RecordingStore``), else
    ``None`` (which disables retention).
    """
    candidates = master_projected_patterns(z, rules, master)
    checked = 0
    good = []
    checks_record = [] if record is not None else None
    scoped = checks_record is not None and hasattr(master, "push_sink")
    for pattern in candidates:
        if checked >= validate_patterns:
            break
        checked += 1
        probe_region = Region(z, tableau=None)
        sink = set() if scoped else None
        if scoped:
            master.push_sink(sink)
        try:
            check = check_pattern(
                rules, master, probe_region, pattern, schema, max_instantiations
            )
        finally:
            if scoped:
                master.pop_sink()
        is_good = check.certain and check.instantiations > 0
        if is_good:
            good.append(pattern)
        if checks_record is not None:
            verdict = (
                "good" if is_good
                else "vacuous" if check.instantiations == 0
                else "failed"
            )
            checks_record.append(
                [pattern, verdict, frozenset(sink) if scoped else None]
            )
    if record is not None:
        record.append(
            {"z": z, "candidates": len(candidates), "checks": checks_record}
        )
    if not good:
        return None, checked, 0
    region = Region(z, PatternTableau(z, good))
    return region, checked, len(good)


def _quality(schema: RelationSchema, size: int, support: float) -> float:
    """Fewer user-validated attributes first; master support as tie-break."""
    total = len(schema)
    return (total - size) / total + support / (10.0 * total)


def comp_c_region(
    rules: Sequence,
    master,
    schema: RelationSchema,
    max_regions: int = 8,
    max_extra: int = 3,
    validate_patterns: int = 64,
    max_instantiations: int = 50_000,
    record: list = None,
) -> list:
    """Derive a ranked list of certain regions from (Σ, Dm).

    All returned regions are validated certain regions; the first element is
    the highest-quality one (the CRHQ of Exp-1(2)).  *master* may be any
    :class:`~repro.engine.store.MasterStore` or a plain relation; regions
    derived here are valid only for the store version they were computed
    against (the repair engines stamp and rebuild them on master updates).
    When *record* is a list it receives one examination dict per seed
    (see :func:`_validated_tableau`) for delta-aware retention.
    """
    master = as_master_store(master)
    rules = list(rules)
    all_attrs = set(schema.attributes)
    base = tuple(a for a in schema.attributes if a in mandatory_attrs(schema, rules))
    optional = [a for a in schema.attributes if a not in base]

    # Seed Z candidates: the mandatory set padded with 0..max_extra extra
    # attributes, by schema order, pruned by attribute closure.
    seeds: list = []
    seen: set = set()

    def consider(z_tuple):
        if z_tuple in seen:
            return
        seen.add(z_tuple)
        if attribute_closure(z_tuple, rules) >= all_attrs:
            seeds.append(z_tuple)

    consider(base)
    for k in range(1, max_extra + 1):
        if len(seeds) >= max_regions * 3:
            break
        for extra in combinations(optional, k):
            z = tuple(a for a in schema.attributes if a in base or a in extra)
            consider(z)
            if len(seeds) >= max_regions * 3:
                break

    # When even closure fails from the mandatory base, grow greedily first.
    if not seeds:
        z = list(base)
        while attribute_closure(z, rules) < all_attrs:
            remaining = [a for a in schema.attributes if a not in z]
            if not remaining:
                break
            best = max(
                remaining,
                key=lambda a: (
                    len(attribute_closure(z + [a], rules)),
                    -schema.index_of(a),
                ),
            )
            z.append(best)
        consider(tuple(a for a in schema.attributes if a in z))

    candidates = []
    for z in sorted(seeds, key=len):
        if len(candidates) >= max_regions:
            break
        region, checked, valid = _validated_tableau(
            z, rules, master, schema, validate_patterns, max_instantiations,
            record=record,
        )
        if region is None:
            continue
        support = valid / checked if checked else 0.0
        candidates.append(
            CertainRegionCandidate(
                region=region,
                quality=_quality(schema, len(z), support),
                patterns_checked=checked,
                patterns_valid=valid,
            )
        )
    candidates.sort(key=lambda c: c.quality, reverse=True)
    return candidates


def g_region(
    rules: Sequence,
    master,
    schema: RelationSchema,
    validate_patterns: int = 64,
    max_instantiations: int = 50_000,
):
    """The greedy baseline of Sect. 6 (Exp-1(1)).

    Score of an attribute = how many still-uncovered attributes it "may fix"
    (one-hop, ignoring whether the rest of the premises are available), plus
    itself.  Picks greedily until everything is may-covered, then repairs
    with closure growth so the result is actually a certain region.
    """
    master = as_master_store(master)
    rules = list(rules)
    all_attrs = list(schema.attributes)
    covered: set = set()
    z: list = []

    while set(all_attrs) - covered:
        remaining = [a for a in all_attrs if a not in z]
        if not remaining:
            break

        def score(attr):
            gain = ({attr} | set(one_hop_cover(attr, rules))) - covered
            return (len(gain), -schema.index_of(attr))

        best = max(remaining, key=score)
        if not (({best} | set(one_hop_cover(best, rules))) - covered):
            break
        z.append(best)
        covered |= {best} | set(one_hop_cover(best, rules))

    # Repair phase: the may-fix sets over-promise; grow until the attribute
    # closure really reaches R.
    while attribute_closure(z, rules) < set(all_attrs):
        remaining = [a for a in all_attrs if a not in z]
        if not remaining:
            break
        best = max(
            remaining,
            key=lambda a: (
                len(attribute_closure(z + [a], rules)),
                -schema.index_of(a),
            ),
        )
        z.append(best)

    z_tuple = tuple(a for a in schema.attributes if a in z)
    region, checked, valid = _validated_tableau(
        z_tuple, rules, master, schema, validate_patterns, max_instantiations
    )
    if region is None:
        return None
    support = valid / checked if checked else 0.0
    return CertainRegionCandidate(
        region=region,
        quality=_quality(schema, len(z_tuple), support),
        patterns_checked=checked,
        patterns_valid=valid,
    )
