"""The BDD suggestion cache behind Suggest⁺ (Sect. 5.2, Figs. 7–8).

Computing a certain region at every interaction round is the latency
bottleneck; the paper maintains previously computed suggestions in a binary
decision diagram and, for each new tuple, first checks whether a cached
suggestion still applies ("it is far less costly to check whether a region
is certain than computing new certain regions").

Structure, following Example 15: each node holds one suggestion; the *true*
edge leads to the node consulted at the next interaction round (the cached
continuation after this suggestion succeeded), the *false* edge to the
alternative suggestion tried when the check fails.  A miss at the end of a
false-chain computes a fresh suggestion via :func:`repro.repair.suggest.suggest`
and appends it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.analysis.closure import attribute_closure
from repro.engine.schema import RelationSchema
from repro.engine.store import as_master_store
from repro.engine.tuples import Row
from repro.repair.suggest import Suggestion, applicable_rules, suggest


@dataclass
class _Node:
    suggestion: Suggestion
    true_child: "_Node" = None
    false_child: "_Node" = None


@dataclass
class CacheStats:
    """Hit/miss accounting (ablation A3)."""

    hits: int = 0
    misses: int = 0
    checks: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SuggestionCache:
    """The Suggest⁺ BDD: per-round suggestion reuse across a tuple stream.

    Every cached suggestion was certified against a concrete master state;
    when the backing :class:`~repro.engine.store.MasterStore` moves to a new
    version the owner must call :meth:`invalidate` (the repair engines do
    this automatically from their version-sync hook).
    """

    def __init__(
        self,
        rules: Sequence,
        master,
        schema: RelationSchema,
        validate_patterns: int = 48,
        max_chain: int = 16,
    ):
        self.rules = list(rules)
        self.master = as_master_store(master)
        self.schema = schema
        self.validate_patterns = validate_patterns
        self.max_chain = max_chain
        self.stats = CacheStats()
        self._root: _Node = None
        self._pattern_cache: dict = {}

    # -- per-tuple traversal -------------------------------------------------

    def start(self) -> "_Cursor":
        """A fresh traversal cursor (one per input tuple)."""
        return _Cursor(self)

    # -- invalidation --------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cached suggestion and pattern probe.

        Called when the master store's version moves: cached witnesses were
        validated against master tuples that may no longer exist, so the
        whole BDD is rebuilt lazily from fresh Suggest calls.  Live cursors
        keep working — their next step simply misses and recomputes.
        """
        self._root = None
        self._pattern_cache.clear()
        self.stats.invalidations += 1

    # -- validity check ------------------------------------------------------

    def _valid_for(self, suggestion: Suggestion, row: Row, z: frozenset) -> bool:
        """Cheap reuse test: the cached S must be disjoint from Z and, with
        the currently applicable rules, close over all of R."""
        self.stats.checks += 1
        s = set(suggestion.attrs)
        if not s or s & z:
            return False
        applicable = applicable_rules(
            self.rules, self.master, row, z, self._pattern_cache
        )
        fixable = {rule.rhs for rule in applicable}
        uncoverable = set(self.schema.attributes) - z - fixable
        if not uncoverable <= s:
            return False
        closure = attribute_closure(z | s, applicable)
        return closure >= set(self.schema.attributes)

    def _compute(self, row: Row, z: frozenset) -> Suggestion:
        return suggest(
            self.rules,
            self.master,
            self.schema,
            row,
            z,
            pattern_cache=self._pattern_cache,
            validate_patterns=self.validate_patterns,
        )


class _Cursor:
    """Traversal state for one tuple (one step per interaction round)."""

    def __init__(self, cache: SuggestionCache):
        self._cache = cache
        self._position = ("root",)

    def next_suggestion(self, row: Row, z: frozenset) -> Suggestion:
        cache = self._cache
        z = frozenset(z)

        if self._position[0] == "root":
            node = cache._root
            setter = lambda n: setattr(cache, "_root", n)  # noqa: E731
        else:
            parent = self._position[1]
            node = parent.true_child
            setter = lambda n: setattr(parent, "true_child", n)  # noqa: E731

        # Walk the false-chain for a reusable suggestion.
        depth = 0
        while node is not None and depth < cache.max_chain:
            if cache._valid_for(node.suggestion, row, z):
                cache.stats.hits += 1
                self._position = ("node", node)
                return node.suggestion
            setter = _false_setter(node)
            node = node.false_child
            depth += 1

        cache.stats.misses += 1
        # The miss path IS the BDD build: each fresh suggestion appended
        # here grows the diagram, so the span's sum tracks total build
        # cost and its count tracks the node count added.
        with obs.time_block("repro_bdd_build_seconds"):
            fresh = cache._compute(row, z)
            new_node = _Node(suggestion=fresh)
            setter(new_node)
        self._position = ("node", new_node)
        return fresh


def _false_setter(node: _Node):
    def setter(n: _Node):
        node.false_child = n

    return setter
