"""Procedure TransFix (Sect. 5.1, Fig. 5).

Given a tuple ``t`` with validated attributes ``Z'``, fix every attribute the
rules and master data entail, extending ``Z'`` as it goes.  The procedure
walks the rule dependency graph: rules whose premise (``X ∪ Xp``) is already
validated sit in ``vset`` ("usable"); firing a rule upgrades its dependent
rules from ``uset`` to ``vset`` when their premises fill in.  Each rule is
consumed at most once, giving the paper's ``O(|Σ|²)`` bound.  Master access
goes through :meth:`repro.engine.store.MasterStore.probe` — the Sect. 5.1
hash table keyed on ``tm[Xm]`` that makes each master check constant time —
so any backend (in-memory or out-of-core) serves the lookups.

A naive fixpoint loop (re-scan all rules until nothing fires) is provided as
:func:`transfix_naive` for ablation A1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Set

from repro.analysis.dependency_graph import DependencyGraph
from repro.engine.store import MasterStore, as_master_store
from repro.engine.tuples import Row
from repro.engine.values import UNKNOWN


class MasterConflict(RuntimeError):
    """Master tuples matched by one rule disagree on the target value.

    Cannot happen after the unique-fix validation step of CertainFix; raised
    defensively when TransFix is used stand-alone on unvalidated input.
    """


@dataclass
class TransFixResult:
    """Output of one TransFix run."""

    row: Row
    validated: frozenset
    applied: list = field(default_factory=list)
    lookups: int = 0

    @property
    def fixed_attrs(self) -> tuple:
        return tuple(rule.rhs for rule, _ in self.applied)

    def explain(self) -> str:
        """Provenance of every fixed attribute, in application order."""
        if not self.applied:
            return "no rule applied"
        lines = []
        for rule, tm in self.applied:
            key = dict(zip(rule.lhs, tm[rule.lhs_m]))
            lines.append(
                f"{rule.rhs} := {tm[rule.rhs_m]!r} via {rule.name} "
                f"(master match on {key})"
            )
        return "\n".join(lines)


def _resolve(rule, row: Row, master: MasterStore, use_index: bool):
    """Master value for ``rhs(rule)``, or None; raises on disagreement."""
    key = row[rule.lhs]
    if any(v is UNKNOWN for v in key):
        return None
    if use_index:
        matches = master.probe_ref(rule.lhs_m, key)
    else:
        matches = master.scan_probe(rule.lhs_m, key)
    if len(rule.master_guard):
        matches = [tm for tm in matches if rule.master_guard.matches(tm)]
    if not matches:
        return None
    value = matches[0][rule.rhs_m]
    for tm in matches[1:]:
        if tm[rule.rhs_m] != value:
            raise MasterConflict(
                f"rule {rule.name}: master tuples with key {key} carry "
                f"distinct values {value!r} / {tm[rule.rhs_m]!r} for "
                f"{rule.rhs_m!r}"
            )
    return matches[0]


def transfix(
    t: Row,
    validated: Iterable,
    rules,
    master,
    graph: DependencyGraph = None,
    use_index: bool = True,
) -> TransFixResult:
    """Fix every attribute entailed by ``t[validated]`` (Fig. 5).

    Parameters mirror the paper: the tuple, the validated set ``Z'``, the
    rule set Σ with its dependency graph ``G`` (built on demand when not
    supplied), and the master data — a
    :class:`~repro.engine.store.MasterStore` or a plain relation (adapted
    on entry).  ``use_index=False`` degrades master probes to scans
    (ablation A2).
    """
    master = as_master_store(master)
    if graph is None:
        graph = DependencyGraph(list(rules))
    rules = graph.rules
    z: Set = set(validated)
    row = t
    applied = []
    lookups = 0

    usable = [False] * len(rules)
    in_uset = [False] * len(rules)
    consumed = [False] * len(rules)
    vset: list = []
    uset: set = set()
    for i, rule in enumerate(rules):
        if rule.premise_attrs <= z:
            usable[i] = True
            vset.append(i)
        else:
            in_uset[i] = True
            uset.add(i)

    while vset:
        v = vset.pop()
        if consumed[v]:
            continue
        consumed[v] = True
        rule = rules[v]
        if rule.rhs not in z and rule.pattern.matches(row):
            lookups += 1
            tm = _resolve(rule, row, master, use_index)
            if tm is not None:
                row = rule.apply_unchecked(row, tm)
                z.add(rule.rhs)
                applied.append((rule, tm))
                for u in graph.successors(v):
                    if consumed[u]:
                        continue
                    if rules[u].premise_attrs <= z:
                        if in_uset[u]:
                            in_uset[u] = False
                            uset.discard(u)
                        if not usable[u]:
                            usable[u] = True
                            vset.append(u)
                    elif not in_uset[u] and not usable[u]:
                        in_uset[u] = True
                        uset.add(u)

    return TransFixResult(
        row=row, validated=frozenset(z), applied=applied, lookups=lookups
    )


def transfix_naive(
    t: Row,
    validated: Iterable,
    rules,
    master,
    use_index: bool = True,
) -> TransFixResult:
    """Ablation baseline: re-scan the whole rule set until a fixpoint.

    Semantically equivalent to :func:`transfix` (tests assert this); does
    ``O(|Σ|)`` scans per fired rule instead of following dependency edges.
    """
    master = as_master_store(master)
    rules = list(rules)
    z: Set = set(validated)
    row = t
    applied = []
    lookups = 0
    progress = True
    fired = [False] * len(rules)
    while progress:
        progress = False
        for i, rule in enumerate(rules):
            if fired[i] or rule.rhs in z:
                continue
            if not rule.premise_attrs <= z:
                continue
            if not rule.pattern.matches(row):
                continue
            lookups += 1
            tm = _resolve(rule, row, master, use_index)
            if tm is None:
                continue
            row = rule.apply_unchecked(row, tm)
            z.add(rule.rhs)
            applied.append((rule, tm))
            fired[i] = True
            progress = True
    return TransFixResult(
        row=row, validated=frozenset(z), applied=applied, lookups=lookups
    )
