"""The interactive data-monitoring framework (Sect. 5 of the paper).

* :mod:`repro.repair.oracle` — user models (the paper simulates feedback by
  "providing the correct values of the given suggestions").
* :mod:`repro.repair.transfix` — procedure TransFix (Fig. 5): fix validated
  attributes by walking the rule dependency graph.
* :mod:`repro.repair.region_search` — CompCRegion (the certain-region
  deduction heuristic of the companion paper, reconstructed) and the GRegion
  greedy baseline of Sect. 6.
* :mod:`repro.repair.suggest` — procedure Suggest (Sect. 5.2): applicable
  rules Σt[Z], rule refinement φ⁺, and new-suggestion computation.
* :mod:`repro.repair.bdd` — the BDD suggestion cache behind Suggest⁺.
* :mod:`repro.repair.certainfix` — algorithm CertainFix / CertainFix⁺
  (Fig. 3): the interactive driver gluing everything together.
* :mod:`repro.repair.batch` — the bulk layer: shared caches,
  validated-pattern memoization and chunked/concurrent streams.
"""

from repro.repair.batch import (
    BatchRepairEngine,
    BatchReport,
    BatchResult,
    EngineSpec,
    MemoStats,
)
from repro.repair.bdd import SuggestionCache
from repro.repair.certainfix import (
    CertainFix,
    FixSession,
    IncompleteFix,
    RoundLog,
    ValidationFailed,
)
from repro.repair.oracle import (
    CpuBoundOracle,
    LyingUser,
    ScriptedUser,
    SimulatedUser,
)
from repro.repair.region_search import (
    CertainRegionCandidate,
    comp_c_region,
    g_region,
)
from repro.repair.suggest import Suggestion, applicable_rules, suggest
from repro.repair.transfix import MasterConflict, TransFixResult, transfix

__all__ = [
    "BatchRepairEngine",
    "BatchReport",
    "BatchResult",
    "CertainFix",
    "CertainRegionCandidate",
    "CpuBoundOracle",
    "EngineSpec",
    "FixSession",
    "IncompleteFix",
    "LyingUser",
    "MasterConflict",
    "MemoStats",
    "RoundLog",
    "ValidationFailed",
    "ScriptedUser",
    "SimulatedUser",
    "Suggestion",
    "SuggestionCache",
    "TransFixResult",
    "applicable_rules",
    "comp_c_region",
    "g_region",
    "suggest",
    "transfix",
]
