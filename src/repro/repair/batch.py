"""Batch repair: high-throughput monitoring of dirty tuple streams.

The paper evaluates CertainFix one tuple at a time; production workloads
(Guided Data Repair, AWMRR — see PAPERS.md) arrive as bulk streams of
thousands of dirty tuples that share most of their structure.  This module
adds the throughput layer on top of :class:`repro.repair.certainfix.CertainFix`:

* **shared precomputation** — certain regions, master hash indexes and the
  BDD suggestion cache are built once per ``(Σ, Dm)`` and reused by every
  session ("computed once and repeatedly used as long as Σ and Dm are
  unchanged");
* **validated-pattern memoization** — the unique-fix chase and TransFix
  both depend only on the *validated pattern* ``(Z', t[Z'])`` (every rule
  they may fire has its premise inside ``Z'`` and master data is fixed), so
  identical dirty shapes skip re-validation entirely;
* **versioned invalidation** — masters are reached through the
  :class:`~repro.engine.store.MasterStore` seam; every shared structure
  (regions, master indexes, the BDD, both memo tables) is stamped with the
  store version it was built against, and an ``insert``/``delete``/
  ``update`` of a master tuple moves the version so all of them rebuild
  lazily before the next monitored tuple — incremental master updates can
  no longer poison the shared caches;
* **chunked execution** — the input stream is consumed in bounded chunks
  (generators welcome: CSV ingestion never materializes the workload), with
  an optional thread fan-out over the read-only master state;
* **structured reporting** — :class:`BatchReport` carries throughput,
  rounds per tuple and per-cache hit rates for the perf trajectory.

Determinism: with ``concurrency=1`` the engine produces sessions identical
to :meth:`CertainFix.fix_stream` on the same inputs.  With ``concurrency >
1`` each tuple is still monitored independently; without the BDD cache the
result is bit-identical to the sequential run (suggestions are pure
functions of ``(t, Z')``), while with the BDD cache the *suggestion order*
may vary with thread interleaving but every produced fix remains a certain
fix (tests pin both properties).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.engine.csvio import stream_rows_from_csv
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row
from repro.repair.certainfix import CertainFix, IncompleteFix
from repro.repair.oracle import SimulatedUser
from repro.repair.transfix import TransFixResult


@dataclass
class MemoStats:
    """Hit/miss accounting for one validated-pattern memo table."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def delta(self, earlier: "MemoStats") -> "MemoStats":
        return MemoStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
        )

    def snapshot(self) -> "MemoStats":
        return MemoStats(hits=self.hits, misses=self.misses)


@dataclass
class BatchReport:
    """What one :meth:`BatchRepairEngine.run` did, in numbers."""

    tuples: int = 0
    completed: int = 0
    incomplete: int = 0
    rounds: int = 0
    chunks: int = 0
    elapsed: float = 0.0
    concurrency: int = 1
    chunk_size: int = 0
    regions_precomputed: int = 0
    chase_memo: MemoStats = field(default_factory=MemoStats)
    transfix_memo: MemoStats = field(default_factory=MemoStats)
    suggestion_hits: int = 0
    suggestion_misses: int = 0
    cache_invalidations: int = 0
    master_version: int = 0

    @property
    def throughput(self) -> float:
        """Monitored tuples per second of wall clock."""
        return self.tuples / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def mean_rounds(self) -> float:
        return self.rounds / self.tuples if self.tuples else 0.0

    @property
    def suggestion_hit_rate(self) -> float:
        total = self.suggestion_hits + self.suggestion_misses
        return self.suggestion_hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "tuples": self.tuples,
            "completed": self.completed,
            "incomplete": self.incomplete,
            "rounds": self.rounds,
            "mean_rounds": round(self.mean_rounds, 4),
            "chunks": self.chunks,
            "chunk_size": self.chunk_size,
            "concurrency": self.concurrency,
            "elapsed_s": round(self.elapsed, 6),
            "throughput_tps": round(self.throughput, 2),
            "regions_precomputed": self.regions_precomputed,
            "chase_memo": {
                "hits": self.chase_memo.hits,
                "misses": self.chase_memo.misses,
                "hit_rate": round(self.chase_memo.hit_rate, 4),
            },
            "transfix_memo": {
                "hits": self.transfix_memo.hits,
                "misses": self.transfix_memo.misses,
                "hit_rate": round(self.transfix_memo.hit_rate, 4),
            },
            "suggestion_cache": {
                "hits": self.suggestion_hits,
                "misses": self.suggestion_misses,
                "hit_rate": round(self.suggestion_hit_rate, 4),
            },
            "cache_invalidations": self.cache_invalidations,
            "master_version": self.master_version,
        }

    def describe(self) -> str:
        lines = [
            f"monitored {self.tuples} tuples in {self.elapsed:.3f}s "
            f"({self.throughput:.1f} tuples/s, {self.chunks} chunks, "
            f"concurrency {self.concurrency})",
            f"rounds/tuple: {self.mean_rounds:.2f}  "
            f"completed: {self.completed}  incomplete: {self.incomplete}",
            f"chase memo: {self.chase_memo.hit_rate:.0%} hit "
            f"({self.chase_memo.hits}/{self.chase_memo.lookups})  "
            f"transfix memo: {self.transfix_memo.hit_rate:.0%} hit "
            f"({self.transfix_memo.hits}/{self.transfix_memo.lookups})",
        ]
        if self.suggestion_hits or self.suggestion_misses:
            lines.append(
                f"suggestion cache: {self.suggestion_hit_rate:.0%} hit "
                f"({self.suggestion_hits}/"
                f"{self.suggestion_hits + self.suggestion_misses})"
            )
        if self.cache_invalidations:
            lines.append(
                f"master updated mid-run: shared caches rebuilt "
                f"{self.cache_invalidations} time(s) "
                f"(store version {self.master_version})"
            )
        return "\n".join(lines)


@dataclass
class BatchResult:
    """Sessions (stream order) plus the run's :class:`BatchReport`."""

    sessions: list
    report: BatchReport

    @property
    def final_rows(self) -> list:
        return [session.final for session in self.sessions]

    def to_relation(self, schema: RelationSchema) -> Relation:
        """Materialize the repaired stream as a relation."""
        return Relation(schema, self.final_rows)


class _MemoCertainFix(CertainFix):
    """CertainFix with chase/TransFix outcomes memoized per validated pattern.

    Soundness: every rule the chase or TransFix may fire has its premise
    ``X ∪ Xp`` inside the validated set ``Z'`` (and grows ``Z'`` only with
    master-derived values), so both outcomes are pure functions of
    ``(Z', t[Z'])`` given fixed ``(Σ, Dm)`` — the memo key.  "Fixed" is
    enforced by version-stamping: when the master store's version moves,
    the inherited sync hook clears both memo tables along with the base
    engine's regions/BDD/suggest caches.
    """

    def __init__(self, *args, memoize: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self._memoize = memoize
        self._chase_memo: dict = {}
        self._transfix_memo: dict = {}
        self.chase_stats = MemoStats()
        self.transfix_stats = MemoStats()
        self._bdd_lock = None
        # Counter increments are read-modify-write and would drop updates
        # under the thread fan-out; the lock is uncontended (nanoseconds)
        # next to a chase or TransFix run.
        self._stats_lock = threading.Lock()

    def _sync_master_version(self) -> bool:
        # The guard is re-entrant: this subclass's memo tables are cleared
        # within the same hold as the base teardown, and the stamp-checked
        # writes below guarantee a worker that computed against the old
        # version cannot re-poison the freshly cleared tables.
        with self._memo_guard:
            changed = super()._sync_master_version()
            if changed:
                self._chase_memo.clear()
                self._transfix_memo.clear()
        return changed

    def _memo_key(self, row: Row, validated: frozenset) -> tuple:
        attrs = tuple(sorted(validated))
        return attrs, row[attrs]

    def _unique(self, row: Row, validated: frozenset) -> bool:
        if not self._memoize:
            return super()._unique(row, validated)
        key = self._memo_key(row, validated)
        stamp = self._master_version
        cached = self._chase_memo.get(key)
        if cached is None:
            with self._stats_lock:
                self.chase_stats.misses += 1
            cached = super()._unique(row, validated)
            with self._memo_guard:
                if self._master_version == stamp:
                    self._chase_memo[key] = cached
        else:
            with self._stats_lock:
                self.chase_stats.hits += 1
        return cached

    def _transfix(self, row: Row, validated: frozenset) -> TransFixResult:
        if not self._memoize:
            return super()._transfix(row, validated)
        key = self._memo_key(row, validated)
        stamp = self._master_version
        entry = self._transfix_memo.get(key)
        if entry is None:
            with self._stats_lock:
                self.transfix_stats.misses += 1
            result = super()._transfix(row, validated)
            fixes = tuple(
                (rule.rhs, result.row[rule.rhs]) for rule, _ in result.applied
            )
            with self._memo_guard:
                if self._master_version == stamp:
                    self._transfix_memo[key] = (
                        fixes, tuple(result.applied), result.lookups,
                    )
            return result
        with self._stats_lock:
            self.transfix_stats.hits += 1
        fixes, applied, lookups = entry
        fixed_row = row.with_values(dict(fixes)) if fixes else row
        return TransFixResult(
            row=fixed_row,
            validated=frozenset(validated) | {attr for attr, _ in fixes},
            applied=list(applied),
            lookups=lookups,
        )

    def _next_suggestion(self, cursor, row, validated):
        # The BDD is the only mutable structure shared *across* concurrent
        # sessions mid-flight; serialize its traversal/extension.
        if self._bdd_lock is not None and cursor is not None:
            with self._bdd_lock:
                return super()._next_suggestion(cursor, row, validated)
        return super()._next_suggestion(cursor, row, validated)


def _chunked(iterable: Iterable, size: int):
    iterator = iter(iterable)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


class BatchRepairEngine:
    """Monitor thousands of dirty tuples through CertainFix at throughput.

    Parameters
    ----------
    rules, master, schema:
        As for :class:`CertainFix`: *master* is any
        :class:`~repro.engine.store.MasterStore` (in-memory or sqlite) or a
        plain relation, and probe indexes for every rule key are forced at
        construction.  Mutating the store between (or during) runs bumps
        its version; all shared caches rebuild lazily before the next
        monitored tuple, and the run's :class:`BatchReport` counts the
        rebuilds.
    regions:
        Precomputed certain-region candidates; computed (once) at
        construction when omitted — never per tuple, recomputed only when
        the store version moves.
    use_bdd:
        Share a Suggest⁺ BDD cache across all sessions (default on: this is
        the batch workload the cache was designed for).
    memoize:
        Reuse chase / TransFix outcomes across tuples with the same
        validated pattern (default on).
    chunk_size:
        How many stream elements to pull per execution chunk.
    concurrency:
        Worker threads per chunk (1 = sequential).  Workers share the
        read-only master state and all caches.  Threads pay off when the
        oracle blocks on I/O (live users, feedback services); for purely
        CPU-bound simulated oracles the GIL keeps throughput flat.
    on_incomplete:
        ``"keep"`` returns truncated sessions (``completed=False``) in
        place; ``"raise"`` surfaces the first one as :class:`IncompleteFix`.
    engine_options:
        Forwarded to the underlying :class:`CertainFix` (``max_rounds``,
        ``max_revisions``, ``validate_uniqueness``, ...).
    """

    def __init__(
        self,
        rules: Sequence,
        master: Relation,
        schema: RelationSchema,
        regions: list = None,
        use_bdd: bool = True,
        memoize: bool = True,
        chunk_size: int = 256,
        concurrency: int = 1,
        on_incomplete: str = "keep",
        **engine_options,
    ):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if on_incomplete not in ("keep", "raise"):
            raise ValueError(
                f"on_incomplete must be 'keep' or 'raise', "
                f"got {on_incomplete!r}"
            )
        self.chunk_size = chunk_size
        self.concurrency = concurrency
        self.on_incomplete = on_incomplete
        # Non-BDD streams get the suggest memo (ROADMAP follow-up): same
        # validated-pattern key as the chase/TransFix memos, same versioned
        # invalidation.  With the BDD on, the cursor path serves suggestions
        # and the memo would be dead weight.
        engine_options.setdefault("memoize_suggest", memoize and not use_bdd)
        self._engine = _MemoCertainFix(
            rules, master, schema,
            regions=regions, use_bdd=use_bdd, memoize=memoize,
            **engine_options,
        )
        if concurrency > 1 and use_bdd:
            self._engine._bdd_lock = threading.Lock()
        # Precompute everything shareable up front so run() never pays
        # per-session setup: regions (CertainFix builds master indexes in
        # its own constructor already).
        self._engine.regions  # noqa: B018 — forces the (cached) computation

    @property
    def engine(self) -> CertainFix:
        """The shared underlying CertainFix engine (caches included)."""
        return self._engine

    @property
    def store(self):
        """The engine's :class:`~repro.engine.store.MasterStore`.

        Mutations made through it (``insert`` / ``delete`` / ``update``)
        are picked up before the next monitored tuple.
        """
        return self._engine.store

    # -- execution -------------------------------------------------------------

    def run(self, pairs: Iterable) -> BatchResult:
        """Monitor a stream of ``(dirty_row, oracle)`` pairs.

        The stream is consumed lazily in chunks of ``chunk_size``; sessions
        come back in stream order regardless of ``concurrency``.
        """
        engine = self._engine
        chase_before = engine.chase_stats.snapshot()
        transfix_before = engine.transfix_stats.snapshot()
        invalidations_before = engine.cache_invalidations
        bdd_before = engine.cache_stats
        bdd_hits0 = bdd_before.hits if bdd_before is not None else 0
        bdd_misses0 = bdd_before.misses if bdd_before is not None else 0

        sessions: list = []
        chunks = 0
        pool = (
            ThreadPoolExecutor(max_workers=self.concurrency)
            if self.concurrency > 1
            else None
        )
        started = time.perf_counter()
        try:
            for chunk in _chunked(pairs, self.chunk_size):
                chunks += 1
                if pool is not None:
                    chunk_sessions = list(
                        pool.map(lambda pair: engine.fix(*pair), chunk)
                    )
                else:
                    chunk_sessions = [
                        engine.fix(row, oracle) for row, oracle in chunk
                    ]
                for offset, session in enumerate(chunk_sessions):
                    if not session.completed and self.on_incomplete == "raise":
                        raise IncompleteFix(
                            session, index=len(sessions) + offset
                        )
                sessions.extend(chunk_sessions)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        elapsed = time.perf_counter() - started

        bdd_after = engine.cache_stats
        report = BatchReport(
            tuples=len(sessions),
            completed=sum(1 for s in sessions if s.completed),
            incomplete=sum(1 for s in sessions if not s.completed),
            rounds=sum(s.round_count for s in sessions),
            chunks=chunks,
            elapsed=elapsed,
            concurrency=self.concurrency,
            chunk_size=self.chunk_size,
            regions_precomputed=len(engine.regions),
            chase_memo=engine.chase_stats.delta(chase_before),
            transfix_memo=engine.transfix_stats.delta(transfix_before),
            suggestion_hits=(
                bdd_after.hits - bdd_hits0 if bdd_after is not None else 0
            ),
            suggestion_misses=(
                bdd_after.misses - bdd_misses0 if bdd_after is not None else 0
            ),
            cache_invalidations=(
                engine.cache_invalidations - invalidations_before
            ),
            master_version=engine.store.version,
        )
        return BatchResult(sessions=sessions, report=report)

    def run_dirty(self, dirty_tuples: Iterable) -> BatchResult:
        """Monitor a :class:`repro.datasets.dirty.DirtyDataset` (or any
        iterable of objects with ``dirty``/``clean`` rows) against simulated
        truthful users, as the paper's experiments do."""
        return self.run(
            (dt.dirty, SimulatedUser(dt.clean)) for dt in dirty_tuples
        )

    def run_csv(
        self,
        dirty_path,
        clean_path=None,
        oracle_factory: Callable = None,
    ) -> BatchResult:
        """Stream a dirty CSV file through the engine (constant memory).

        Exactly one feedback source must be provided: *clean_path*, a CSV
        aligned row-for-row with the dirty file whose values play the
        truthful simulated user, or *oracle_factory*, a callable mapping a
        dirty :class:`Row` to an oracle.
        """
        if (clean_path is None) == (oracle_factory is None):
            raise ValueError(
                "provide exactly one of clean_path or oracle_factory"
            )
        schema = self._engine.schema
        dirty = stream_rows_from_csv(dirty_path, schema=schema)
        if clean_path is not None:
            clean = stream_rows_from_csv(clean_path, schema=schema)
            pairs = _aligned_pairs(dirty, clean, dirty_path, clean_path)
        else:
            pairs = ((d, oracle_factory(d)) for d in dirty)
        return self.run(pairs)


def _aligned_pairs(dirty, clean, dirty_path, clean_path):
    """Zip the two streams, naming the files when their lengths diverge."""
    _end = object()
    dirty_rows, clean_rows = iter(dirty), iter(clean)
    index = 0
    while True:
        d = next(dirty_rows, _end)
        c = next(clean_rows, _end)
        if d is _end and c is _end:
            return
        if (d is _end) or (c is _end):
            shorter = clean_path if c is _end else dirty_path
            raise ValueError(
                f"{dirty_path} and {clean_path} are not aligned "
                f"row-for-row: {shorter} ran out after {index} data rows"
            )
        yield d, SimulatedUser(c)
        index += 1
